//! Deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for execution at a particular simulated time.
///
/// Events that share a timestamp are delivered in the order they were
/// scheduled (FIFO), which makes simulations deterministic regardless of the
/// heap's internal layout.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number used for FIFO tie-breaking.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

// Reverse ordering: BinaryHeap is a max-heap, we need earliest-first.
impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of future events ordered by time, then insertion order.
///
/// # Examples
///
/// ```
/// use keddah_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Schedules every event in `batch` in one O(pending + batch)
    /// heapify instead of per-event sift-ups — the way to seed a
    /// simulation with hundreds of thousands of initial arrivals.
    ///
    /// Sequence numbers follow the batch's iteration order, so delivery
    /// order (time, then FIFO) is exactly what the equivalent sequence
    /// of [`push`](Self::push) calls would produce.
    pub fn push_batch<I: IntoIterator<Item = (SimTime, E)>>(&mut self, batch: I) {
        let mut events = std::mem::take(&mut self.heap).into_vec();
        for (at, event) in batch {
            let seq = self.next_seq;
            self.next_seq += 1;
            events.push(ScheduledEvent { at, seq, event });
        }
        self.heap = BinaryHeap::from(events);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Returns the time of the earliest pending event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (at, ev) in iter {
            self.push(at, ev);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), ());
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn push_batch_matches_sequential_pushes() {
        // Interleave pushes and batches; pop order must equal the queue
        // built with pushes alone (FIFO ties included).
        let times = [5u64, 1, 3, 1, 2, 5, 0, 3];
        let mut batched = EventQueue::new();
        let mut plain = EventQueue::new();
        for (i, &t) in times.iter().take(3).enumerate() {
            batched.push(SimTime::from_secs(t), i);
            plain.push(SimTime::from_secs(t), i);
        }
        batched.push_batch(
            times
                .iter()
                .enumerate()
                .skip(3)
                .map(|(i, &t)| (SimTime::from_secs(t), i)),
        );
        for (i, &t) in times.iter().enumerate().skip(3) {
            plain.push(SimTime::from_secs(t), i);
        }
        let pop_all = |mut q: EventQueue<usize>| -> Vec<(SimTime, u64, usize)> {
            std::iter::from_fn(|| q.pop().map(|e| (e.at, e.seq, e.event))).collect()
        };
        assert_eq!(pop_all(batched), pop_all(plain));
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u8> = (0..5).map(|i| (SimTime::from_secs(i), i as u8)).collect();
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
