//! Discrete-event simulation kernel shared by the Keddah simulators.
//!
//! Both the Hadoop cluster simulator (`keddah-hadoop`) and the flow-level
//! network simulator (`keddah-netsim`) are discrete-event simulations: a
//! virtual clock advances from event to event, and each event may schedule
//! further events. This crate provides the minimal, deterministic kernel
//! they share:
//!
//! * [`SimTime`] — a nanosecond-resolution virtual clock value (newtype over
//!   `u64` so wall-clock and simulated time can never be confused);
//! * [`EventQueue`] — a priority queue of `(SimTime, sequence, event)`
//!   entries with FIFO tie-breaking, which makes simulations byte-for-byte
//!   reproducible across runs;
//! * [`Engine`] — a convenience driver that pops events and hands them to a
//!   handler until the queue drains or a time horizon is reached.
//!
//! # Examples
//!
//! ```
//! use keddah_des::{Engine, SimTime};
//!
//! // Count ticks at t = 1ms, 2ms, 3ms.
//! let mut engine: Engine<u32> = Engine::new();
//! for i in 1..=3u32 {
//!     engine.schedule(SimTime::from_millis(i as u64), i);
//! }
//! let mut seen = Vec::new();
//! engine.run(|now, ev, _queue| seen.push((now, ev)));
//! assert_eq!(seen.len(), 3);
//! assert_eq!(seen[2], (SimTime::from_millis(3), 3));
//! ```

mod engine;
mod queue;
mod time;

pub use engine::Engine;
pub use queue::{EventQueue, ScheduledEvent};
pub use time::{Duration, SimTime};
