//! Virtual time for discrete-event simulation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in nanoseconds from simulation start.
///
/// `SimTime` is a transparent newtype over `u64`; it exists so that simulated
/// time can never be accidentally mixed with wall-clock time or with byte
/// counts. Arithmetic with [`Duration`] is supported, as are saturating
/// helpers for code that must not panic on overflow.
///
/// # Examples
///
/// ```
/// use keddah_des::{Duration, SimTime};
///
/// let t = SimTime::from_secs(2) + Duration::from_millis(500);
/// assert_eq!(t.as_nanos(), 2_500_000_000);
/// assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
///
/// Separate from [`SimTime`] so that "when" and "how long" keep distinct
/// types; `SimTime - SimTime = Duration` and `SimTime + Duration = SimTime`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Duration(u64);

const NANOS_PER_MICRO: u64 = 1_000;
const NANOS_PER_MILLI: u64 = 1_000_000;
const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation origin, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * NANOS_PER_SEC as f64).round().min(u64::MAX as f64) as u64)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the time as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[must_use]
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        Duration((secs * NANOS_PER_SEC as f64).round().min(u64::MAX as f64) as u64)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the duration as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Returns true if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// nanosecond and saturating on overflow.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Duration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        let v = (self.0 as f64 * factor).round();
        if !v.is_finite() || v <= 0.0 {
            Duration::ZERO
        } else if v >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(v as u64)
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<u32> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u32) -> Duration {
        Duration(self.0 * u64::from(rhs))
    }
}

impl Mul<Duration> for u32 {
    type Output = Duration;
    fn mul(self, rhs: Duration) -> Duration {
        rhs * self
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(Duration::from_secs(2), Duration::from_nanos(2_000_000_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_secs(5);
        let d = Duration::from_millis(1_500);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1.saturating_since(t0), d);
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(Duration::from_secs_f64(0.5).as_millis_f64(), 500.0);
    }

    #[test]
    fn mul_f64_saturates_and_rounds() {
        let d = Duration::from_secs(1);
        assert_eq!(d.mul_f64(0.5), Duration::from_millis(500));
        assert_eq!(d.mul_f64(0.0), Duration::ZERO);
        assert_eq!(Duration::MAX.mul_f64(2.0), Duration::MAX);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(Duration::from_millis(1) < Duration::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", Duration::ZERO).is_empty());
    }

    #[test]
    fn duration_scalar_multiplication() {
        assert_eq!(Duration::from_millis(250) * 4u32, Duration::from_secs(1));
        assert_eq!(3u32 * Duration::from_secs(2), Duration::from_secs(6));
        assert_eq!(Duration::from_secs(1) * 2u64, Duration::from_secs(2));
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_secs).sum();
        assert_eq!(total, Duration::from_secs(10));
    }
}
