//! A minimal driver loop over an [`EventQueue`].

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Drives an [`EventQueue`] forward, tracking the current simulated time.
///
/// The engine enforces the fundamental DES invariant: time never moves
/// backwards. Handlers receive mutable access to the queue so they can
/// schedule follow-up events.
///
/// # Examples
///
/// A one-shot "ping-pong" that reschedules itself twice:
///
/// ```
/// use keddah_des::{Duration, Engine, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule(SimTime::from_secs(1), "ping");
/// let mut log = Vec::new();
/// engine.run(|now, ev, queue| {
///     log.push((now, ev));
///     if ev == "ping" && now < SimTime::from_secs(3) {
///         queue.push(now + Duration::from_secs(1), "ping");
///     }
/// });
/// assert_eq!(log.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last delivered event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time: scheduling
    /// into the past is always a logic error in a DES.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at:?} before current time {:?}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules a whole batch of events at once via
    /// [`EventQueue::push_batch`] — O(pending + batch) total, rather
    /// than one sift-up per event. Delivery order is identical to the
    /// equivalent sequence of [`schedule`](Self::schedule) calls.
    ///
    /// # Panics
    ///
    /// Panics if any event's time is earlier than the current simulated
    /// time.
    pub fn schedule_batch<I: IntoIterator<Item = (SimTime, E)>>(&mut self, batch: I) {
        let now = self.now;
        self.queue.push_batch(batch.into_iter().inspect(|(at, _)| {
            assert!(
                *at >= now,
                "cannot schedule event at {at:?} before current time {now:?}"
            );
        }));
    }

    /// Delivers a single event to `handler`, returning `false` if the queue
    /// was empty.
    pub fn step<F>(&mut self, mut handler: F) -> bool
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event queue produced out-of-order event");
                self.now = ev.at;
                self.processed += 1;
                handler(ev.at, ev.event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Delivers a single event, invoking `tap` with the delivery time and
    /// a shared view of the event *before* the handler runs.
    ///
    /// The tap is the engine's observability hook: it can record the
    /// dispatch (tracing, metrics) but cannot touch the queue or the
    /// event, so it cannot perturb the simulation.
    pub fn step_with_tap<F, T>(&mut self, mut tap: T, mut handler: F) -> bool
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
        T: FnMut(SimTime, &E),
    {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event queue produced out-of-order event");
                self.now = ev.at;
                self.processed += 1;
                tap(ev.at, &ev.event);
                handler(ev.at, ev.event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        while self.step(&mut handler) {}
    }

    /// Runs until the queue drains, invoking `tap` for every delivered
    /// event before its handler (see [`Engine::step_with_tap`]).
    pub fn run_with_tap<F, T>(&mut self, mut tap: T, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
        T: FnMut(SimTime, &E),
    {
        while self.step_with_tap(&mut tap, &mut handler) {}
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events strictly after the horizon remain queued.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F)
    where
        F: FnMut(SimTime, E, &mut EventQueue<E>),
    {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step(&mut handler);
        }
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn run_drains_queue_in_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(2), 2u32);
        engine.schedule(SimTime::from_secs(1), 1u32);
        let mut seen = Vec::new();
        engine.run(|_, ev, _| seen.push(ev));
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(engine.processed(), 2);
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.now(), SimTime::from_secs(2));
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 0u32);
        let mut count = 0;
        engine.run(|now, ev, queue| {
            count += 1;
            if ev < 4 {
                queue.push(now + Duration::from_secs(1), ev + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(engine.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut engine = Engine::new();
        for i in 1..=10u64 {
            engine.schedule(SimTime::from_secs(i), i);
        }
        let mut seen = Vec::new();
        engine.run_until(SimTime::from_secs(5), |_, ev, _| seen.push(ev));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(engine.pending(), 5);
        // Resuming picks up the rest.
        engine.run(|_, ev, _| seen.push(ev));
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn schedule_batch_delivers_in_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(2), 100u32);
        engine.schedule_batch((0..5u32).map(|i| (SimTime::from_secs(u64::from(i)), i)));
        let mut seen = Vec::new();
        engine.run(|_, ev, _| seen.push(ev));
        // t=2 carries both the pre-scheduled 100 (earlier seq) and 2.
        assert_eq!(seen, vec![0, 1, 100, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn schedule_batch_rejects_past_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(5), 0u32);
        engine.run(|_, _, _| {});
        engine.schedule_batch([(SimTime::from_secs(1), 1u32)]);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(5), ());
        engine.run(|_, _, _| {});
        engine.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut engine: Engine<()> = Engine::new();
        assert!(!engine.step(|_, _, _| {}));
    }

    #[test]
    fn tap_sees_every_dispatch_before_its_handler() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 0u32);
        let order = std::cell::RefCell::new(Vec::new());
        engine.run_with_tap(
            |now, ev| order.borrow_mut().push((now, *ev, "tap")),
            |now, ev, queue| {
                order.borrow_mut().push((now, ev, "handler"));
                if ev < 2 {
                    queue.push(now + Duration::from_secs(1), ev + 1);
                }
            },
        );
        let order = order.into_inner();
        let expected: Vec<(SimTime, u32, &str)> = (0..=2u32)
            .flat_map(|i| {
                let t = SimTime::from_secs(u64::from(i));
                [(t, i, "tap"), (t, i, "handler")]
            })
            .collect();
        assert_eq!(order, expected);
        assert_eq!(engine.processed(), 3);
    }
}
