//! The observable inputs of one diagnosis case.
//!
//! [`Evidence`] is everything a diagnosis may look at, gathered from a
//! degraded run and (optionally) a healthy baseline: metrics snapshots,
//! per-component flow-completion samples, per-node last-activity
//! times, and the endpoints of aborted flows. It deliberately carries
//! *observations*, not labels — ground truth lives next to it in a
//! corpus cell's `label.json`, which only the eval harness reads.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use keddah_core::replay::ReplayReport;
use keddah_flowcap::{Component, Trace};
use keddah_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};

use crate::{DiagnoseError, Result};

/// One flow a fault killed: who was talking to whom when the run went
/// wrong. The shape of this set (a star around one host, a clean
/// bipartition) is the main localisation signal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbortedFlow {
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Payload bytes the flow carried.
    pub bytes: u64,
    /// Traffic component label.
    pub component: String,
}

/// The observable inputs for one case, serializable as a corpus cell's
/// `evidence.json`.
///
/// Any part may be empty: a trace-only diagnosis has no abort
/// endpoints, a metrics-only one has no FCT samples. The fingerprint
/// layer treats absence as "no signal", never as an error.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Evidence {
    /// Workload name, informational (carried into verdict output).
    pub workload: String,
    /// Metrics snapshot of the degraded run.
    pub metrics: MetricsSnapshot,
    /// Metrics snapshot of the baseline run (empty when absent).
    pub baseline_metrics: MetricsSnapshot,
    /// Per-component flow-completion samples of the degraded run, in
    /// seconds, aborted flows excluded.
    pub fct: BTreeMap<String, Vec<f64>>,
    /// Baseline per-component flow-completion samples.
    pub baseline_fct: BTreeMap<String, Vec<f64>>,
    /// Endpoints of the flows the degraded run aborted.
    pub aborted: Vec<AbortedFlow>,
    /// Per-node time of last completed traffic in the degraded run,
    /// seconds from run start.
    pub node_last_seen: BTreeMap<u32, f64>,
    /// Degraded-run makespan in seconds.
    pub makespan_secs: f64,
    /// Per-node time of last completed traffic in the baseline run.
    pub baseline_node_last_seen: BTreeMap<u32, f64>,
    /// Baseline makespan in seconds.
    pub baseline_makespan_secs: f64,
}

fn component_name(tag: u32) -> String {
    Component::ALL
        .get(tag as usize)
        .map_or("other", |c| c.name())
        .to_string()
}

/// Per-component FCT samples, per-node last-seen times, and makespan of
/// one replay (aborted flows excluded from all three).
fn replay_side(report: &ReplayReport) -> (BTreeMap<String, Vec<f64>>, BTreeMap<u32, f64>, f64) {
    let fct = report
        .fct_by_component
        .iter()
        .filter(|(_, samples)| !samples.is_empty())
        .map(|(component, samples)| (component.name().to_string(), samples.clone()))
        .collect();
    let aborted: std::collections::HashSet<usize> =
        report.sim.faults.aborted.iter().copied().collect();
    let mut last_seen: BTreeMap<u32, f64> = BTreeMap::new();
    for (i, r) in report.sim.results.iter().enumerate() {
        if aborted.contains(&i) {
            continue;
        }
        let finish = r.finish.as_secs_f64();
        for node in [r.spec.src.0, r.spec.dst.0] {
            let slot = last_seen.entry(node).or_insert(0.0);
            if finish > *slot {
                *slot = finish;
            }
        }
    }
    (fct, last_seen, report.makespan_secs())
}

/// Per-component flow duration samples, per-node last-seen times, and
/// makespan read directly from a capture trace (the trace-only input
/// path, where no replay report exists).
fn trace_side(trace: &Trace) -> (BTreeMap<String, Vec<f64>>, BTreeMap<u32, f64>, f64) {
    let mut fct: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut last_seen: BTreeMap<u32, f64> = BTreeMap::new();
    for flow in trace.flows() {
        let duration = flow.end.saturating_since(flow.start).as_secs_f64();
        let name = flow.component.map_or("other", Component::name);
        fct.entry(name.to_string()).or_default().push(duration);
        let end = flow.end.as_secs_f64();
        for node in [flow.tuple.src.0, flow.tuple.dst.0] {
            let slot = last_seen.entry(node).or_insert(0.0);
            if end > *slot {
                *slot = end;
            }
        }
    }
    (fct, last_seen, trace.makespan().as_secs_f64())
}

impl Evidence {
    /// Builds evidence from a degraded replay and its baseline, plus the
    /// metrics snapshots recorded alongside them.
    #[must_use]
    pub fn from_replays(
        workload: &str,
        degraded: &ReplayReport,
        metrics: MetricsSnapshot,
        baseline: &ReplayReport,
        baseline_metrics: MetricsSnapshot,
    ) -> Evidence {
        let (fct, node_last_seen, makespan_secs) = replay_side(degraded);
        let (baseline_fct, baseline_node_last_seen, baseline_makespan_secs) = replay_side(baseline);
        let aborted = degraded
            .sim
            .faults
            .aborted
            .iter()
            .filter_map(|&i| degraded.sim.results.get(i))
            .map(|r| AbortedFlow {
                src: r.spec.src.0,
                dst: r.spec.dst.0,
                bytes: r.spec.bytes,
                component: component_name(r.spec.tag),
            })
            .collect();
        Evidence {
            workload: workload.to_string(),
            metrics,
            baseline_metrics,
            fct,
            baseline_fct,
            aborted,
            node_last_seen,
            makespan_secs,
            baseline_node_last_seen,
            baseline_makespan_secs,
        }
    }

    /// Builds evidence from a degraded capture trace and an optional
    /// baseline trace — the artefact-only path, no re-simulation.
    ///
    /// Trace metadata counters land in the respective snapshot's
    /// `hadoop` subsystem; flow durations stand in for replay FCTs.
    #[must_use]
    pub fn from_traces(degraded: &Trace, baseline: Option<&Trace>) -> Evidence {
        let snapshot_of = |trace: &Trace| {
            let mut snap = MetricsSnapshot::default();
            if let Some(counters) = &trace.meta().counters {
                let sub = snap.subsystems.entry("hadoop".to_string()).or_default();
                for (name, value) in counters {
                    sub.counters.insert(name.clone(), *value);
                }
            }
            snap
        };
        let (fct, node_last_seen, makespan_secs) = trace_side(degraded);
        let (baseline_fct, baseline_node_last_seen, baseline_makespan_secs) = baseline
            .map(trace_side)
            .unwrap_or((BTreeMap::new(), BTreeMap::new(), 0.0));
        Evidence {
            workload: degraded.meta().workload.clone(),
            metrics: snapshot_of(degraded),
            baseline_metrics: baseline.map(snapshot_of).unwrap_or_default(),
            fct,
            baseline_fct,
            aborted: Vec::new(),
            node_last_seen,
            makespan_secs,
            baseline_node_last_seen,
            baseline_makespan_secs,
        }
    }

    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::write_pretty(&self.to_value())
    }

    /// Parses evidence from JSON; `origin` names the input in errors.
    ///
    /// # Errors
    ///
    /// Returns [`DiagnoseError::Parse`] on malformed input — truncated
    /// or corrupt artefacts are an expected outcome, never a panic.
    pub fn from_json(input: &str, origin: &str) -> Result<Evidence> {
        let value =
            serde::json::parse(input).map_err(|e| DiagnoseError::parse(origin, e.to_string()))?;
        Evidence::from_value(&value).map_err(|e| DiagnoseError::parse(origin, e.to_string()))
    }

    /// Reads evidence from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`DiagnoseError::Io`] on read failure and
    /// [`DiagnoseError::Parse`] on malformed content.
    pub fn load(path: &Path) -> Result<Evidence> {
        let shown = path.display().to_string();
        let input = fs::read_to_string(path).map_err(|e| DiagnoseError::io(&shown, e))?;
        Evidence::from_json(&input, &shown)
    }

    /// Writes the evidence to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`DiagnoseError::Io`] on write failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        fs::write(path, self.to_json())
            .map_err(|e| DiagnoseError::io(path.display().to_string(), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keddah_flowcap::TraceMeta;

    #[test]
    fn json_round_trip() {
        let mut ev = Evidence {
            workload: "terasort".into(),
            makespan_secs: 12.5,
            ..Evidence::default()
        };
        ev.fct.insert("shuffle".into(), vec![0.5, 1.25]);
        ev.aborted.push(AbortedFlow {
            src: 1,
            dst: 4,
            bytes: 1 << 20,
            component: "shuffle".into(),
        });
        ev.node_last_seen.insert(3, 4.75);
        let back = Evidence::from_json(&ev.to_json(), "test").unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn malformed_json_is_a_structured_error() {
        let err = Evidence::from_json("{ truncated", "bad.json").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad.json"), "{msg}");
        assert!(matches!(err, DiagnoseError::Parse { .. }));
        // Valid JSON of the wrong shape is equally structured.
        assert!(matches!(
            Evidence::from_json("[1, 2]", "wrong.json"),
            Err(DiagnoseError::Parse { .. })
        ));
    }

    #[test]
    fn missing_file_is_a_structured_error() {
        let err = Evidence::load(Path::new("/nonexistent/evidence.json")).unwrap_err();
        assert!(matches!(err, DiagnoseError::Io { .. }));
    }

    #[test]
    fn trace_evidence_carries_counters_and_durations() {
        let meta = TraceMeta {
            workload: "wordcount".into(),
            counters: Some([("node_crashes".to_string(), 1u64)].into_iter().collect()),
            ..TraceMeta::default()
        };
        let trace = Trace::new(meta, Vec::new());
        let ev = Evidence::from_traces(&trace, None);
        assert_eq!(ev.workload, "wordcount");
        assert_eq!(ev.metrics.counter("hadoop", "node_crashes"), 1);
        assert!(ev.fct.is_empty());
        assert!(ev.baseline_metrics.is_empty());
    }
}
