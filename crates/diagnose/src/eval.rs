//! Scoring the classifier against a labelled corpus.
//!
//! Walks a corpus directory ([`crate::corpus`]), diagnoses every cell's
//! evidence blind (labels are only opened for scoring), and reports
//! per-class precision/recall plus the macro averages the CI gate
//! pins. Cells whose artefacts fail to parse are *counted* — a
//! diagnosis tool must survive the truncated files of the incident it
//! explains — and skipped, never fatal.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use keddah_faults::FaultClass;
use serde::{Deserialize, Serialize};

use crate::corpus::{CellLabel, Manifest};
use crate::{diagnose, DiagnoseError, Diagnosis, Evidence, Result};

/// Confusion counts and derived rates for one fault class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Cells whose ground truth is this class.
    pub truths: u64,
    /// Cells whose top verdict was this class.
    pub predicted: u64,
    /// Cells where both agree.
    pub correct: u64,
    /// `correct / predicted` (0 when never predicted).
    pub precision: f64,
    /// `correct / truths` (0 when the class never occurs).
    pub recall: f64,
}

/// The committed evaluation artefact (`EVAL_diagnose.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Cells the corpus listed.
    pub cells: u64,
    /// Cells skipped because an artefact failed to load or parse.
    pub parse_errors: u64,
    /// Cells whose top verdict matched the label.
    pub correct: u64,
    /// `correct / scored cells`.
    pub accuracy: f64,
    /// Macro-averaged precision over classes present in the truth set.
    pub macro_precision: f64,
    /// Macro-averaged recall over classes present in the truth set.
    pub macro_recall: f64,
    /// Per-class breakdown, keyed by class label.
    pub per_class: BTreeMap<String, ClassStats>,
    /// `"<cell> expected=<class> got=<class>"`, one per miss, in
    /// corpus order — the first places to look when the gate trips.
    pub mispredicted: Vec<String>,
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        round4(num as f64 / den as f64)
    }
}

/// Scores already-diagnosed cases (the pure half of [`evaluate`]).
#[must_use]
pub fn score(cases: &[(CellLabel, Diagnosis)], cells: u64, parse_errors: u64) -> EvalReport {
    let mut truths: BTreeMap<FaultClass, u64> = BTreeMap::new();
    let mut predicted: BTreeMap<FaultClass, u64> = BTreeMap::new();
    let mut correct_by: BTreeMap<FaultClass, u64> = BTreeMap::new();
    let mut mispredicted = Vec::new();
    for (label, diagnosis) in cases {
        let got = diagnosis.top().class;
        *truths.entry(label.class).or_default() += 1;
        *predicted.entry(got).or_default() += 1;
        if got == label.class {
            *correct_by.entry(got).or_default() += 1;
        } else {
            mispredicted.push(format!(
                "{}_{}_{} expected={} got={}",
                label.workload, label.class, label.seed, label.class, got
            ));
        }
    }
    let mut per_class = BTreeMap::new();
    let (mut precision_sum, mut recall_sum, mut class_count) = (0.0, 0.0, 0u64);
    for class in FaultClass::ALL {
        let t = truths.get(&class).copied().unwrap_or(0);
        let p = predicted.get(&class).copied().unwrap_or(0);
        let c = correct_by.get(&class).copied().unwrap_or(0);
        if t == 0 && p == 0 {
            continue;
        }
        let stats = ClassStats {
            truths: t,
            predicted: p,
            correct: c,
            precision: ratio(c, p),
            recall: ratio(c, t),
        };
        if t > 0 {
            precision_sum += stats.precision;
            recall_sum += stats.recall;
            class_count += 1;
        }
        per_class.insert(class.label().to_string(), stats);
    }
    let correct: u64 = correct_by.values().sum();
    EvalReport {
        cells,
        parse_errors,
        correct,
        accuracy: ratio(correct, cases.len() as u64),
        macro_precision: round4(precision_sum / class_count.max(1) as f64),
        macro_recall: round4(recall_sum / class_count.max(1) as f64),
        per_class,
        mispredicted,
    }
}

/// Diagnoses and scores every cell of the corpus at `dir`.
///
/// # Errors
///
/// Fails only on a missing/unreadable corpus manifest or an empty
/// corpus; broken individual cells count as `parse_errors`.
pub fn evaluate(dir: &Path) -> Result<EvalReport> {
    let manifest = Manifest::load(dir)?;
    if manifest.cells.is_empty() {
        return Err(DiagnoseError::Invalid(format!(
            "corpus at {} lists no cells",
            dir.display()
        )));
    }
    let mut cases = Vec::new();
    let mut parse_errors = 0u64;
    for name in &manifest.cells {
        let cell_dir = dir.join(name);
        let label = load_label(&cell_dir.join("label.json"));
        let evidence = Evidence::load(&cell_dir.join("evidence.json"));
        match (label, evidence) {
            (Ok(label), Ok(evidence)) => cases.push((label, diagnose(&evidence))),
            _ => parse_errors += 1,
        }
    }
    Ok(score(&cases, manifest.cells.len() as u64, parse_errors))
}

/// Reads a cell's ground-truth label.
///
/// # Errors
///
/// [`DiagnoseError::Io`] / [`DiagnoseError::Parse`] as usual.
pub fn load_label(path: &Path) -> Result<CellLabel> {
    let shown = path.display().to_string();
    let input = fs::read_to_string(path).map_err(|e| DiagnoseError::io(&shown, e))?;
    let value =
        serde::json::parse(&input).map_err(|e| DiagnoseError::parse(&shown, e.to_string()))?;
    CellLabel::from_value(&value).map_err(|e| DiagnoseError::parse(&shown, e.to_string()))
}

impl EvalReport {
    /// Serializes to pretty JSON (the committed artefact format).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::write_pretty(&self.to_value())
    }

    /// Parses a committed report.
    ///
    /// # Errors
    ///
    /// [`DiagnoseError::Parse`] on malformed input.
    pub fn from_json(input: &str, origin: &str) -> Result<EvalReport> {
        let value =
            serde::json::parse(input).map_err(|e| DiagnoseError::parse(origin, e.to_string()))?;
        EvalReport::from_value(&value).map_err(|e| DiagnoseError::parse(origin, e.to_string()))
    }

    /// Reads a committed report from disk.
    ///
    /// # Errors
    ///
    /// [`DiagnoseError::Io`] / [`DiagnoseError::Parse`] as usual.
    pub fn load(path: &Path) -> Result<EvalReport> {
        let shown = path.display().to_string();
        let input = fs::read_to_string(path).map_err(|e| DiagnoseError::io(&shown, e))?;
        EvalReport::from_json(&input, &shown)
    }

    /// The CI gate: this (fresh) report must not fall below the
    /// committed floor on either macro metric.
    ///
    /// # Errors
    ///
    /// [`DiagnoseError::Invalid`] naming the regressed metric.
    pub fn check_against(&self, committed: &EvalReport) -> Result<()> {
        const SLACK: f64 = 1e-9;
        if self.macro_precision < committed.macro_precision - SLACK {
            return Err(DiagnoseError::Invalid(format!(
                "macro precision regressed: {} < committed {}",
                self.macro_precision, committed.macro_precision
            )));
        }
        if self.macro_recall < committed.macro_recall - SLACK {
            return Err(DiagnoseError::Invalid(format!(
                "macro recall regressed: {} < committed {}",
                self.macro_recall, committed.macro_recall
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keddah_faults::FaultSpec;

    fn case(truth: FaultClass, got: FaultClass) -> (CellLabel, Diagnosis) {
        let label = CellLabel {
            workload: "terasort".into(),
            class: truth,
            seed: 0,
            spec: FaultSpec::empty(),
        };
        let verdicts = FaultClass::ALL
            .into_iter()
            .map(|class| crate::Verdict {
                class,
                score: if class == got { 0.9 } else { 0.05 },
                detail: String::new(),
            })
            .collect::<Vec<_>>();
        let mut verdicts = verdicts;
        verdicts.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.class.cmp(&b.class)));
        (
            label,
            Diagnosis {
                workload: "terasort".into(),
                verdicts,
            },
        )
    }

    #[test]
    fn perfect_cases_score_one() {
        let cases: Vec<_> = FaultClass::ALL.into_iter().map(|c| case(c, c)).collect();
        let report = score(&cases, 5, 0);
        assert_eq!(report.correct, 5);
        assert_eq!(report.accuracy, 1.0);
        assert_eq!(report.macro_precision, 1.0);
        assert_eq!(report.macro_recall, 1.0);
        assert!(report.mispredicted.is_empty());
    }

    #[test]
    fn misses_show_up_per_class_and_by_name() {
        let cases = vec![
            case(FaultClass::NodeCrash, FaultClass::NodeCrash),
            case(FaultClass::NodeCrash, FaultClass::Partition),
            case(FaultClass::Partition, FaultClass::Partition),
        ];
        let report = score(&cases, 3, 1);
        assert_eq!(report.parse_errors, 1);
        assert_eq!(report.correct, 2);
        let crash = &report.per_class["node_crash"];
        assert_eq!((crash.truths, crash.predicted, crash.correct), (2, 1, 1));
        assert_eq!(crash.recall, 0.5);
        let partition = &report.per_class["partition"];
        assert_eq!(partition.precision, 0.5);
        assert_eq!(partition.recall, 1.0);
        assert_eq!(report.mispredicted.len(), 1);
        assert!(report.mispredicted[0].contains("expected=node_crash got=partition"));
    }

    #[test]
    fn gate_trips_on_regression_only() {
        let good = score(&[case(FaultClass::None, FaultClass::None)], 1, 0);
        let bad = score(&[case(FaultClass::None, FaultClass::LinkDown)], 1, 0);
        assert!(good.check_against(&good).is_ok());
        assert!(bad.check_against(&good).is_err());
        assert!(good.check_against(&bad).is_ok());
    }

    #[test]
    fn report_json_round_trips() {
        let report = score(&[case(FaultClass::LinkDown, FaultClass::None)], 1, 0);
        let back = EvalReport::from_json(&report.to_json(), "test").unwrap();
        assert_eq!(back, report);
    }
}
