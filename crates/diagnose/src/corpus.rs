//! Building labelled diagnosis corpora: seeded fault scenarios swept
//! across the paper workloads, each rendered into an on-disk cell of
//! ground-truth label plus observable evidence.
//!
//! One cell is one experiment: capture a clean baseline job, draw a
//! fault scenario of the cell's class, capture/replay the degraded run,
//! and keep only what a real operator would have — metrics snapshots,
//! flow-completion samples, abort endpoints ([`crate::Evidence`]) —
//! next to the injected spec (`label.json`, read only by the eval
//! harness). The whole sweep is deterministic and embarrassingly
//! parallel; artefacts are byte-identical for any worker count because
//! cells are computed independently and written in cell order.

use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use keddah_core::replay::{replay_faulted_observed, replay_observed, trace_to_flows};
use keddah_faults::{generate, FaultClass, FaultGen, FaultKind, FaultSpec};
use keddah_hadoop::{run_job_faulted, ClusterSpec, HadoopConfig, JobSpec, Workload};
use keddah_netsim::{SimOptions, Topology};
use keddah_obs::Obs;
use serde::{Deserialize, Serialize};

use crate::{DiagnoseError, Evidence, Result};

/// Racks in the capture cluster.
const RACKS: u32 = 2;
/// Workers per rack; `RACKS * NODES_PER_RACK` workers plus master 0.
const NODES_PER_RACK: u32 = 3;
/// Job input size: 8 blocks at [`BLOCK_BYTES`].
const INPUT_BYTES: u64 = 256 << 20;
/// HDFS block size for corpus jobs.
const BLOCK_BYTES: u64 = 32 << 20;
/// Reduce tasks per job (one per worker).
const REDUCERS: u32 = 6;
/// Bounded rejection sampling: scenario draws per cell before giving up.
const MAX_DRAWS: u64 = 512;
/// Cap on impact-verifying trial replays per cell (each is a full
/// network simulation of the cell's flows).
const MAX_TRIAL_REPLAYS: u64 = 64;

/// Number of hosts the capture cluster exposes (master + workers).
const HOSTS: u32 = RACKS * NODES_PER_RACK + 1;

/// The replay fabric: 3 racks of 3 hosts behind 2 spines. Hosts 0–6
/// carry the capture cluster's nodes; directed link ids `2h`/`2h+1` are
/// host `h`'s uplink/downlink, ids 18.. are leaf–spine fabric links.
#[must_use]
pub fn fabric() -> Topology {
    Topology::leaf_spine(3, 3, 2, 1e9, 2.0)
}

fn corpus_cluster() -> ClusterSpec {
    ClusterSpec::racks(RACKS, NODES_PER_RACK)
}

fn corpus_config() -> HadoopConfig {
    HadoopConfig::default()
        .with_reducers(REDUCERS)
        .with_block_bytes(BLOCK_BYTES)
}

fn corpus_options() -> SimOptions {
    SimOptions {
        mouse_threshold: 10_000,
        ..SimOptions::default()
    }
}

/// One planned corpus cell: which workload, which fault class, which
/// seed lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Workload under test.
    pub workload: Workload,
    /// Fault scenario class to inject ([`FaultClass::None`] = healthy).
    pub class: FaultClass,
    /// Seed lane; distinct lanes draw distinct runs and scenarios.
    pub seed: u64,
}

impl CellSpec {
    /// The cell's directory name, `<workload>_<class>_<seed>`.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "{}_{}_{}",
            self.workload.name(),
            self.class.label(),
            self.seed
        )
    }
}

/// The full sweep plan: `workloads` × every [`FaultClass`] × `seeds`
/// lanes, in that nesting order (workload-major).
#[must_use]
pub fn plan(workloads: &[Workload], seeds: u64) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &workload in workloads {
        for class in FaultClass::ALL {
            for seed in 0..seeds {
                cells.push(CellSpec {
                    workload,
                    class,
                    seed,
                });
            }
        }
    }
    cells
}

/// A cell's ground truth, written to `label.json`. Only the eval
/// harness reads this — the classifier sees `evidence.json` alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLabel {
    /// Workload name.
    pub workload: String,
    /// The injected scenario class (the answer).
    pub class: FaultClass,
    /// Seed lane the cell was drawn from.
    pub seed: u64,
    /// The exact injected schedule, for forensics.
    pub spec: FaultSpec,
}

/// One materialised corpus cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Directory name within the corpus.
    pub name: String,
    /// Ground truth.
    pub label: CellLabel,
    /// Observable inputs.
    pub evidence: Evidence,
}

/// Minimum degraded/baseline makespan stretch for an accepted
/// link-degradation scenario: the slowdown must be observable, or the
/// cell would carry a `link_degraded` label over no-op evidence.
/// Matches the classifier's [`crate::verdict::MAKESPAN_TAU`] so every
/// accepted cell clears a detection threshold.
const DEGRADE_MIN_STRETCH: f64 = 1.15;

/// Alternative degrade-impact criterion: some traffic component's mean
/// FCT slowed by at least this factor (matches the classifier's
/// slowdown threshold [`crate::verdict::TAU`]). Compute-sparse
/// workloads can absorb a slow link without moving the makespan.
const DEGRADE_MIN_MEAN_RATIO: f64 = 1.2;

fn scenario_gen(class: FaultClass, horizon: u64) -> FaultGen {
    FaultGen {
        hosts: HOSTS,
        links: u32::try_from(fabric().link_count()).unwrap_or(u32::MAX),
        horizon_nanos: horizon,
        node_crashes: u32::from(class == FaultClass::NodeCrash),
        recover_after_nanos: None,
        link_downs: u32::from(class == FaultClass::LinkDown),
        link_degrades: u32::from(class == FaultClass::LinkDegraded),
        partitions: u32::from(class == FaultClass::Partition),
    }
}

/// Cheap structural screen on a drawn scenario, before any replay:
/// fault times that leave a pre-fault sample, link ids that carried
/// baseline traffic (`link_load` — which flow crosses which directed
/// link depends on capture-side connection orientation, so link ids
/// cannot be picked from the topology alone), deep-enough degrades.
fn plausible(spec: &FaultSpec, horizon: u64, link_load: &[u64]) -> bool {
    let max_load = link_load.iter().copied().max().unwrap_or(0);
    let Some(fault) = spec.faults.first() else {
        return false;
    };
    match &fault.kind {
        // Fire after some flows completed, so the pre-fault half of
        // the degraded run still yields samples.
        FaultKind::NodeCrash { .. } | FaultKind::Partition { .. } => fault.at_nanos >= horizon / 4,
        // A loaded leaf–spine link: the fabric has a second spine, so
        // the failure is routable-around (the reroute signature) yet
        // flows actually cross it.
        FaultKind::LinkDown { link } => {
            *link >= 18 && link_load.get(*link as usize).copied().unwrap_or(0) > 0
        }
        // A heavily loaded link, degraded deeply and early enough to
        // slow a visible share of the run.
        FaultKind::LinkDegraded { link, factor } => {
            link_load.get(*link as usize).copied().unwrap_or(0) * 4 >= max_load
                && *factor <= 0.3
                && fault.at_nanos <= horizon / 4
        }
        FaultKind::NodeRecover { .. } => false,
    }
}

/// Draws a capture-time node-crash scenario by bounded rejection
/// sampling (deterministic in its arguments).
fn draw_crash(span_nanos: u64, fault_seed: u64, link_load: &[u64]) -> Result<FaultSpec> {
    let horizon = (span_nanos / 2).max(1);
    for attempt in 0..MAX_DRAWS {
        let seed = fault_seed.wrapping_add(attempt.wrapping_mul(7919));
        let spec = generate(&scenario_gen(FaultClass::NodeCrash, horizon), seed);
        if plausible(&spec, horizon, link_load) {
            return Ok(spec);
        }
    }
    Err(DiagnoseError::Invalid(format!(
        "no acceptable node_crash scenario within {MAX_DRAWS} draws (seed {fault_seed})"
    )))
}

/// Draws a replay-time scenario (link down/degrade, partition) and
/// verifies its *impact* by trial-replaying the baseline flows under
/// it: a downed link only registers reroutes if flows are in flight
/// when it fires, and a degrade only matters if the link was a
/// bottleneck — scenarios without observable effect would be label
/// noise, so they are redrawn. Returns the accepted scenario with its
/// (already observed) degraded replay.
#[allow(clippy::too_many_arguments)]
fn draw_replay_scenario(
    class: FaultClass,
    span_nanos: u64,
    fault_seed: u64,
    topo: &Topology,
    flows: &[keddah_netsim::FlowSpec],
    options: SimOptions,
    baseline: &keddah_core::replay::ReplayReport,
) -> Result<(FaultSpec, keddah_core::replay::ReplayReport, Obs)> {
    // Degrades and partitions fire in the first half so the run has a
    // pre-fault phase; a downed link needs flows in flight, which may
    // only exist late (e.g. a shuffle burst near the end), so its draws
    // cover the full span and the window screen below places them.
    let horizon = if class == FaultClass::LinkDown {
        span_nanos.max(1)
    } else {
        (span_nanos / 2).max(1)
    };
    let link_load = &baseline.sim.link_bytes;
    // Per-link active windows: a downed link only forces reroutes while
    // a flow is in flight *on that link*, so firing times are screened
    // per link before paying for a trial replay. The simulator routes
    // flow `i` with ECMP hash `i`, and pre-fault dynamics match the
    // baseline exactly (paired replays), so each baseline flow's links
    // and (start, finish) window are exact. Mice are skipped — below
    // the fast-path threshold they are never in flight to reroute.
    let link_windows: Vec<(u32, u64, u64)> = baseline
        .sim
        .results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.spec.bytes >= 64 << 10)
        .flat_map(|(i, r)| {
            topo.route(r.spec.src, r.spec.dst, i as u64)
                .into_iter()
                .map(move |l| (l.0, r.spec.start.as_nanos(), r.finish.as_nanos()))
        })
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let impact = |report: &keddah_core::replay::ReplayReport| -> bool {
        match class {
            FaultClass::LinkDown => report.sim.faults.rerouted_flows > 0,
            // A degrade is observable when the whole run stretched, or
            // when some traffic component slowed markedly on average
            // (compute-sparse workloads can absorb a slow link without
            // moving the makespan).
            FaultClass::LinkDegraded => {
                report.makespan_secs() >= DEGRADE_MIN_STRETCH * baseline.makespan_secs()
                    || report.fct_by_component.iter().any(|(component, degraded)| {
                        baseline.fct_by_component.get(component).is_some_and(|b| {
                            b.len() >= 8
                                && degraded.len() >= 8
                                && mean(b) > 0.0
                                && mean(degraded) >= DEGRADE_MIN_MEAN_RATIO * mean(b)
                        })
                    })
            }
            FaultClass::Partition => !report.sim.faults.aborted.is_empty(),
            _ => true,
        }
    };
    let mut trials = 0u64;
    for attempt in 0..MAX_DRAWS {
        let seed = fault_seed.wrapping_add(attempt.wrapping_mul(7919));
        let mut spec = generate(&scenario_gen(class, horizon), seed);
        if !plausible(&spec, horizon, link_load) {
            continue;
        }
        if class == FaultClass::LinkDown {
            let FaultKind::LinkDown { link } = spec.faults[0].kind else {
                continue;
            };
            // Snap the drawn firing time into one of the link's windows
            // (chosen by the draw, midpoint fired) — in-flight windows
            // cover a sliver of the span, so pure rejection on the time
            // axis would almost never hit one.
            let windows: Vec<(u64, u64)> = link_windows
                .iter()
                .filter(|&&(l, _, _)| l == link)
                .map(|&(_, start, finish)| (start, finish))
                .collect();
            if windows.is_empty() {
                continue;
            }
            let (start, finish) = windows[(seed % windows.len() as u64) as usize];
            spec.faults[0].at_nanos = start + (finish - start) / 2;
        }
        trials += 1;
        if trials > MAX_TRIAL_REPLAYS {
            break;
        }
        let obs = Obs::enabled();
        let report = replay_faulted_observed(topo, flows, &spec, options, &obs)
            .map_err(|e| DiagnoseError::Invalid(e.to_string()))?;
        if impact(&report) {
            return Ok((spec, report, obs));
        }
    }
    Err(DiagnoseError::Invalid(format!(
        "no {class} scenario with observable impact within {MAX_DRAWS} draws (seed {fault_seed})"
    )))
}

/// Builds one cell end to end. Deterministic in `spec` alone.
///
/// # Errors
///
/// Returns [`DiagnoseError::Invalid`] when scenario sampling or the
/// replay rejects the cell — a corpus configuration bug, not bad input.
pub fn build_cell(spec: &CellSpec) -> Result<Cell> {
    let cluster = corpus_cluster();
    let config = corpus_config();
    let job = JobSpec::new(spec.workload, INPUT_BYTES);
    let topo = fabric();
    let options = corpus_options();
    let invalid = |e: &dyn std::fmt::Display| DiagnoseError::Invalid(e.to_string());

    // Paired design: baseline and degraded captures share a seed, so
    // the two sides differ *only* by the injected fault. An unpaired
    // baseline (different seed) carries enough natural placement
    // variance to mimic a degradation and drown the real signal.
    let capture_seed = 11 + 100 * spec.seed;
    let fault_seed = (spec.workload as u64)
        .wrapping_mul(1_000_003)
        .wrapping_add(spec.class as u64 * 10_007)
        .wrapping_add(spec.seed * 101 + 17);

    let baseline_run = run_job_faulted(&cluster, &config, &job, capture_seed, &FaultSpec::empty());
    let span_nanos = baseline_run.trace.makespan().as_nanos();
    let baseline_flows = trace_to_flows(&baseline_run.trace, &topo).map_err(|e| invalid(&e))?;

    let baseline_obs = Obs::enabled();
    let baseline_replay = replay_observed(&topo, &baseline_flows, options, &baseline_obs);
    baseline_run.counters.record_obs(&baseline_obs);

    // Node faults act at capture time (the capture side has no network)
    // and again at replay time; link faults and partitions act at
    // replay time only, so their capture is the clean one and the
    // second job run is skipped.
    let (fault_spec, degraded_replay, degraded_obs) = match spec.class {
        FaultClass::None => {
            let obs = Obs::enabled();
            let replay = replay_observed(&topo, &baseline_flows, options, &obs);
            baseline_run.counters.record_obs(&obs);
            (FaultSpec::empty(), replay, obs)
        }
        FaultClass::NodeCrash => {
            let fault_spec = draw_crash(span_nanos, fault_seed, &baseline_replay.sim.link_bytes)?;
            let degraded_run = run_job_faulted(&cluster, &config, &job, capture_seed, &fault_spec);
            let flows = trace_to_flows(&degraded_run.trace, &topo).map_err(|e| invalid(&e))?;
            let obs = Obs::enabled();
            let replay = replay_faulted_observed(&topo, &flows, &fault_spec, options, &obs)
                .map_err(|e| invalid(&e))?;
            degraded_run.counters.record_obs(&obs);
            (fault_spec, replay, obs)
        }
        FaultClass::LinkDown | FaultClass::LinkDegraded | FaultClass::Partition => {
            let (fault_spec, replay, obs) = draw_replay_scenario(
                spec.class,
                span_nanos,
                fault_seed,
                &topo,
                &baseline_flows,
                options,
                &baseline_replay,
            )?;
            baseline_run.counters.record_obs(&obs);
            (fault_spec, replay, obs)
        }
    };

    let evidence = Evidence::from_replays(
        spec.workload.name(),
        &degraded_replay,
        degraded_obs.metrics(),
        &baseline_replay,
        baseline_obs.metrics(),
    );
    Ok(Cell {
        name: spec.name(),
        label: CellLabel {
            workload: spec.workload.name().to_string(),
            class: spec.class,
            seed: spec.seed,
            spec: fault_spec,
        },
        evidence,
    })
}

/// The corpus index, written to `manifest.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Cell directory names, in build (= sorted sweep) order.
    pub cells: Vec<String>,
}

impl Manifest {
    /// Reads a corpus manifest.
    ///
    /// # Errors
    ///
    /// [`DiagnoseError::Io`] / [`DiagnoseError::Parse`] as usual.
    pub fn load(dir: &Path) -> Result<Manifest> {
        let path = dir.join("manifest.json");
        let shown = path.display().to_string();
        let input = fs::read_to_string(&path).map_err(|e| DiagnoseError::io(&shown, e))?;
        let value =
            serde::json::parse(&input).map_err(|e| DiagnoseError::parse(&shown, e.to_string()))?;
        Manifest::from_value(&value).map_err(|e| DiagnoseError::parse(&shown, e.to_string()))
    }
}

/// Builds every planned cell (in parallel across `jobs` workers) and
/// writes the corpus under `out`: one `<cell>/label.json` +
/// `<cell>/evidence.json` per cell plus a `manifest.json` index.
///
/// Workers only *compute*; all writes happen on the calling thread in
/// plan order, so the artefact bytes never depend on `jobs`.
///
/// # Errors
///
/// Fails on the first cell that cannot be built or written.
pub fn build(out: &Path, workloads: &[Workload], seeds: u64, jobs: usize) -> Result<Manifest> {
    let cells = plan(workloads, seeds);
    let jobs = jobs.max(1).min(cells.len().max(1));
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<Cell>>> = (0..cells.len()).map(|_| None).collect();

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                let cells = &cells;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            return done;
                        }
                        done.push((i, build_cell(&cells[i])));
                    }
                })
            })
            .collect();
        for worker in workers {
            for (i, result) in worker.join().expect("corpus worker panicked") {
                slots[i] = Some(result);
            }
        }
    });

    let io = |path: &Path, e: std::io::Error| DiagnoseError::io(path.display().to_string(), e);
    fs::create_dir_all(out).map_err(|e| io(out, e))?;
    let mut names = Vec::with_capacity(cells.len());
    for slot in slots {
        let cell = slot.expect("every planned cell is built")?;
        let dir = out.join(&cell.name);
        fs::create_dir_all(&dir).map_err(|e| io(&dir, e))?;
        let label_path = dir.join("label.json");
        fs::write(
            &label_path,
            serde::json::write_pretty(&cell.label.to_value()),
        )
        .map_err(|e| io(&label_path, e))?;
        cell.evidence.save(&dir.join("evidence.json"))?;
        names.push(cell.name);
    }
    let manifest = Manifest { cells: names };
    let manifest_path = out.join("manifest.json");
    fs::write(
        &manifest_path,
        serde::json::write_pretty(&manifest.to_value()),
    )
    .map_err(|e| io(&manifest_path, e))?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_the_sweep_in_stable_order() {
        let cells = plan(Workload::PAPER, 2);
        assert_eq!(
            cells.len(),
            Workload::PAPER.len() * FaultClass::ALL.len() * 2
        );
        let names: Vec<String> = cells.iter().map(CellSpec::name).collect();
        assert_eq!(names[0], format!("{}_none_0", Workload::PAPER[0].name()));
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    /// A synthetic baseline load profile: light host links, one busy
    /// fabric link per spine.
    fn load() -> Vec<u64> {
        let mut load = vec![1_000u64; 30];
        load[20] = 8_000_000;
        load[24] = 6_000_000;
        load[4] = 7_000_000; // a busy host link is degrade-eligible too
        load
    }

    #[test]
    fn crash_draws_target_workers_after_warmup() {
        let span = 40_000_000_000; // 40 s
        for seed in 0..4 {
            let spec = draw_crash(span, seed, &load()).unwrap();
            assert!(matches!(
                spec.faults[0].kind,
                FaultKind::NodeCrash { node } if (1..HOSTS).contains(&node)
            ));
            assert!(spec.faults[0].at_nanos >= span / 8);
        }
        assert_eq!(
            draw_crash(span, 7, &load()).unwrap(),
            draw_crash(span, 7, &load()).unwrap()
        );
    }

    #[test]
    fn plausibility_screen_rejects_unloaded_links() {
        let horizon = 20_000_000_000u64;
        let fault = |kind: FaultKind, at_nanos: u64| FaultSpec {
            faults: vec![keddah_faults::TimedFault { at_nanos, kind }],
        };
        // Host-side or idle fabric links are not link_down candidates.
        assert!(!plausible(
            &fault(FaultKind::LinkDown { link: 4 }, 0),
            horizon,
            &load()
        ));
        assert!(plausible(
            &fault(FaultKind::LinkDown { link: 20 }, 0),
            horizon,
            &load()
        ));
        // Degrades must hit a heavily loaded link, deeply and early.
        let degrade = |link, factor, at| fault(FaultKind::LinkDegraded { link, factor }, at);
        assert!(plausible(&degrade(20, 0.2, 0), horizon, &load()));
        assert!(!plausible(&degrade(21, 0.2, 0), horizon, &load()));
        assert!(!plausible(&degrade(20, 0.8, 0), horizon, &load()));
        assert!(!plausible(&degrade(20, 0.2, horizon), horizon, &load()));
        // Crashes and partitions must leave a pre-fault window.
        assert!(!plausible(
            &fault(FaultKind::NodeCrash { node: 3 }, 0),
            horizon,
            &load()
        ));
        assert!(plausible(
            &fault(FaultKind::Partition { cut: vec![1, 2] }, horizon / 2),
            horizon,
            &load()
        ));
    }
}
