//! Deterministic scoring: from a [`Features`] fingerprint to a ranked
//! list of fault-class verdicts.
//!
//! The rules are a small decision ladder, not a learned model — each
//! class has one dominant signature and a handful of partial-credit
//! cases, so every score is explainable and the ranking is reproducible
//! byte-for-byte. Scores are rounded to three decimals before ranking;
//! ties break in canonical [`FaultClass`] order.

use keddah_faults::FaultClass;
use keddah_stat::shift::ShiftScore;
use serde::{Deserialize, Serialize};

use crate::fingerprint::{self, Features};
use crate::Evidence;

/// Minimum KS statistic for a per-component shift to count.
///
/// Deliberately low: corpus baselines are *paired* (same capture seed),
/// so absent a fault the two replays are arithmetically identical and
/// KS is exactly 0 — any reproducible effect is signal. A link fault
/// only shifts the flows that cross the link, so the component-level KS
/// of a real degradation can sit well below textbook thresholds.
pub const MIN_KS: f64 = 0.1;

/// Significance cap for the KS test behind a shift. `1.0` disables the
/// p-value gate: with a paired baseline the question is effect size,
/// not sampling noise (per-component sample counts are far too small
/// for p-values to fire on localized shifts).
pub const ALPHA: f64 = 1.0;

/// Minimum degraded/baseline mean-FCT ratio for a shift to count as a
/// *slowdown* (a shift toward faster flows is not a degradation).
pub const TAU: f64 = 1.2;

/// Fallback slowdown signal: a quiet run whose makespan stretched by
/// at least this factor is degraded even when no single component's
/// shift clears [`MIN_KS`].
pub const MAKESPAN_TAU: f64 = 1.15;

/// Score assigned to a class with no supporting evidence at all.
const FLOOR: f64 = 0.05;

/// One ranked hypothesis: a fault class, its confidence, and a
/// human-readable justification (including localisation when known).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The hypothesised fault class.
    pub class: FaultClass,
    /// Confidence in `[0, 1]`, rounded to three decimals.
    pub score: f64,
    /// The evidence behind the score (`"node=3; node_crashes=1"`).
    pub detail: String,
}

/// The full ranked output for one case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Workload the evidence came from (informational).
    pub workload: String,
    /// Every class, scored, best first.
    pub verdicts: Vec<Verdict>,
}

impl Diagnosis {
    /// The winning hypothesis.
    ///
    /// # Panics
    ///
    /// Never: [`diagnose`] always scores all classes.
    #[must_use]
    pub fn top(&self) -> &Verdict {
        &self.verdicts[0]
    }

    /// Renders the ranked verdicts as stable, line-oriented text (the
    /// CLI output; CI greps it).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.workload.is_empty() {
            out.push_str("diagnosis:\n");
        } else {
            out.push_str(&format!("diagnosis (workload={}):\n", self.workload));
        }
        for (rank, v) in self.verdicts.iter().enumerate() {
            out.push_str(&format!(
                "  {}. {:<13} score={:.3}",
                rank + 1,
                v.class.label(),
                v.score
            ));
            if !v.detail.is_empty() {
                out.push_str(&format!("  {}", v.detail));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::write_pretty(&self.to_value())
    }

    /// Parses a diagnosis written by [`Diagnosis::to_json`]; `origin`
    /// names the input in errors.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DiagnoseError::Parse`] on malformed input.
    pub fn from_json(input: &str, origin: &str) -> crate::Result<Diagnosis> {
        let value = serde::json::parse(input)
            .map_err(|e| crate::DiagnoseError::parse(origin, e.to_string()))?;
        Diagnosis::from_value(&value)
            .map_err(|e| crate::DiagnoseError::parse(origin, e.to_string()))
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// True when the shift is statistically significant *and* a slowdown.
fn fires(score: &ShiftScore) -> bool {
    score.significant(MIN_KS, ALPHA) && score.mean_ratio() >= TAU
}

/// The firing shift with the largest KS statistic (tie: first component
/// in name order, which `BTreeMap` iteration already provides).
fn strongest_shift(features: &Features) -> Option<(&str, &ShiftScore)> {
    features
        .shifts
        .iter()
        .filter(|(_, s)| fires(s))
        .max_by(|(_, a), (_, b)| a.ks.total_cmp(&b.ks))
        .map(|(name, score)| (name.as_str(), score))
}

fn crash_detail(features: &Features) -> String {
    let counters = features
        .crash_counters
        .iter()
        .map(|(name, v)| format!("{name}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    let node = features.abort_star.or(features.silent_node);
    match (node, counters.is_empty()) {
        (Some(node), false) => format!("node={node}; {counters}"),
        (Some(node), true) => format!("node={node}"),
        (None, false) => counters,
        (None, true) => String::new(),
    }
}

fn cut_detail(features: &Features) -> String {
    let aborted = format!("aborted_flows={}", features.aborted_flows);
    match &features.abort_cut {
        Some(cut) => {
            let cut = cut
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            format!("cut=[{cut}]; {aborted}")
        }
        None => aborted,
    }
}

fn shift_detail(name: &str, score: &ShiftScore) -> String {
    format!(
        "component={name} ks={:.3} mean_x={:.2}",
        score.ks,
        score.mean_ratio()
    )
}

/// Scores every fault class against the evidence and returns the
/// ranked result. Pure and deterministic: identical evidence yields a
/// byte-identical [`Diagnosis`].
#[must_use]
pub fn diagnose(evidence: &Evidence) -> Diagnosis {
    let features = fingerprint::extract(evidence);
    let crash = features.crash_signal() > 0;
    let aborts = features.aborted_flows > 0;
    let reroutes = features.rerouted_flows > 0;
    let quiet = !crash && !aborts && !reroutes;
    let shift = strongest_shift(&features);

    let mut verdicts = Vec::with_capacity(FaultClass::ALL.len());
    for class in FaultClass::ALL {
        let (score, detail) = match class {
            FaultClass::NodeCrash => {
                if crash {
                    (0.95, crash_detail(&features))
                } else if aborts && features.abort_star.is_some() {
                    (0.40, crash_detail(&features))
                } else {
                    (FLOOR, String::new())
                }
            }
            FaultClass::LinkDown => {
                if reroutes {
                    let mut detail = format!("rerouted_flows={}", features.rerouted_flows);
                    if features.lost_bytes > 0 {
                        detail.push_str(&format!(" lost_bytes={}", features.lost_bytes));
                    }
                    (0.90, detail)
                } else {
                    (FLOOR, String::new())
                }
            }
            FaultClass::Partition => {
                if aborts && !crash && !reroutes {
                    (0.85, cut_detail(&features))
                } else if aborts {
                    (0.30, cut_detail(&features))
                } else {
                    (FLOOR, String::new())
                }
            }
            FaultClass::LinkDegraded => match shift {
                Some((name, score)) if quiet => (0.80, shift_detail(name, score)),
                Some((name, score)) => (0.20, shift_detail(name, score)),
                None if quiet && features.makespan_ratio >= MAKESPAN_TAU => {
                    (0.60, format!("makespan_x={:.2}", features.makespan_ratio))
                }
                None => (FLOOR, String::new()),
            },
            FaultClass::None => {
                if quiet && shift.is_none() && features.makespan_ratio < MAKESPAN_TAU {
                    (0.75, "no effect signals".to_string())
                } else {
                    (FLOOR, String::new())
                }
            }
        };
        verdicts.push(Verdict {
            class,
            score: round3(score),
            detail,
        });
    }
    // Rank: score descending, canonical class order on ties (derived
    // Ord follows declaration order, `None` first).
    verdicts.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.class.cmp(&b.class)));
    Diagnosis {
        workload: evidence.workload.clone(),
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::AbortedFlow;

    fn hadoop_counter(ev: &mut Evidence, name: &str, value: u64) {
        ev.metrics
            .subsystems
            .entry("hadoop".into())
            .or_default()
            .counters
            .insert(name.into(), value);
    }

    fn netsim_counter(ev: &mut Evidence, name: &str, value: u64) {
        ev.metrics
            .subsystems
            .entry("netsim".into())
            .or_default()
            .counters
            .insert(name.into(), value);
    }

    #[test]
    fn clean_run_diagnoses_none() {
        let d = diagnose(&Evidence::default());
        assert_eq!(d.top().class, FaultClass::None);
        assert_eq!(d.verdicts.len(), FaultClass::ALL.len());
    }

    #[test]
    fn crash_counters_win_even_with_aborts() {
        let mut ev = Evidence::default();
        hadoop_counter(&mut ev, "node_crashes", 1);
        hadoop_counter(&mut ev, "failed_map_attempts", 2);
        ev.aborted.push(AbortedFlow {
            src: 3,
            dst: 1,
            bytes: 10,
            component: "shuffle".into(),
        });
        ev.aborted.push(AbortedFlow {
            src: 3,
            dst: 5,
            bytes: 10,
            component: "shuffle".into(),
        });
        let d = diagnose(&ev);
        assert_eq!(d.top().class, FaultClass::NodeCrash);
        assert!(d.top().detail.contains("node=3"), "{}", d.top().detail);
        assert!(d.top().detail.contains("node_crashes=1"));
    }

    #[test]
    fn reroutes_mean_link_down() {
        let mut ev = Evidence::default();
        netsim_counter(&mut ev, "flows_rerouted", 4);
        let d = diagnose(&ev);
        assert_eq!(d.top().class, FaultClass::LinkDown);
        assert!(d.top().detail.contains("rerouted_flows=4"));
    }

    #[test]
    fn aborts_without_crash_or_reroute_mean_partition() {
        let mut ev = Evidence::default();
        netsim_counter(&mut ev, "flows_aborted", 6);
        ev.aborted = vec![
            AbortedFlow {
                src: 1,
                dst: 4,
                bytes: 10,
                component: "shuffle".into(),
            },
            AbortedFlow {
                src: 2,
                dst: 4,
                bytes: 10,
                component: "shuffle".into(),
            },
            AbortedFlow {
                src: 2,
                dst: 5,
                bytes: 10,
                component: "shuffle".into(),
            },
        ];
        let d = diagnose(&ev);
        assert_eq!(d.top().class, FaultClass::Partition);
        assert!(d.top().detail.contains("cut=["), "{}", d.top().detail);
    }

    #[test]
    fn quiet_slowdown_means_degraded_link() {
        let mut ev = Evidence::default();
        ev.baseline_fct.insert(
            "shuffle".into(),
            (0..64).map(|i| 0.1 + f64::from(i) * 0.01).collect(),
        );
        ev.fct.insert(
            "shuffle".into(),
            (0..64).map(|i| 0.5 + f64::from(i) * 0.01).collect(),
        );
        let d = diagnose(&ev);
        assert_eq!(d.top().class, FaultClass::LinkDegraded);
        assert!(d.top().detail.contains("component=shuffle"));
    }

    #[test]
    fn ranking_is_stable_and_rendered() {
        let d = diagnose(&Evidence::default());
        let text = d.render();
        assert!(text.starts_with("diagnosis"));
        assert_eq!(text.lines().count(), 1 + FaultClass::ALL.len());
        // Repeatability: same evidence, byte-identical output.
        assert_eq!(text, diagnose(&Evidence::default()).render());
        // JSON round-trips to an identical diagnosis.
        assert_eq!(Diagnosis::from_json(&d.to_json(), "test").unwrap(), d);
    }
}
