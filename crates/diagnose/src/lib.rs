//! Fault fingerprinting: from a degraded run's artefacts to its root
//! cause.
//!
//! The rest of the toolchain *generates* labelled degraded runs
//! (`keddah-faults`) and *records* them (`keddah-obs`); this crate
//! closes the loop by reading those artefacts back and inferring which
//! [`keddah_faults::FaultClass`] a run suffered — and, where the
//! evidence allows, which node or cut. The pipeline:
//!
//! 1. [`Evidence`] — the observable inputs for one case: metrics
//!    snapshots (degraded + baseline), per-component flow-completion
//!    samples, per-node last-activity times, and the endpoints of
//!    aborted flows;
//! 2. [`fingerprint::Features`] — evidence distilled into discrete
//!    signals (counter increases, abort-graph shape, silent nodes) and
//!    continuous ones (per-component KS shifts via
//!    [`keddah_stat::shift`]);
//! 3. [`diagnose`] — deterministic scoring rules that rank every class
//!    into a [`Diagnosis`] with stable tie-breaks.
//!
//! An honesty rule applies throughout: the classifier never reads the
//! fault *injection* bookkeeping (`faults/faults_applied`, `fault_fire`
//! trace events) — only effect signals a real cluster would expose
//! (aborted/rerouted flow counts, Hadoop failure counters, timing
//! shifts). The injection side is reserved for ground-truth labels in
//! the corpus ([`corpus`]) and the eval harness ([`eval`]).
//!
//! Everything is deterministic: the same evidence yields byte-identical
//! verdicts, and corpus build + eval are byte-identical across worker
//! counts (pinned by `tests/diagnose_determinism.rs`).

pub mod corpus;
pub mod eval;
pub mod evidence;
pub mod fingerprint;
pub mod verdict;

pub use evidence::{AbortedFlow, Evidence};
pub use verdict::{diagnose, Diagnosis, Verdict};

use std::fmt;

/// Errors produced while reading diagnosis inputs or building corpora.
///
/// Malformed input is a first-class outcome here — a diagnosis tool
/// that panics on the truncated artefacts of the incident it should
/// explain is useless — so every parse failure carries the offending
/// path and becomes a structured error (and a `diagnose/parse_errors`
/// count), never a panic.
#[derive(Debug)]
pub enum DiagnoseError {
    /// A file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// An input artefact failed to parse.
    Parse {
        /// The offending path (or a description of the input).
        path: String,
        /// The parser's message.
        message: String,
    },
    /// The inputs were well-formed but unusable (e.g. no evidence at
    /// all, or an empty corpus).
    Invalid(String),
}

impl DiagnoseError {
    pub(crate) fn io(path: impl Into<String>, source: std::io::Error) -> DiagnoseError {
        DiagnoseError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn parse(path: impl Into<String>, message: impl Into<String>) -> DiagnoseError {
        DiagnoseError::Parse {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnoseError::Io { path, source } => write!(f, "cannot access {path}: {source}"),
            DiagnoseError::Parse { path, message } => {
                write!(f, "cannot parse {path}: {message}")
            }
            DiagnoseError::Invalid(msg) => write!(f, "invalid diagnose input: {msg}"),
        }
    }
}

impl std::error::Error for DiagnoseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiagnoseError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DiagnoseError>;
