//! Distilling [`Evidence`] into the discrete and continuous signals the
//! scoring rules consume.
//!
//! Everything here reads *effect* telemetry only: counters a real
//! cluster's monitoring would expose (aborted/rerouted flow counts,
//! Hadoop failure counters), timing distributions, and the endpoints of
//! dead flows. The fault injector's own bookkeeping
//! (`faults/faults_applied`) is deliberately never consulted — see the
//! crate docs for the honesty rule.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use keddah_obs::MetricsDiff;
use keddah_stat::shift::{shift_between, ShiftScore};

use crate::Evidence;

/// Hadoop counters whose *increase* over baseline indicates a worker
/// died mid-job. Deliberately excludes counters that move in healthy
/// runs too (`speculative_attempts` fires on ordinary stragglers).
pub const CRASH_COUNTERS: [&str; 5] = [
    "node_crashes",
    "fault_killed_attempts",
    "failed_map_attempts",
    "rereplicated_blocks",
    "rereplication_flows",
];

/// Minimum samples on *both* sides before a per-component KS shift is
/// computed; below this the test has no power and only adds noise.
pub const MIN_SHIFT_SAMPLES: u64 = 8;

/// A node must have been active this late into the baseline run (as a
/// fraction of baseline makespan) to be eligible for silence detection.
const SILENT_BASELINE_FRAC: f64 = 0.8;

/// A node is "silent" when its last activity falls before this fraction
/// of the degraded makespan (while its baseline says it should be busy
/// until the end).
const SILENT_DEGRADED_FRAC: f64 = 0.5;

/// The extracted fingerprint of one case: every signal the verdict
/// rules look at, precomputed and deterministic.
#[derive(Debug, Clone)]
pub struct Features {
    /// Flows a fault killed (max over netsim counters, fault-effect
    /// counters, and the abort endpoint list).
    pub aborted_flows: u64,
    /// Flows the simulator steered around a dead link.
    pub rerouted_flows: u64,
    /// Payload bytes lost with aborted flows.
    pub lost_bytes: u64,
    /// Per-counter increases over baseline for [`CRASH_COUNTERS`]
    /// (zero-valued entries omitted).
    pub crash_counters: BTreeMap<&'static str, u64>,
    /// Per-component distribution shifts, baseline → degraded.
    pub shifts: BTreeMap<String, ShiftScore>,
    /// The node shared by *every* aborted flow, if one exists — the
    /// signature of a single dead host.
    pub abort_star: Option<u32>,
    /// A consistent 2-colouring of the aborted-flow endpoint graph —
    /// the signature of a partition. Smaller side, sorted.
    pub abort_cut: Option<Vec<u32>>,
    /// A node active to the end of the baseline but quiet in the first
    /// half of the degraded run.
    pub silent_node: Option<u32>,
    /// Degraded / baseline makespan (1.0 when no baseline).
    pub makespan_ratio: f64,
}

impl Features {
    /// Total crash-counter evidence; non-zero means a worker died.
    #[must_use]
    pub fn crash_signal(&self) -> u64 {
        self.crash_counters.values().sum()
    }
}

/// Largest increase of `name` across subsystems that record the same
/// effect (netsim and the fault bookkeeping both count aborts; taking
/// the max keeps the signal when only one side was captured).
fn effect_counter(diff: &MetricsDiff, subsystems: &[&str], name: &str) -> u64 {
    subsystems
        .iter()
        .map(|sub| diff.counter_increase(sub, name))
        .max()
        .unwrap_or(0)
}

/// The node present in every aborted pair, if any. When both endpoints
/// qualify (every abort shares the same pair — e.g. a worker whose
/// flows all ran to the master), the dead host is the one that stopped
/// talking: earliest last-seen activity wins, then smallest id.
fn star_of(pairs: &BTreeSet<(u32, u32)>, last_seen: &BTreeMap<u32, f64>) -> Option<u32> {
    let mut iter = pairs.iter();
    let &(s, d) = iter.next()?;
    let mut candidates = BTreeSet::from([s, d]);
    for &(s, d) in iter {
        candidates.retain(|n| *n == s || *n == d);
        if candidates.is_empty() {
            return None;
        }
    }
    candidates.into_iter().min_by(|&a, &b| {
        let quiet = |n: u32| last_seen.get(&n).copied().unwrap_or(0.0);
        quiet(a).total_cmp(&quiet(b)).then(a.cmp(&b))
    })
}

/// Tries to 2-colour the aborted-pair graph. Returns the smaller side
/// (sorted) when the graph is bipartite and both sides are non-empty —
/// exactly the shape a reachability cut leaves behind. Ties go to the
/// side containing the smallest node.
fn cut_of(pairs: &BTreeSet<(u32, u32)>) -> Option<Vec<u32>> {
    if pairs.is_empty() {
        return None;
    }
    let mut adjacency: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(s, d) in pairs {
        adjacency.entry(s).or_default().push(d);
        adjacency.entry(d).or_default().push(s);
    }
    let mut colour: BTreeMap<u32, bool> = BTreeMap::new();
    let nodes: Vec<u32> = adjacency.keys().copied().collect();
    for &root in &nodes {
        if colour.contains_key(&root) {
            continue;
        }
        colour.insert(root, false);
        let mut queue = VecDeque::from([root]);
        while let Some(node) = queue.pop_front() {
            let side = colour[&node];
            for &next in &adjacency[&node] {
                match colour.get(&next) {
                    Some(&c) if c == side => return None, // odd cycle: not a cut
                    Some(_) => {}
                    None => {
                        colour.insert(next, !side);
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    let mut sides: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
    for (&node, &side) in &colour {
        sides[usize::from(side)].push(node);
    }
    if sides[0].is_empty() || sides[1].is_empty() {
        return None;
    }
    let [a, b] = sides;
    // BTreeMap iteration already sorted each side; pick the smaller,
    // breaking ties toward the side holding the smallest node.
    Some(match a.len().cmp(&b.len()) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal if a.first() <= b.first() => a,
        std::cmp::Ordering::Equal => b,
    })
}

/// The node that went quiet: active until ≥ 80% of the baseline
/// makespan, silent after 50% of the degraded one. When several
/// qualify, the one that fell silent earliest (then smallest id).
fn silent_node_of(evidence: &Evidence) -> Option<u32> {
    if evidence.baseline_makespan_secs <= 0.0 || evidence.makespan_secs <= 0.0 {
        return None;
    }
    let mut best: Option<(f64, u32)> = None;
    for (&node, &baseline_last) in &evidence.baseline_node_last_seen {
        if baseline_last < SILENT_BASELINE_FRAC * evidence.baseline_makespan_secs {
            continue;
        }
        let last = evidence.node_last_seen.get(&node).copied().unwrap_or(0.0);
        let frac = last / evidence.makespan_secs;
        if frac < SILENT_DEGRADED_FRAC
            && best.is_none_or(|(f, n)| frac < f || (frac == f && node < n))
        {
            best = Some((frac, node));
        }
    }
    best.map(|(_, node)| node)
}

/// Extracts every diagnostic signal from one case's evidence.
#[must_use]
pub fn extract(evidence: &Evidence) -> Features {
    let diff = evidence.metrics.diff(&evidence.baseline_metrics);

    let pairs: BTreeSet<(u32, u32)> = evidence
        .aborted
        .iter()
        .filter(|f| f.src != f.dst)
        .map(|f| (f.src.min(f.dst), f.src.max(f.dst)))
        .collect();
    let aborted_flows = effect_counter(&diff, &["netsim", "faults"], "flows_aborted")
        .max(evidence.aborted.len() as u64);
    let rerouted_flows = effect_counter(&diff, &["faults"], "rerouted_flows").max(effect_counter(
        &diff,
        &["netsim"],
        "flows_rerouted",
    ));

    let crash_counters = CRASH_COUNTERS
        .into_iter()
        .map(|name| (name, diff.counter_increase("hadoop", name)))
        .filter(|(_, v)| *v > 0)
        .collect();

    let mut shifts = BTreeMap::new();
    for (component, degraded) in &evidence.fct {
        let Some(baseline) = evidence.baseline_fct.get(component) else {
            continue;
        };
        if (baseline.len() as u64) < MIN_SHIFT_SAMPLES
            || (degraded.len() as u64) < MIN_SHIFT_SAMPLES
        {
            continue;
        }
        if let Ok(score) = shift_between(baseline, degraded) {
            shifts.insert(component.clone(), score);
        }
    }

    let makespan_ratio = if evidence.baseline_makespan_secs > 0.0 {
        evidence.makespan_secs / evidence.baseline_makespan_secs
    } else {
        1.0
    };

    Features {
        aborted_flows,
        rerouted_flows,
        lost_bytes: effect_counter(&diff, &["faults"], "lost_bytes"),
        crash_counters,
        abort_star: star_of(&pairs, &evidence.node_last_seen),
        abort_cut: cut_of(&pairs),
        silent_node: silent_node_of(evidence),
        shifts,
        makespan_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::AbortedFlow;

    fn aborted(endpoints: &[(u32, u32)]) -> Vec<AbortedFlow> {
        endpoints
            .iter()
            .map(|&(src, dst)| AbortedFlow {
                src,
                dst,
                bytes: 1,
                component: "shuffle".into(),
            })
            .collect()
    }

    #[test]
    fn star_finds_the_common_node() {
        let ev = Evidence {
            aborted: aborted(&[(3, 1), (3, 5), (2, 3)]),
            ..Evidence::default()
        };
        let f = extract(&ev);
        assert_eq!(f.abort_star, Some(3));
        assert_eq!(f.aborted_flows, 3);
    }

    #[test]
    fn star_tie_breaks_toward_the_quiet_endpoint() {
        // Every abort shares the same pair (6, 0): both are candidates,
        // but node 0 kept completing traffic while node 6 went dark —
        // the dead host is 6.
        let mut ev = Evidence {
            aborted: aborted(&[(6, 0), (6, 0)]),
            ..Evidence::default()
        };
        ev.node_last_seen.insert(0, 9.0);
        ev.node_last_seen.insert(6, 2.0);
        assert_eq!(extract(&ev).abort_star, Some(6));
    }

    #[test]
    fn no_star_across_disjoint_pairs() {
        let ev = Evidence {
            aborted: aborted(&[(1, 2), (3, 4)]),
            ..Evidence::default()
        };
        assert_eq!(extract(&ev).abort_star, None);
    }

    #[test]
    fn cut_recovers_a_bipartition() {
        // Cut {1, 2} vs {3, 4, 5}: every aborted flow crosses it.
        let ev = Evidence {
            aborted: aborted(&[(1, 3), (1, 4), (2, 3), (2, 5)]),
            ..Evidence::default()
        };
        assert_eq!(extract(&ev).abort_cut, Some(vec![1, 2]));
    }

    #[test]
    fn odd_cycle_is_not_a_cut() {
        let ev = Evidence {
            aborted: aborted(&[(1, 2), (2, 3), (3, 1)]),
            ..Evidence::default()
        };
        assert_eq!(extract(&ev).abort_cut, None);
    }

    #[test]
    fn crash_counters_use_increases_over_baseline() {
        let mut ev = Evidence::default();
        ev.baseline_metrics
            .subsystems
            .entry("hadoop".into())
            .or_default()
            .counters
            .insert("failed_map_attempts".into(), 2);
        let sub = ev.metrics.subsystems.entry("hadoop".into()).or_default();
        sub.counters.insert("failed_map_attempts".into(), 5);
        sub.counters.insert("node_crashes".into(), 1);
        sub.counters.insert("speculative_attempts".into(), 9); // ignored
        let f = extract(&ev);
        assert_eq!(f.crash_counters.get("failed_map_attempts"), Some(&3));
        assert_eq!(f.crash_counters.get("node_crashes"), Some(&1));
        assert_eq!(f.crash_signal(), 4);
    }

    #[test]
    fn silent_node_detected_against_baseline() {
        let mut ev = Evidence {
            makespan_secs: 20.0,
            baseline_makespan_secs: 10.0,
            ..Evidence::default()
        };
        for node in 0..4u32 {
            ev.baseline_node_last_seen.insert(node, 9.5);
            ev.node_last_seen
                .insert(node, if node == 2 { 3.0 } else { 19.0 });
        }
        assert_eq!(extract(&ev).silent_node, Some(2));
        assert!((extract(&ev).makespan_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shifts_need_enough_samples_on_both_sides() {
        let mut ev = Evidence::default();
        ev.baseline_fct.insert("shuffle".into(), vec![1.0; 16]);
        ev.fct.insert("shuffle".into(), vec![3.0; 16]);
        ev.baseline_fct.insert("control".into(), vec![1.0; 4]);
        ev.fct.insert("control".into(), vec![3.0; 4]);
        let f = extract(&ev);
        assert!(f.shifts.contains_key("shuffle"));
        assert!(!f.shifts.contains_key("control"));
        assert!(f.shifts["shuffle"].ks > 0.9);
    }
}
