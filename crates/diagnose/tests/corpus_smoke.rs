//! End-to-end corpus sanity: one cell per fault class on one workload,
//! built through the real capture → fault → replay pipeline, must
//! diagnose to its own label. The full-sweep accuracy floor is pinned
//! by the committed `EVAL_diagnose.json`; this test catches protocol
//! breakage (not tuning drift) quickly.

use keddah_diagnose::corpus::{build_cell, plan, CellSpec};
use keddah_diagnose::diagnose;
use keddah_faults::FaultClass;
use keddah_hadoop::Workload;

#[test]
fn every_class_round_trips_on_terasort() {
    for class in FaultClass::ALL {
        let spec = CellSpec {
            workload: Workload::TeraSort,
            class,
            seed: 0,
        };
        let cell = build_cell(&spec).unwrap_or_else(|e| panic!("build {}: {e}", spec.name()));
        assert_eq!(cell.label.class, class);
        let diagnosis = diagnose(&cell.evidence);
        assert_eq!(
            diagnosis.top().class,
            class,
            "cell {}:\n{}",
            spec.name(),
            diagnosis.render()
        );
    }
}

#[test]
fn cell_build_is_deterministic() {
    let spec = plan(&[Workload::WordCount], 1)[1]; // node_crash lane
    assert_eq!(spec.class, FaultClass::NodeCrash);
    let a = build_cell(&spec).unwrap();
    let b = build_cell(&spec).unwrap();
    assert_eq!(a.label, b.label);
    assert_eq!(a.evidence.to_json(), b.evidence.to_json());
}
