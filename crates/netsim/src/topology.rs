//! Data-centre network topologies.
//!
//! The replay side of Keddah feeds generated Hadoop traffic into a
//! network simulator. This module provides the three topology families
//! the experiments use, as graphs of hosts and switches joined by
//! *directed* links (full-duplex cables become two directed links):
//!
//! * [`Topology::star`] — every host on one big switch (the paper's
//!   testbed was a single switch);
//! * [`Topology::leaf_spine`] — racks of hosts on leaf switches, leaves
//!   connected to every spine, with configurable oversubscription;
//! * [`Topology::fat_tree`] — the classic k-ary 3-tier Clos.

use serde::{Deserialize, Serialize};

/// Identifies a host (traffic endpoint) in a topology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Identifies a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// A directed link with a capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Link {
    pub from: u32,
    pub to: u32,
    pub capacity_bps: f64,
}

/// A network of hosts and switches.
///
/// Nodes `0..host_count` are hosts; higher ids are switches. Use the
/// constructors — hand-building is not supported, which lets the router
/// assume connectivity.
#[derive(Debug, Clone)]
pub struct Topology {
    host_count: u32,
    node_count: u32,
    links: Vec<Link>,
    /// Outgoing link ids per node.
    out_links: Vec<Vec<u32>>,
    name: String,
}

impl Topology {
    fn new(host_count: u32, node_count: u32, name: String) -> Self {
        Topology {
            host_count,
            node_count,
            links: Vec::new(),
            out_links: vec![Vec::new(); node_count as usize],
            name,
        }
    }

    /// Adds a full-duplex cable: two directed links of `capacity_bps`.
    fn cable(&mut self, a: u32, b: u32, capacity_bps: f64) {
        for (from, to) in [(a, b), (b, a)] {
            let id = self.links.len() as u32;
            self.links.push(Link {
                from,
                to,
                capacity_bps,
            });
            self.out_links[from as usize].push(id);
        }
    }

    /// A single switch with `hosts` hosts attached at `host_bps` each.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0` or the rate is not positive.
    #[must_use]
    pub fn star(hosts: u32, host_bps: f64) -> Topology {
        assert!(hosts > 0, "star needs at least one host");
        assert!(host_bps > 0.0, "link rate must be positive");
        let switch = hosts;
        let mut t = Topology::new(hosts, hosts + 1, format!("star({hosts})"));
        for h in 0..hosts {
            t.cable(h, switch, host_bps);
        }
        t
    }

    /// A two-tier leaf–spine fabric: `racks` leaves with
    /// `hosts_per_rack` hosts each at `host_bps`, every leaf wired to
    /// every one of `spines` spines. Each leaf uplink carries
    /// `hosts_per_rack * host_bps / (spines * oversubscription)` so that
    /// `oversubscription = 1.0` is non-blocking and larger values starve
    /// the core proportionally.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or non-positive rates.
    #[must_use]
    pub fn leaf_spine(
        racks: u32,
        hosts_per_rack: u32,
        spines: u32,
        host_bps: f64,
        oversubscription: f64,
    ) -> Topology {
        assert!(
            racks > 0 && hosts_per_rack > 0 && spines > 0,
            "empty fabric"
        );
        assert!(
            host_bps > 0.0 && oversubscription > 0.0,
            "rates must be positive"
        );
        let hosts = racks * hosts_per_rack;
        let leaf_base = hosts;
        let spine_base = hosts + racks;
        let mut t = Topology::new(
            hosts,
            hosts + racks + spines,
            format!("leaf_spine({racks}x{hosts_per_rack}, {spines} spines, {oversubscription}x)"),
        );
        for h in 0..hosts {
            let leaf = leaf_base + h / hosts_per_rack;
            t.cable(h, leaf, host_bps);
        }
        let uplink_bps = hosts_per_rack as f64 * host_bps / (spines as f64 * oversubscription);
        for leaf in 0..racks {
            for spine in 0..spines {
                t.cable(leaf_base + leaf, spine_base + spine, uplink_bps);
            }
        }
        t
    }

    /// A k-ary fat-tree: `k` pods of `k/2` edge and `k/2` aggregation
    /// switches, `(k/2)^2` cores, `k^3/4` hosts, every link at
    /// `link_bps`.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is even and at least 2.
    #[must_use]
    pub fn fat_tree(k: u32, link_bps: f64) -> Topology {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree requires even k >= 2"
        );
        assert!(link_bps > 0.0, "link rate must be positive");
        let half = k / 2;
        let hosts = k * k * k / 4;
        let edge_base = hosts;
        let agg_base = edge_base + k * half;
        let core_base = agg_base + k * half;
        let cores = half * half;
        let mut t = Topology::new(hosts, core_base + cores, format!("fat_tree(k={k})"));
        for pod in 0..k {
            for e in 0..half {
                let edge = edge_base + pod * half + e;
                // Hosts under this edge switch.
                for h in 0..half {
                    let host = pod * half * half + e * half + h;
                    t.cable(host, edge, link_bps);
                }
                // Edge to every aggregation switch in the pod.
                for a in 0..half {
                    let agg = agg_base + pod * half + a;
                    t.cable(edge, agg, link_bps);
                }
            }
            // Aggregation to core: agg j connects to cores [j*half, (j+1)*half).
            for a in 0..half {
                let agg = agg_base + pod * half + a;
                for c in 0..half {
                    let core = core_base + a * half + c;
                    t.cable(agg, core, link_bps);
                }
            }
        }
        t
    }

    /// The number of traffic endpoints.
    #[must_use]
    pub fn host_count(&self) -> u32 {
        self.host_count
    }

    /// Total nodes (hosts + switches).
    #[must_use]
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Number of directed links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// A human-readable topology name (e.g. `"fat_tree(k=4)"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The capacity of a directed link.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.links[link.0 as usize].capacity_bps
    }

    /// Total one-direction capacity of the switching core: the sum over
    /// switch-to-switch cables of their capacity, each full-duplex cable
    /// counted once. For a leaf–spine fabric this is the aggregate leaf
    /// uplink capacity `racks * spines * uplink_bps` — the denominator
    /// the provisioning search divides predicted cross-rack load by to
    /// estimate core utilisation. Zero for a star (hosts share one
    /// switch, there is no core to saturate).
    #[must_use]
    pub fn core_capacity_bps(&self) -> f64 {
        self.links
            .iter()
            .filter(|l| l.from >= self.host_count && l.to >= self.host_count)
            .map(|l| l.capacity_bps)
            .sum::<f64>()
            / 2.0
    }

    /// Capacities of every directed link, indexed by link id — the
    /// dense table the fair-share allocator
    /// ([`crate::fair::FairShareState`]) is seeded with.
    #[must_use]
    pub fn capacities(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.capacity_bps).collect()
    }

    pub(crate) fn links(&self) -> &[Link] {
        &self.links
    }

    /// Computes the directed links on a shortest path from `src` to
    /// `dst`, breaking ECMP ties with `flow_hash` (the same hash always
    /// takes the same path, distinct hashes spread across equal-cost
    /// paths).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a host.
    #[must_use]
    pub fn route(&self, src: HostId, dst: HostId, flow_hash: u64) -> Vec<LinkId> {
        assert!(src.0 < self.host_count, "{src} is not a host");
        assert!(dst.0 < self.host_count, "{dst} is not a host");
        if src == dst {
            return Vec::new();
        }
        let dist = self.distances_to(dst.0);
        self.walk_route(src.0, dst.0, &dist, flow_hash)
    }

    /// Walks the ECMP shortest path given a precomputed distance table
    /// for `dst` (see [`crate::RouteCache`] for the memoized user).
    pub(crate) fn walk_route(
        &self,
        src: u32,
        dst: u32,
        dist: &[u32],
        flow_hash: u64,
    ) -> Vec<LinkId> {
        let mut path = Vec::new();
        let mut at = src;
        let mut hop = 0u64;
        while at != dst {
            let d_here = dist[at as usize];
            let candidates: Vec<u32> = self.out_links[at as usize]
                .iter()
                .copied()
                .filter(|&l| {
                    let to = self.links[l as usize].to;
                    dist[to as usize] + 1 == d_here
                })
                .collect();
            assert!(!candidates.is_empty(), "topology is connected");
            let pick = candidates[(mix(flow_hash, hop) as usize) % candidates.len()];
            path.push(LinkId(pick));
            at = self.links[pick as usize].to;
            hop += 1;
        }
        path
    }

    /// BFS hop distances from every node to `dst` (following links
    /// forward, computed over the reverse graph).
    pub(crate) fn distances_to(&self, dst: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count as usize];
        dist[dst as usize] = 0;
        let mut frontier = std::collections::VecDeque::new();
        frontier.push_back(dst);
        // Reverse adjacency: for each link, from -> to; we need nodes u
        // with a link u -> v for visited v. Build on the fly from links.
        let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); self.node_count as usize];
        for l in &self.links {
            incoming[l.to as usize].push(l.from);
        }
        while let Some(v) = frontier.pop_front() {
            let d = dist[v as usize];
            for &u in &incoming[v as usize] {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = d + 1;
                    frontier.push_back(u);
                }
            }
        }
        dist
    }

    /// [`Self::distances_to`] over the surviving graph: links with
    /// `down[link] == true` do not exist. Unreachable nodes keep
    /// `u32::MAX`.
    pub(crate) fn distances_to_avoiding(&self, dst: u32, down: &[bool]) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count as usize];
        dist[dst as usize] = 0;
        let mut frontier = std::collections::VecDeque::new();
        frontier.push_back(dst);
        let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); self.node_count as usize];
        for (i, l) in self.links.iter().enumerate() {
            if !down[i] {
                incoming[l.to as usize].push(l.from);
            }
        }
        while let Some(v) = frontier.pop_front() {
            let d = dist[v as usize];
            for &u in &incoming[v as usize] {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = d + 1;
                    frontier.push_back(u);
                }
            }
        }
        dist
    }

    /// [`Self::walk_route`] over the surviving graph. Returns `None`
    /// when `dst` is unreachable from `src` with the downed links
    /// removed — a fault outcome, not an invariant violation, so no
    /// connectivity assert.
    pub(crate) fn walk_route_avoiding(
        &self,
        src: u32,
        dst: u32,
        dist: &[u32],
        flow_hash: u64,
        down: &[bool],
    ) -> Option<Vec<LinkId>> {
        if dist[src as usize] == u32::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut at = src;
        let mut hop = 0u64;
        while at != dst {
            let d_here = dist[at as usize];
            let candidates: Vec<u32> = self.out_links[at as usize]
                .iter()
                .copied()
                .filter(|&l| {
                    if down[l as usize] {
                        return false;
                    }
                    let to = self.links[l as usize].to;
                    dist[to as usize] != u32::MAX && dist[to as usize] + 1 == d_here
                })
                .collect();
            // `dist` was computed on the same masked graph, so every node
            // at finite distance has a surviving next hop.
            let pick = candidates[(mix(flow_hash, hop) as usize) % candidates.len()];
            path.push(LinkId(pick));
            at = self.links[pick as usize].to;
            hop += 1;
        }
        Some(path)
    }
}

/// Cheap deterministic 64-bit mix for ECMP tie-breaking.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_geometry() {
        let t = Topology::star(8, 1e9);
        assert_eq!(t.host_count(), 8);
        assert_eq!(t.node_count(), 9);
        assert_eq!(t.link_count(), 16); // 8 duplex cables
        let path = t.route(HostId(0), HostId(5), 1);
        assert_eq!(path.len(), 2); // host -> switch -> host
    }

    #[test]
    fn self_route_is_empty() {
        let t = Topology::star(4, 1e9);
        assert!(t.route(HostId(2), HostId(2), 0).is_empty());
    }

    #[test]
    fn leaf_spine_geometry_and_paths() {
        let t = Topology::leaf_spine(4, 4, 2, 1e9, 1.0);
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.node_count(), 16 + 4 + 2);
        // Intra-rack: host -> leaf -> host (2 hops).
        let intra = t.route(HostId(0), HostId(1), 0);
        assert_eq!(intra.len(), 2);
        // Inter-rack: host -> leaf -> spine -> leaf -> host (4 hops).
        let inter = t.route(HostId(0), HostId(15), 0);
        assert_eq!(inter.len(), 4);
    }

    #[test]
    fn leaf_spine_oversubscription_scales_uplinks() {
        let non_blocking = Topology::leaf_spine(2, 4, 2, 1e9, 1.0);
        let oversub = Topology::leaf_spine(2, 4, 2, 1e9, 4.0);
        // Uplinks are the links whose capacity differs from the host
        // rate; their capacity ratio must be exactly the
        // oversubscription factor.
        let uplink = |t: &Topology| -> f64 {
            t.links()
                .iter()
                .map(|l| l.capacity_bps)
                .find(|&c| (c - 1e9).abs() > 1.0)
                .expect("fabric has uplinks")
        };
        // Non-blocking: 4 hosts x 1 Gb/s over 2 spines = 2 Gb/s uplinks.
        assert!((uplink(&non_blocking) - 2e9).abs() < 1.0);
        assert!((uplink(&non_blocking) / uplink(&oversub) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn core_capacity_counts_switch_cables_once() {
        // 4 racks x 2 spines, non-blocking: uplinks carry 4x1 Gb/s / 2
        // spines = 2 Gb/s, so the core is 4 * 2 * 2 Gb/s = 16 Gb/s.
        let t = Topology::leaf_spine(4, 4, 2, 1e9, 1.0);
        assert!((t.core_capacity_bps() - 16e9).abs() < 1.0);
        // Oversubscribing 4x starves the core by exactly 4x.
        let o = Topology::leaf_spine(4, 4, 2, 1e9, 4.0);
        assert!((t.core_capacity_bps() / o.core_capacity_bps() - 4.0).abs() < 1e-9);
        // A star has no switch-to-switch cables.
        assert_eq!(Topology::star(8, 1e9).core_capacity_bps(), 0.0);
    }

    #[test]
    fn fat_tree_geometry() {
        let t = Topology::fat_tree(4, 1e9);
        assert_eq!(t.host_count(), 16);
        // 16 hosts + 8 edge + 8 agg + 4 core.
        assert_eq!(t.node_count(), 36);
        // Same-pod same-edge: 2 hops; cross-pod: 6 hops.
        assert_eq!(t.route(HostId(0), HostId(1), 0).len(), 2);
        assert_eq!(t.route(HostId(0), HostId(15), 0).len(), 6);
    }

    #[test]
    fn ecmp_spreads_but_is_deterministic() {
        let t = Topology::fat_tree(4, 1e9);
        let p1 = t.route(HostId(0), HostId(12), 42);
        let p2 = t.route(HostId(0), HostId(12), 42);
        assert_eq!(p1, p2, "same hash, same path");
        // Across many hashes, at least two distinct paths are used.
        let distinct: std::collections::HashSet<Vec<LinkId>> =
            (0..32).map(|h| t.route(HostId(0), HostId(12), h)).collect();
        assert!(distinct.len() > 1, "ECMP never spread");
        // All are valid shortest paths.
        for p in distinct {
            assert_eq!(p.len(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "not a host")]
    fn routing_rejects_switch_endpoints() {
        let t = Topology::star(2, 1e9);
        let _ = t.route(HostId(2), HostId(0), 0); // node 2 is the switch
    }

    #[test]
    #[should_panic(expected = "even k")]
    fn fat_tree_rejects_odd_k() {
        let _ = Topology::fat_tree(3, 1e9);
    }
}
