//! Traffic sources — who decides which flows enter the simulation, and
//! when.
//!
//! The fluid simulator used to take a flat, pre-computed `Vec<FlowSpec>`:
//! an *open-loop* replay in which congestion can never delay a dependent
//! flow. [`TrafficSource`] inverts that: the simulator asks the source for
//! its initial flows ([`TrafficSource::on_start`]) and then calls back on
//! every completion ([`TrafficSource::on_flow_complete`]), so a source can
//! release dependent flows — a shuffle fetch after the map's input read, a
//! replication-pipeline hop after the upstream hop — only once their
//! parents actually finished under the simulated network conditions
//! (*closed-loop* replay).
//!
//! [`StaticSource`] recovers the old behaviour exactly: it hands over every
//! flow up front and never reacts.

use crate::sim::{FlowResult, FlowSpec};

/// Identifier the simulator assigns to each injected flow.
///
/// Ids are consecutive in injection order: the flows returned by
/// [`TrafficSource::on_start`] get `0..n` in order, and each batch returned
/// by [`TrafficSource::on_flow_complete`] continues the sequence. The
/// result vector of a [`crate::SimReport`] is indexed by `FlowId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub usize);

/// A reactive producer of simulation traffic.
///
/// Implementations own whatever state they need to decide dependent
/// releases (a captured trace with inferred dependency edges, a fitted
/// model sampled stage by stage, or just a flat list).
///
/// Flows whose `start` lies in the simulated past when they are returned
/// are injected immediately (their start is clamped to the current
/// simulation time).
pub trait TrafficSource {
    /// Flows known at simulation start. Called exactly once.
    fn on_start(&mut self) -> Vec<FlowSpec>;

    /// Called when flow `id` has fully completed (its last byte arrived,
    /// at `result.finish`). Returns dependent flows to inject now.
    fn on_flow_complete(&mut self, id: FlowId, result: &FlowResult) -> Vec<FlowSpec>;

    /// Called when a fault killed flow `id` before it could complete
    /// (`result.finish` is the abort time, `lost_bytes` the payload that
    /// never arrived). The source may re-issue the transfer — a retried
    /// shuffle fetch, a re-replication from a surviving replica — by
    /// returning replacement flows, or accept the loss (the default).
    ///
    /// Never called in fault-free runs, so sources that ignore faults
    /// need no changes.
    fn on_flow_aborted(
        &mut self,
        _id: FlowId,
        _result: &FlowResult,
        _lost_bytes: u64,
    ) -> Vec<FlowSpec> {
        Vec::new()
    }
}

/// The open-loop source: every flow is known up front, nothing reacts.
///
/// Running [`crate::simulate_source`] with a `StaticSource` is
/// byte-for-byte identical to the pre-trait [`crate::simulate`] on the
/// same specs.
#[derive(Debug, Clone)]
pub struct StaticSource {
    flows: Vec<FlowSpec>,
}

impl StaticSource {
    /// Wraps a flat flow list.
    #[must_use]
    pub fn new(flows: Vec<FlowSpec>) -> Self {
        StaticSource { flows }
    }
}

impl TrafficSource for StaticSource {
    fn on_start(&mut self) -> Vec<FlowSpec> {
        std::mem::take(&mut self.flows)
    }

    fn on_flow_complete(&mut self, _id: FlowId, _result: &FlowResult) -> Vec<FlowSpec> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HostId;
    use keddah_des::SimTime;

    #[test]
    fn static_source_drains_once() {
        let spec = FlowSpec {
            src: HostId(0),
            dst: HostId(1),
            bytes: 100,
            start: SimTime::ZERO,
            tag: 0,
        };
        let mut s = StaticSource::new(vec![spec]);
        assert_eq!(s.on_start(), vec![spec]);
        assert!(s.on_start().is_empty(), "flows are handed over once");
        let result = FlowResult {
            spec,
            finish: SimTime::from_secs(1),
        };
        assert!(s.on_flow_complete(FlowId(0), &result).is_empty());
    }
}
