//! Flow-level network simulator — the ns-3 substitute Keddah replays
//! traffic into.
//!
//! Keddah's final stage feeds generated Hadoop traffic to a network
//! simulator to study it under topologies and conditions the physical
//! testbed cannot provide. This crate is a deterministic flow-level
//! (fluid) simulator in that role:
//!
//! * [`Topology`] — star, leaf–spine (with oversubscription) and k-ary
//!   fat-tree fabrics, with ECMP shortest-path routing;
//! * [`fair`] — max-min fair bandwidth sharing by progressive filling,
//!   the standard fluid abstraction of long-lived TCP;
//! * [`simulate`] / [`simulate_source`] — the event loop (built on the
//!   shared [`keddah_des::Engine`]): flows arrive, share links, complete;
//!   completions and per-link byte counts come back in a [`SimReport`];
//! * [`TrafficSource`] — reactive traffic: sources are told when each
//!   flow completes and may inject dependent flows, enabling closed-loop
//!   replay where congestion delays dependent traffic;
//! * [`simulate_faulted`] — the same loop under a `keddah-faults`
//!   schedule: node crashes, link failures/degradations and partitions
//!   fire as DES events that abort or re-route flows ([`FaultStats`]
//!   accounts for every lost byte).
//!
//! # Examples
//!
//! ```
//! use keddah_des::SimTime;
//! use keddah_netsim::{simulate, FlowSpec, HostId, SimOptions, Topology};
//!
//! let topo = Topology::leaf_spine(2, 4, 2, 1e9, 1.0);
//! let flows: Vec<FlowSpec> = (0..4)
//!     .map(|i| FlowSpec {
//!         src: HostId(i),
//!         dst: HostId(7 - i),
//!         bytes: 10 << 20,
//!         start: SimTime::ZERO,
//!         tag: i,
//!     })
//!     .collect();
//! let report = simulate(&topo, &flows, SimOptions::default());
//! assert_eq!(report.results.len(), 4);
//! ```

pub mod fair;
mod routing;
mod sim;
pub mod source;
mod tcp;
mod topology;

pub use fair::{max_min_rates, FairFlowId, FairShareState};
pub use routing::RouteCache;
pub use sim::{
    simulate, simulate_faulted, simulate_faulted_observed, simulate_source, FaultStats, FlowResult,
    FlowSpec, SimOptions, SimReport,
};
pub use source::{FlowId, StaticSource, TrafficSource};
pub use tcp::{simulate_tcp, TcpOptions};
pub use topology::{HostId, LinkId, Topology};
