//! Flow-level network simulator — the ns-3 substitute Keddah replays
//! traffic into.
//!
//! Keddah's final stage feeds generated Hadoop traffic to a network
//! simulator to study it under topologies and conditions the physical
//! testbed cannot provide. This crate is a deterministic flow-level
//! (fluid) simulator in that role:
//!
//! * [`Topology`] — star, leaf–spine (with oversubscription) and k-ary
//!   fat-tree fabrics, with ECMP shortest-path routing;
//! * [`fair`] — max-min fair bandwidth sharing by progressive filling,
//!   the standard fluid abstraction of long-lived TCP;
//! * [`simulate`] — the event loop: flows arrive, share links, complete;
//!   completions and per-link byte counts come back in a [`SimReport`].
//!
//! # Examples
//!
//! ```
//! use keddah_des::SimTime;
//! use keddah_netsim::{simulate, FlowSpec, HostId, SimOptions, Topology};
//!
//! let topo = Topology::leaf_spine(2, 4, 2, 1e9, 1.0);
//! let flows: Vec<FlowSpec> = (0..4)
//!     .map(|i| FlowSpec {
//!         src: HostId(i),
//!         dst: HostId(7 - i),
//!         bytes: 10 << 20,
//!         start: SimTime::ZERO,
//!         tag: i,
//!     })
//!     .collect();
//! let report = simulate(&topo, &flows, SimOptions::default());
//! assert_eq!(report.results.len(), 4);
//! ```

pub mod fair;
mod routing;
mod sim;
mod tcp;
mod topology;

pub use routing::RouteCache;
pub use sim::{simulate, FlowResult, FlowSpec, SimOptions, SimReport};
pub use tcp::{simulate_tcp, TcpOptions};
pub use topology::{HostId, LinkId, Topology};
