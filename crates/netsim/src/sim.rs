//! Fluid flow-level simulation loop, driven by the shared
//! [`keddah_des::Engine`].
//!
//! Flow arrivals, rate re-solves and flow completions are engine events;
//! a [`TrafficSource`] decides which flows exist and may inject dependent
//! flows reactively on every completion (closed-loop replay). Event
//! timestamps quantize to nanoseconds for ordering, but every event
//! carries its precise `f64` time, so the fluid arithmetic never
//! quantizes.
//!
//! # Flow bundles
//!
//! Active flows sharing one exact path collapse into a [`Bundle`]: a
//! single weighted fair-share entry plus a cumulative *service curve*
//! counting the bits each member slot has been served. Per-flow state
//! reduces to one number — the absolute service target at which the
//! flow's payload is done — so the per-event work (draining, completion
//! prediction, retirement scan) is O(live bundles), not O(active flows).
//! DC-scale replays have hundreds of distinct paths carrying hundreds of
//! thousands of flows, which is what removes the 100k-flow cliff.
//!
//! Service accounting is integer (Q64 fixed point, see [`Q_SCALE`]), so
//! grouping flows into bundles — or not, via the `KEDDAH_NO_AGGREGATE`
//! oracle knob on [`SimOptions::aggregate`] — never changes any flow's
//! completion time: the golden-replay corpus and the determinism suite
//! pin byte-identical reports across the aggregation, solver-parallelism
//! and full-recompute knobs.

use std::collections::{BTreeSet, HashMap};

use keddah_des::{Duration, Engine, SimTime};
use keddah_faults::{FaultKind, FaultSchedule};
use keddah_obs::Obs;
use serde::{Deserialize, Serialize};

use crate::fair::{FairFlowId, FairShareState};
use crate::routing::RouteCache;
use crate::source::{FlowId, StaticSource, TrafficSource};
use crate::topology::{HostId, Topology};

/// A flow to inject: who talks to whom, how much, starting when.
///
/// `tag` is an opaque label carried through to the result (the Keddah
/// replay uses it for the traffic component) and also seeds ECMP path
/// selection together with the flow's position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Injection time.
    pub start: SimTime,
    /// Opaque label carried into the result.
    pub tag: u32,
}

/// The outcome of one simulated flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// The injected spec.
    pub spec: FlowSpec,
    /// When the last byte arrived.
    pub finish: SimTime,
}

impl FlowResult {
    /// Flow completion time.
    #[must_use]
    pub fn fct(&self) -> Duration {
        self.finish.saturating_since(self.spec.start)
    }
}

/// Simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Fixed propagation/startup latency added to every flow.
    pub propagation: Duration,
    /// Flows strictly smaller than this bypass the fluid solver and
    /// complete at line rate — the standard "mice fast-path" that keeps
    /// huge control-plane flow counts tractable. Zero disables it.
    pub mouse_threshold: u64,
    /// Rate allotted to host-local flows (loopback), bits/s.
    pub local_bps: f64,
    /// Model TCP slow-start ramp-up: charges each flow
    /// `RTT * log2(segments it must ramp through)` of extra latency, with
    /// RTT = 2 x propagation. Short flows pay proportionally more — the
    /// qualitative FCT effect slow start has in packet simulators. Off
    /// by default (pure fluid model).
    pub tcp_slow_start: bool,
    /// Disable incremental fair-share maintenance and re-run full
    /// progressive filling on every event (the pre-incremental engine's
    /// behaviour). Completion times are identical either way — this is
    /// the correctness oracle the determinism tests exercise and the
    /// baseline the `flow_scaling` bench measures against. Defaults to
    /// the `KEDDAH_FULL_RECOMPUTE` environment variable (set to anything
    /// but `0`).
    pub full_recompute: bool,
    /// Collapse same-path flows into weighted fluid bundles (the
    /// default). `false` gives every flow its own singleton bundle and
    /// fair-share entry — the pre-bundle engine's shape, kept as a
    /// correctness oracle and as the `flow_scaling` ablation baseline.
    /// Completion times are identical either way (integer service
    /// accounting; see the module docs). Defaults to `true` unless the
    /// `KEDDAH_NO_AGGREGATE` environment variable is set (to anything
    /// but `0`).
    pub aggregate: bool,
    /// Scoped threads dense fair-share refills may fan independent
    /// components out over. `0` (the default) auto-sizes from the host;
    /// rates — and hence replay output — are byte-identical at any
    /// width. Setting the `KEDDAH_SEQ_SOLVE` environment variable (to
    /// anything but `0`) forces sequential solves, the oracle the
    /// determinism suite compares against.
    pub solver_jobs: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            propagation: Duration::from_micros(100),
            mouse_threshold: 0,
            local_bps: 10e9,
            tcp_slow_start: false,
            full_recompute: std::env::var("KEDDAH_FULL_RECOMPUTE").is_ok_and(|v| v != "0"),
            aggregate: !std::env::var("KEDDAH_NO_AGGREGATE").is_ok_and(|v| v != "0"),
            solver_jobs: if std::env::var("KEDDAH_SEQ_SOLVE").is_ok_and(|v| v != "0") {
                1
            } else {
                0
            },
        }
    }
}

/// Extra completion latency charged for TCP slow start: one RTT per
/// congestion-window doubling until the flow's data fits the window,
/// capped at the rounds needed for `bytes`.
fn slow_start_delay(bytes: u64, options: &SimOptions) -> f64 {
    if !options.tcp_slow_start || bytes == 0 {
        return 0.0;
    }
    const MSS: f64 = 1448.0;
    let segments = (bytes as f64 / MSS).max(1.0);
    let rounds = segments.log2().ceil().clamp(0.0, 16.0);
    let rtt = 2.0 * options.propagation.as_secs_f64();
    rounds * rtt
}

/// What the fault layer did to a run. All-zero (the `Default`) for
/// fault-free simulations — the clean path never touches it beyond the
/// delivered-byte tally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Fault events applied (every scheduled fault fires exactly once).
    pub faults_applied: u64,
    /// Arena indices (= [`FlowId`]) of flows a fault killed, in abort
    /// order. Their [`FlowResult::finish`] is the abort time, so their
    /// FCTs are *not* completion times — consumers filter on this list.
    pub aborted: Vec<usize>,
    /// Payload bytes that never reached their destination (the undrained
    /// remainder of aborted flows, whole payloads for flows killed at
    /// injection).
    pub lost_bytes: u64,
    /// Payload bytes that did arrive, completed flows included. For any
    /// run, `delivered_bytes + lost_bytes` equals the total bytes of all
    /// injected flows — the conservation invariant the fault proptests
    /// pin.
    pub delivered_bytes: u64,
    /// Flows moved onto a surviving path after a `LinkDown`.
    pub rerouted_flows: u64,
    /// The fluid solver hit its iteration guard and drained the run by
    /// aborting everything still active (see the guard in
    /// [`simulate_faulted`]) instead of panicking.
    pub diverged: bool,
}

/// The output of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-flow outcomes, in the same order as the input specs.
    pub results: Vec<FlowResult>,
    /// Total bytes carried per directed link (by link id).
    pub link_bytes: Vec<u64>,
    /// Largest number of concurrently active fluid flows.
    pub peak_active: usize,
    /// Simulation events processed (arrivals, completions and completion
    /// notifications; stale rate predictions excluded). The throughput
    /// denominator of the `flow_scaling` bench.
    pub events: u64,
    /// Fault accounting; all-zero when no faults were scheduled.
    pub faults: FaultStats,
}

impl SimReport {
    /// Flow completion times in seconds, in input order.
    #[must_use]
    pub fn fcts(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.fct().as_secs_f64()).collect()
    }

    /// The overall makespan: time from the earliest start to the last
    /// finish.
    #[must_use]
    pub fn makespan(&self) -> Duration {
        let start = self.results.iter().map(|r| r.spec.start).min();
        let end = self.results.iter().map(|r| r.finish).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => Duration::ZERO,
        }
    }

    /// Utilisation of the busiest link, as bytes carried divided by
    /// `capacity * makespan`. Returns 0 for an empty run.
    #[must_use]
    pub fn peak_link_utilisation(&self, topo: &Topology) -> f64 {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.link_bytes
            .iter()
            .enumerate()
            .map(|(l, &b)| {
                b as f64 * 8.0 / (topo.link_capacity(crate::topology::LinkId(l as u32)) * span)
            })
            .fold(0.0, f64::max)
    }
}

/// A fluid bundle: the active flows sharing one exact path. The fair
/// allocator sees a single weighted entry per bundle; members drain
/// together along the bundle's cumulative service curve.
struct Bundle {
    /// The shared path (directed link ids); empty for host-local flows.
    links: Vec<u32>,
    /// Weighted fair-share entry, `None` while the bundle is empty.
    fair: Option<FairFlowId>,
    /// Cumulative per-member service in Q64 bits (see [`Q_SCALE`]):
    /// every live member slot has been served exactly this much since
    /// the bundle's creation.
    service: u128,
    /// Members as (absolute service target, flow idx): a member is done
    /// when `service` reaches its target, so the head is always the next
    /// member to finish. Ordering inside a bundle is time-invariant —
    /// members share one rate.
    members: BTreeSet<(u128, u32)>,
    /// Position in the live-bundle list while `fair` is `Some`.
    live_pos: usize,
}

/// Fixed-point scale for bundle service accounting: Q64, i.e. bits
/// × 2^64. Multiplying an `f64` by 2^64 only shifts the exponent
/// (exact), and the `f64 → u128` cast truncates deterministically, so a
/// per-event service increment `((rate * dt) * Q_SCALE) as u128` is the
/// same integer however flows are grouped; integer addition then makes
/// the cumulative curve associative. That grouping-invariance is what
/// lets the `KEDDAH_NO_AGGREGATE` oracle reproduce bundled runs bit for
/// bit.
const Q_SCALE: f64 = 18_446_744_073_709_551_616.0; // 2^64

/// Sub-byte residues count as drained (8 bits, in Q64): they are
/// numerical dust, and waiting for them can stall the clock entirely
/// once `now + residue/rate` rounds back to `now`.
const RETIRE_EPS_Q: u128 = 8u128 << 64;

/// A payload as a Q64 service amount: `bytes × 8` bits, floored at one
/// bit (a zero-byte flow still occupies its path for one epsilon) and
/// saturated far below the u128 range for pathological sizes.
fn payload_q(bytes: u64) -> u128 {
    (u128::from(bytes) * 8).clamp(1, 1 << 62) << 64
}

/// Back to fractional bits, for predictions and lost-byte accounting.
fn q_to_bits(q: u128) -> f64 {
    (q as f64) / Q_SCALE
}

/// The bundle for `links`, creating (and, under aggregation, memoizing)
/// it on first use. Without aggregation every call creates a fresh
/// singleton bundle — the oracle shape.
fn bundle_for_path(
    bundles: &mut Vec<Bundle>,
    by_path: &mut HashMap<Vec<u32>, u32>,
    aggregate: bool,
    links: Vec<u32>,
) -> u32 {
    if aggregate {
        if let Some(&bi) = by_path.get(&links) {
            return bi;
        }
    }
    let bi = u32::try_from(bundles.len()).expect("bundle count fits u32");
    if aggregate {
        by_path.insert(links.clone(), bi);
    }
    bundles.push(Bundle {
        links,
        fair: None,
        service: 0,
        members: BTreeSet::new(),
        live_pos: 0,
    });
    bi
}

/// Attaches flow `idx` to bundle `bi` with `amount_q` of service to
/// drain, (re)activating the bundle's fair entry as needed.
#[allow(clippy::too_many_arguments)]
fn join_bundle(
    bundles: &mut [Bundle],
    live: &mut Vec<u32>,
    fair: &mut FairShareState,
    member_of: &mut [Option<(u32, u128)>],
    active_members: &mut usize,
    bi: u32,
    idx: usize,
    amount_q: u128,
) {
    let b = &mut bundles[bi as usize];
    match b.fair {
        Some(id) => fair.add_weight(id, 1),
        None => {
            b.fair = Some(fair.insert_weighted(&b.links, 1));
            b.live_pos = live.len();
            live.push(bi);
        }
    }
    let target = b.service.saturating_add(amount_q);
    b.members.insert((target, idx as u32));
    member_of[idx] = Some((bi, target));
    *active_members += 1;
}

/// Detaches flow `idx` from its bundle, returning its undrained Q64
/// remainder; the last member out retires the bundle's fair entry.
fn leave_bundle(
    bundles: &mut [Bundle],
    live: &mut Vec<u32>,
    fair: &mut FairShareState,
    member_of: &mut [Option<(u32, u128)>],
    active_members: &mut usize,
    idx: usize,
) -> u128 {
    let (bi, target) = member_of[idx].take().expect("flow is an active member");
    let (rem_q, id, emptied) = {
        let b = &mut bundles[bi as usize];
        let removed = b.members.remove(&(target, idx as u32));
        debug_assert!(removed, "member set out of sync");
        let id = b.fair.expect("member bundle is live");
        let emptied = b.members.is_empty();
        if emptied {
            b.fair = None;
        }
        (target.saturating_sub(b.service), id, emptied)
    };
    *active_members -= 1;
    if emptied {
        let pos = bundles[bi as usize].live_pos;
        live.swap_remove(pos);
        if let Some(&moved) = live.get(pos) {
            bundles[moved as usize].live_pos = pos;
        }
        fair.remove_flow(id);
    } else {
        fair.sub_weight(id, 1);
    }
    rem_q
}

/// Engine events of the fluid loop. Nanosecond timestamps order events;
/// the precise `f64` times ride in the payloads so drain arithmetic never
/// quantizes.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Flow `id` (arena index) enters the network at its spec's start.
    Arrive { id: usize },
    /// Predicted earliest completion among the active flows, computed at
    /// the previous event. `gen` invalidates predictions made before the
    /// last rate re-solve; `at` is the precise predicted time.
    Complete { gen: u64, at: f64 },
    /// Flow `id`'s last byte has arrived: tell the source, which may
    /// inject dependent flows. Never touches fluid state.
    Notify { id: usize },
    /// Scheduled fault `idx` (index into the fault schedule) fires.
    Fault { idx: usize },
}

/// Runs the fluid simulation of `flows` over `topo`.
///
/// Flows are processed in start order; active flows share links by
/// max-min fairness, recomputed at every arrival and departure. The
/// result vector preserves input order.
///
/// This is the open-loop entry point: it wraps `flows` in a
/// [`StaticSource`] and runs [`simulate_source`].
///
/// # Panics
///
/// Panics if a flow references a host outside the topology.
///
/// # Examples
///
/// ```
/// use keddah_des::SimTime;
/// use keddah_netsim::{simulate, FlowSpec, HostId, SimOptions, Topology};
///
/// let topo = Topology::star(4, 1e9);
/// let flows = vec![FlowSpec {
///     src: HostId(0),
///     dst: HostId(1),
///     bytes: 125_000_000, // 1 Gb
///     start: SimTime::ZERO,
///     tag: 0,
/// }];
/// let report = simulate(&topo, &flows, SimOptions::default());
/// // Alone on a 1 Gb/s path: ~1 s.
/// assert!((report.results[0].fct().as_secs_f64() - 1.0).abs() < 0.01);
/// ```
#[must_use]
pub fn simulate(topo: &Topology, flows: &[FlowSpec], options: SimOptions) -> SimReport {
    let mut source = StaticSource::new(flows.to_vec());
    simulate_source(topo, &mut source, options)
}

/// Runs the fluid simulation with a reactive [`TrafficSource`].
///
/// The source's initial flows are injected at their start times; on every
/// completion the source may return dependent flows, which are injected
/// in turn (starts in the simulated past are clamped to "now"). Results
/// are indexed by injection order ([`FlowId`]).
///
/// # Panics
///
/// Panics if a flow references a host outside the topology.
#[must_use]
pub fn simulate_source(
    topo: &Topology,
    source: &mut dyn TrafficSource,
    options: SimOptions,
) -> SimReport {
    simulate_faulted(topo, source, &FaultSchedule::empty(), options)
}

/// Runs the fluid simulation under a fault schedule.
///
/// Each scheduled fault fires as a DES event at its exact timestamp:
///
/// - `NodeCrash` kills every flow to/from the host (hosts are leaf
///   nodes, so no transit traffic exists) and dooms later arrivals that
///   touch it until a `NodeRecover`;
/// - `LinkDown` invalidates the route cache, moves each flow crossing
///   the link onto a surviving shortest path (keeping its undrained
///   bits) or aborts it when none exists, and zeroes the link's
///   capacity;
/// - `LinkDegraded { factor }` rescales the link's capacity; the link's
///   flows seed the incremental fair-share dirty set, so only their
///   component re-solves;
/// - `Partition { cut }` kills and then dooms flows whose endpoints
///   straddle the cut (a reachability cut — links stay up).
///
/// Aborted flows get a [`FlowResult`] whose `finish` is the abort time,
/// are listed in [`FaultStats::aborted`], and are reported to the source
/// via [`TrafficSource::on_flow_aborted`], which may re-issue them. An
/// empty schedule takes exactly the fault-free arithmetic path:
/// [`simulate_source`] delegates here, and the golden replay corpus pins
/// the byte-identity.
///
/// # Panics
///
/// Panics if a flow references a host outside the topology, or (debug
/// builds only) if the fluid solver fails to make progress; release
/// builds recover by draining the run and setting
/// [`FaultStats::diverged`].
#[must_use]
pub fn simulate_faulted(
    topo: &Topology,
    source: &mut dyn TrafficSource,
    schedule: &FaultSchedule,
    options: SimOptions,
) -> SimReport {
    simulate_faulted_observed(topo, source, schedule, options, &Obs::disabled())
}

/// [`simulate_faulted`] with an observability handle: every entry point
/// funnels through this one implementation, so the arithmetic path is
/// identical whether `obs` records or not.
///
/// When `obs` is enabled the run emits trace events for engine
/// dispatches (`des`/`dispatch`), flow lifecycle transitions
/// (`netsim`/`flow_arrive`, `flow_complete`, `flow_abort`,
/// `flow_reroute`) and fault firings (`faults`/`fault_fire`), and
/// registers counters/gauges/histograms under the `des`, `netsim` and
/// `faults` subsystems. The `faults` counters mirror the returned
/// [`FaultStats`] exactly. Recording never feeds back into simulation
/// state — the `obs_determinism` integration tests pin byte-identical
/// reports with observability on and off.
///
/// # Panics
///
/// As [`simulate_faulted`].
#[must_use]
pub fn simulate_faulted_observed(
    topo: &Topology,
    source: &mut dyn TrafficSource,
    schedule: &FaultSchedule,
    options: SimOptions,
    obs: &Obs,
) -> SimReport {
    // Metric handles are registered once, up front; all of them are
    // inert no-ops when `obs` is disabled.
    let c_dispatch = obs.counter("des", "events_dispatched");
    let c_started = obs.counter("netsim", "flows_started");
    let c_completed = obs.counter("netsim", "flows_completed");
    let c_aborted = obs.counter("netsim", "flows_aborted");
    let c_rerouted = obs.counter("netsim", "flows_rerouted");
    let c_mice = obs.counter("netsim", "mice_fastpath");
    let h_bytes = obs.histogram("netsim", "flow_bytes");
    let h_fct = obs.histogram("netsim", "fct_us");

    let capacities = topo.capacities();
    let mut link_bytes = vec![0u64; capacities.len()];

    // The flow arena: grows as the source injects. Results and bundle
    // membership share its indexing (= FlowId = injection order).
    let mut flows: Vec<FlowSpec> = source.on_start();
    let mut results: Vec<Option<FlowResult>> = vec![None; flows.len()];
    let mut member_of: Vec<Option<(u32, u128)>> = vec![None; flows.len()];

    let mut engine: Engine<Ev> = Engine::new();
    // Initial arrivals are scheduled in start order (stable), so
    // same-nanosecond arrivals pop in the order the pre-engine loop
    // processed them; one batched heapify seeds even million-flow runs
    // in linear time.
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by_key(|&i| flows[i].start);
    engine.schedule_batch(
        order
            .iter()
            .map(|&i| (flows[i].start, Ev::Arrive { id: i })),
    );
    // Fault events after same-time arrivals (FIFO ties), so a crash at a
    // flow's exact start still sees the flow on the wire.
    engine.schedule_batch(
        schedule
            .events()
            .iter()
            .enumerate()
            .map(|(i, fault)| (fault.at(), Ev::Fault { idx: i })),
    );

    // Fault state. `faults_on` gates every fault check on the hot path:
    // with an empty schedule the arithmetic below is exactly the
    // fault-free loop's.
    let faults_on = !schedule.is_empty();
    let mut fstats = FaultStats::default();
    let mut host_down = vec![false; topo.host_count() as usize];
    // Capacities as currently faulted; the mice fast-path reads these
    // (identical to `capacities` until a link fault changes one).
    let mut cur_capacities = capacities.clone();
    let mut link_down = vec![false; capacities.len()];
    let mut any_link_down = false;
    // Active partition cuts, as host membership masks.
    let mut partitions: Vec<Vec<bool>> = Vec::new();
    let mut diverged = false;

    let mut router = RouteCache::new(topo);
    // Bundle state: same-path flows share one bundle (or each flow its
    // own, under the no-aggregate oracle). `live` lists bundles with
    // members; `member_of` maps a flow to its bundle and service target.
    let mut bundles: Vec<Bundle> = Vec::new();
    let mut by_path: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut live: Vec<u32> = Vec::new();
    let mut active_members = 0usize;
    let mut peak_bundles = 0usize;
    // Incremental max-min state, one weighted entry per bundle:
    // arrivals/retirements re-solve only the affected component; rates
    // stay bit-identical to full per-flow progressive filling on every
    // event (see `fair`), so every knob below changes wall-clock, never
    // results.
    let solver_jobs = match options.solver_jobs {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        n => n,
    };
    let mut fair = FairShareState::new(capacities.clone(), options.local_bps)
        .with_full_recompute(options.full_recompute)
        .with_parallel(solver_jobs);
    let mut now = 0.0f64;
    let mut peak_active = 0usize;
    // Completion predictions older than the last arrival/retirement are
    // stale; the generation counter skips them.
    let mut gen: u64 = 0;
    let mut iterations: u64 = 0;
    let mut events: u64 = 0;

    // The engine-level tap: every delivered event is visible to the
    // tracer before its handler runs. Read-only, so it cannot perturb
    // the simulation.
    let tap = |t: SimTime, ev: &Ev| {
        c_dispatch.inc();
        let flow_id = match ev {
            Ev::Arrive { id } | Ev::Notify { id } => Some(*id as u64),
            Ev::Complete { .. } | Ev::Fault { .. } => None,
        };
        obs.trace(t.as_nanos(), "des", "dispatch", flow_id, || {
            format!("{ev:?}")
        });
    };
    engine.run_with_tap(tap, |t, ev, queue| {
        // The event's precise time: arrivals carry exact nanoseconds,
        // completions their predicted f64.
        let tf = match ev {
            Ev::Arrive { id } => flows[id].start.as_secs_f64(),
            Ev::Complete { gen: g, at } => {
                if g != gen {
                    return; // stale prediction: rates changed since
                }
                at
            }
            Ev::Notify { id } => {
                // Completion callback: the source may release dependents.
                events += 1;
                let result = results[id].expect("notified flow has a result");
                for mut spec in source.on_flow_complete(FlowId(id), &result) {
                    // A dependent flow cannot start before its trigger.
                    if spec.start < t {
                        spec.start = t;
                    }
                    let id = flows.len();
                    flows.push(spec);
                    results.push(None);
                    member_of.push(None);
                    queue.push(spec.start, Ev::Arrive { id });
                }
                return; // fluid state untouched
            }
            Ev::Fault { idx } => schedule.events()[idx].at().as_secs_f64(),
        };

        iterations += 1;
        events += 1;
        if !diverged && iterations > 20 * flows.len() as u64 + 10_000 {
            // The solver stopped making progress — an internal invariant
            // violation, never expected. Loud in debug builds; release
            // builds must not abort the process mid-fault-scenario, so
            // they recover: drain the run by aborting everything still
            // active (accounted as lost) and doom later arrivals. The
            // report flags it via `FaultStats::diverged`.
            debug_assert!(
                false,
                "fluid simulation failed to converge: {} active flows in {} bundles at t={now}, \
                 {} total, head remainders={:?}, rates={:?}",
                active_members,
                live.len(),
                flows.len(),
                live.iter()
                    .take(5)
                    .map(|&bi| {
                        let b = &bundles[bi as usize];
                        b.members
                            .iter()
                            .next()
                            .map_or(0.0, |&(tq, _)| q_to_bits(tq.saturating_sub(b.service)))
                    })
                    .collect::<Vec<_>>(),
                live.iter()
                    .take(5)
                    .map(|&bi| fair.rate(bundles[bi as usize].fair.expect("live bundle")))
                    .collect::<Vec<_>>()
            );
            diverged = true;
            fstats.diverged = true;
            let mut drain: Vec<u32> = live
                .iter()
                .flat_map(|&bi| bundles[bi as usize].members.iter().map(|&(_, idx)| idx))
                .collect();
            drain.sort_unstable();
            for idx in drain {
                let idx = idx as usize;
                let rem_q = leave_bundle(
                    &mut bundles,
                    &mut live,
                    &mut fair,
                    &mut member_of,
                    &mut active_members,
                    idx,
                );
                let spec = flows[idx];
                let lost = spec.bytes.min((q_to_bits(rem_q) / 8.0).round() as u64);
                c_aborted.inc();
                obs.trace(
                    t.as_nanos(),
                    "netsim",
                    "flow_abort",
                    Some(idx as u64),
                    || format!("divergence drain, lost_bytes={lost}"),
                );
                fstats.lost_bytes += lost;
                fstats.delivered_bytes += spec.bytes - lost;
                fstats.aborted.push(idx);
                let finish = SimTime::from_secs_f64(now).max(t);
                results[idx] = Some(FlowResult { spec, finish });
                // No re-issue callback here: a diverged run must drain,
                // not refill.
            }
        }

        // Advance every live bundle's service curve to the event's
        // precise time — O(bundles), the loop that used to be O(flows).
        let dt = (tf - now).max(0.0);
        if dt > 0.0 {
            for &bi in &live {
                let b = &mut bundles[bi as usize];
                let rate = fair.rate(b.fair.expect("live bundle"));
                b.service = b.service.saturating_add(((rate * dt) * Q_SCALE) as u128);
            }
        }
        now = tf;

        match ev {
            Ev::Arrive { id } => {
                let spec = flows[id];
                c_started.inc();
                h_bytes.observe(spec.bytes as f64);
                obs.trace(
                    t.as_nanos(),
                    "netsim",
                    "flow_arrive",
                    Some(id as u64),
                    || {
                        format!(
                            "src={} dst={} bytes={} tag={}",
                            spec.src.0, spec.dst.0, spec.bytes, spec.tag
                        )
                    },
                );
                // Fault gate: flows touching a dead host or straddling a
                // partition never reach the wire; neither do any arrivals
                // after a divergence drain.
                let mut doomed = diverged
                    || (faults_on
                        && (host_down[spec.src.0 as usize]
                            || host_down[spec.dst.0 as usize]
                            || crosses_cut(&partitions, spec.src.0, spec.dst.0)));
                let mut links: Vec<u32> = Vec::new();
                if !doomed {
                    if any_link_down {
                        // Masked routing; link faults may disconnect the
                        // pair entirely.
                        match router.route_avoiding(spec.src, spec.dst, id as u64, &link_down) {
                            Some(path) => links = path.into_iter().map(|l| l.0).collect(),
                            None => doomed = true,
                        }
                    } else {
                        links = router
                            .route(spec.src, spec.dst, id as u64)
                            .into_iter()
                            .map(|l| l.0)
                            .collect();
                    }
                }
                if doomed {
                    // Lost at injection: nothing was carried.
                    c_aborted.inc();
                    obs.trace(
                        t.as_nanos(),
                        "netsim",
                        "flow_abort",
                        Some(id as u64),
                        || format!("doomed at injection, lost_bytes={}", spec.bytes),
                    );
                    fstats.aborted.push(id);
                    fstats.lost_bytes += spec.bytes;
                    let result = FlowResult { spec, finish: t };
                    results[id] = Some(result);
                    if !diverged {
                        for mut child in source.on_flow_aborted(FlowId(id), &result, spec.bytes) {
                            if child.start < t {
                                child.start = t;
                            }
                            let child_id = flows.len();
                            flows.push(child);
                            results.push(None);
                            member_of.push(None);
                            queue.push(child.start, Ev::Arrive { id: child_id });
                        }
                    }
                } else {
                    for &l in &links {
                        link_bytes[l as usize] += spec.bytes;
                    }
                    let prop = options.propagation.as_secs_f64();
                    if spec.bytes < options.mouse_threshold {
                        // Mice fast-path: uncontended line-rate completion.
                        let bottleneck = links
                            .iter()
                            .map(|&l| cur_capacities[l as usize])
                            .fold(options.local_bps, f64::min);
                        let fct = prop
                            + slow_start_delay(spec.bytes, &options)
                            + spec.bytes as f64 * 8.0 / bottleneck;
                        let finish = SimTime::from_secs_f64(now + fct);
                        c_mice.inc();
                        c_completed.inc();
                        h_fct.observe(fct * 1e6);
                        obs.trace(
                            finish.as_nanos(),
                            "netsim",
                            "flow_complete",
                            Some(id as u64),
                            || format!("mice fast-path, fct_us={:.3}", fct * 1e6),
                        );
                        fstats.delivered_bytes += spec.bytes;
                        results[id] = Some(FlowResult { spec, finish });
                        queue.push(finish.max(t), Ev::Notify { id });
                    } else {
                        // Propagation charged up front as extra "bits" at
                        // the eventual rate would distort sharing; instead
                        // it is added to the finish time on completion.
                        let bi =
                            bundle_for_path(&mut bundles, &mut by_path, options.aggregate, links);
                        join_bundle(
                            &mut bundles,
                            &mut live,
                            &mut fair,
                            &mut member_of,
                            &mut active_members,
                            bi,
                            id,
                            payload_q(spec.bytes),
                        );
                        peak_active = peak_active.max(active_members);
                        peak_bundles = peak_bundles.max(live.len());
                    }
                }
            }
            Ev::Complete { .. } => {
                // Retire every member whose target the service curve has
                // reached (ties complete together). Each bundle's member
                // set is target-ordered, so the scan is O(bundles +
                // retiring); the cross-bundle flow-idx sort fixes one
                // canonical processing order whatever the bundling — the
                // aggregation knob must not reorder Notify delivery.
                let mut finished: Vec<u32> = Vec::new();
                for &bi in &live {
                    let b = &bundles[bi as usize];
                    let cut = b.service.saturating_add(RETIRE_EPS_Q);
                    for &(target, idx) in &b.members {
                        if target <= cut {
                            finished.push(idx);
                        } else {
                            break;
                        }
                    }
                }
                if finished.is_empty() && active_members > 0 {
                    // Guaranteed progress: float rounding left every
                    // member just above the epsilon; retire the globally
                    // closest (smallest remainder, then smallest idx).
                    let mut best: Option<(u128, u32)> = None;
                    for &bi in &live {
                        let b = &bundles[bi as usize];
                        let &(target, idx) =
                            b.members.iter().next().expect("live bundle has members");
                        let rem = target.saturating_sub(b.service);
                        if best.is_none_or(|head| (rem, idx) < head) {
                            best = Some((rem, idx));
                        }
                    }
                    finished.push(best.expect("active members exist").1);
                }
                finished.sort_unstable();
                for idx in finished {
                    let id = idx as usize;
                    leave_bundle(
                        &mut bundles,
                        &mut live,
                        &mut fair,
                        &mut member_of,
                        &mut active_members,
                        id,
                    );
                    let spec = flows[id];
                    let extra =
                        options.propagation.as_secs_f64() + slow_start_delay(spec.bytes, &options);
                    let finish = SimTime::from_secs_f64(now + extra);
                    c_completed.inc();
                    let fct_us = finish.saturating_since(spec.start).as_secs_f64() * 1e6;
                    h_fct.observe(fct_us);
                    obs.trace(
                        finish.as_nanos(),
                        "netsim",
                        "flow_complete",
                        Some(id as u64),
                        || format!("fct_us={fct_us:.3}"),
                    );
                    fstats.delivered_bytes += spec.bytes;
                    results[id] = Some(FlowResult { spec, finish });
                    queue.push(finish.max(t), Ev::Notify { id });
                }
            }
            Ev::Fault { idx } => {
                fstats.faults_applied += 1;
                obs.trace(t.as_nanos(), "faults", "fault_fire", None, || {
                    schedule.events()[idx].describe()
                });
                // Members a fault kills or displaces, gathered by scanning
                // live bundles and sorted by flow idx — one canonical
                // victim order whatever the bundling, so the aggregation
                // knob never reorders aborts or reroutes.
                let mut victims: Vec<u32> = Vec::new();
                let pull = |live: &[u32],
                            bundles: &[Bundle],
                            flows: &[FlowSpec],
                            victims: &mut Vec<u32>,
                            pred: &dyn Fn(&Bundle, &FlowSpec) -> bool| {
                    for &bi in live {
                        let b = &bundles[bi as usize];
                        for &(_, idx) in &b.members {
                            if pred(b, &flows[idx as usize]) {
                                victims.push(idx);
                            }
                        }
                    }
                };
                // Rerouting candidates survive; everything left in
                // `victims` afterwards aborts.
                let mut reroute_mask: Option<usize> = None;
                match &schedule.events()[idx].kind {
                    FaultKind::NodeCrash { node } => {
                        let n = *node as usize;
                        if n < host_down.len() {
                            host_down[n] = true;
                            pull(&live, &bundles, &flows, &mut victims, &|_, s| {
                                s.src.0 as usize == n || s.dst.0 as usize == n
                            });
                        }
                    }
                    FaultKind::NodeRecover { node } => {
                        let n = *node as usize;
                        if n < host_down.len() {
                            host_down[n] = false;
                        }
                    }
                    FaultKind::LinkDown { link } => {
                        let l = *link as usize;
                        if l < link_down.len() && !link_down[l] {
                            link_down[l] = true;
                            any_link_down = true;
                            cur_capacities[l] = 0.0;
                            // Every cached distance table may now cross
                            // the dead link.
                            router.invalidate();
                            pull(&live, &bundles, &flows, &mut victims, &|b, _| {
                                b.links.contains(&(l as u32))
                            });
                            reroute_mask = Some(l);
                        }
                    }
                    FaultKind::LinkDegraded { link, factor } => {
                        let l = *link as usize;
                        if l < cur_capacities.len() && !link_down[l] {
                            let bps = capacities[l] * factor.clamp(0.0, 1.0);
                            cur_capacities[l] = bps;
                            // The link's bundles seed the incremental dirty
                            // set; only their component re-solves.
                            fair.set_capacity(l as u32, bps);
                        }
                    }
                    FaultKind::Partition { cut } => {
                        let mut mask = vec![false; host_down.len()];
                        for &n in cut {
                            if (n as usize) < mask.len() {
                                mask[n as usize] = true;
                            }
                        }
                        pull(&live, &bundles, &flows, &mut victims, &|_, s| {
                            mask[s.src.0 as usize] != mask[s.dst.0 as usize]
                        });
                        partitions.push(mask);
                    }
                }
                victims.sort_unstable();
                for idx in victims {
                    let id = idx as usize;
                    let rem_q = leave_bundle(
                        &mut bundles,
                        &mut live,
                        &mut fair,
                        &mut member_of,
                        &mut active_members,
                        id,
                    );
                    let spec = flows[id];
                    // A flow displaced by LinkDown keeps its undrained
                    // bits on a surviving path, if one exists.
                    if reroute_mask.is_some() {
                        if let Some(path) =
                            router.route_avoiding(spec.src, spec.dst, id as u64, &link_down)
                        {
                            let new_links: Vec<u32> = path.into_iter().map(|l| l.0).collect();
                            let carried = spec.bytes.min((q_to_bits(rem_q) / 8.0).round() as u64);
                            for &l in &new_links {
                                link_bytes[l as usize] += carried;
                            }
                            let n_links = new_links.len();
                            let nbi = bundle_for_path(
                                &mut bundles,
                                &mut by_path,
                                options.aggregate,
                                new_links,
                            );
                            join_bundle(
                                &mut bundles,
                                &mut live,
                                &mut fair,
                                &mut member_of,
                                &mut active_members,
                                nbi,
                                id,
                                rem_q,
                            );
                            peak_bundles = peak_bundles.max(live.len());
                            fstats.rerouted_flows += 1;
                            c_rerouted.inc();
                            obs.trace(
                                t.as_nanos(),
                                "netsim",
                                "flow_reroute",
                                Some(id as u64),
                                || format!("carried={carried} onto {n_links} links"),
                            );
                            continue;
                        }
                    }
                    let lost = spec.bytes.min((q_to_bits(rem_q) / 8.0).round() as u64);
                    c_aborted.inc();
                    obs.trace(
                        t.as_nanos(),
                        "netsim",
                        "flow_abort",
                        Some(id as u64),
                        || format!("killed by fault, lost_bytes={lost}"),
                    );
                    fstats.lost_bytes += lost;
                    fstats.delivered_bytes += spec.bytes - lost;
                    fstats.aborted.push(id);
                    let finish = SimTime::from_secs_f64(now).max(t);
                    let result = FlowResult { spec, finish };
                    results[id] = Some(result);
                    for mut child in source.on_flow_aborted(FlowId(id), &result, lost) {
                        if child.start < t {
                            child.start = t;
                        }
                        let child_id = flows.len();
                        flows.push(child);
                        results.push(None);
                        member_of.push(None);
                        queue.push(child.start, Ev::Arrive { id: child_id });
                    }
                }
                if let Some(l) = reroute_mask {
                    // Zero the dead link's share only after its bundles
                    // have left it (no entry may hold a 0-capacity link).
                    fair.set_capacity(l as u32, 0.0);
                }
            }
            Ev::Notify { .. } => unreachable!("handled above"),
        }

        // Re-predict the earliest completion with the post-event rates and
        // remainders. Only each bundle's head member (minimum target) can
        // finish first — members share one rate — so the fold is
        // O(bundles), not O(flows).
        gen += 1;
        let mut next_completion = f64::INFINITY;
        for &bi in &live {
            let b = &bundles[bi as usize];
            let &(target, _) = b.members.iter().next().expect("live bundle has members");
            let rem_bits = q_to_bits(target.saturating_sub(b.service));
            let pred = now + rem_bits / fair.rate(b.fair.expect("live bundle")).max(1e-9);
            next_completion = next_completion.min(pred);
        }
        if next_completion.is_finite() {
            queue.push(
                SimTime::from_secs_f64(next_completion).max(t),
                Ev::Complete {
                    gen,
                    at: next_completion,
                },
            );
        }
    });

    if obs.is_enabled() {
        obs.add("netsim", "events", events);
        obs.gauge("netsim", "peak_active")
            .set_max(peak_active as u64);
        obs.gauge("netsim", "peak_bundles")
            .set_max(peak_bundles as u64);
        obs.gauge("netsim", "fair_solves").set_max(fair.solves());
        obs.gauge("netsim", "fair_solved_flows")
            .set_max(fair.solved_flows());
        obs.gauge("netsim", "fair_dense_solves")
            .set_max(fair.dense_solves());
        // The `faults` counters mirror the returned FaultStats exactly —
        // consumers can cross-check metrics.json against the report.
        obs.add("faults", "faults_applied", fstats.faults_applied);
        obs.add("faults", "flows_aborted", fstats.aborted.len() as u64);
        obs.add("faults", "lost_bytes", fstats.lost_bytes);
        obs.add("faults", "delivered_bytes", fstats.delivered_bytes);
        obs.add("faults", "rerouted_flows", fstats.rerouted_flows);
        obs.add("faults", "diverged_runs", u64::from(fstats.diverged));
    }

    SimReport {
        results: results
            .into_iter()
            .map(|r| r.expect("every flow completes or aborts"))
            .collect(),
        link_bytes,
        peak_active,
        events,
        faults: fstats,
    }
}

/// True when `src` and `dst` sit on opposite sides of any active
/// partition cut.
fn crosses_cut(cuts: &[Vec<bool>], src: u32, dst: u32) -> bool {
    cuts.iter()
        .any(|mask| mask[src as usize] != mask[dst as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(src: u32, dst: u32, bytes: u64, start_ms: u64) -> FlowSpec {
        FlowSpec {
            src: HostId(src),
            dst: HostId(dst),
            bytes,
            start: SimTime::from_millis(start_ms),
            tag: 0,
        }
    }

    #[test]
    fn lone_flow_runs_at_line_rate() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 125_000_000, 0)], SimOptions::default());
        assert!((report.results[0].fct().as_secs_f64() - 1.0).abs() < 0.001);
        assert_eq!(report.peak_active, 1);
    }

    #[test]
    fn two_flows_into_one_host_share() {
        let topo = Topology::star(3, 1e9);
        let flows = [flow(0, 2, 125_000_000, 0), flow(1, 2, 125_000_000, 0)];
        let report = simulate(&topo, &flows, SimOptions::default());
        // Both share host 2's 1 Gb/s downlink: ~2 s each.
        for r in &report.results {
            assert!((r.fct().as_secs_f64() - 2.0).abs() < 0.01, "{:?}", r.fct());
        }
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let topo = Topology::star(4, 1e9);
        let flows = [flow(0, 1, 125_000_000, 0), flow(2, 3, 125_000_000, 0)];
        let report = simulate(&topo, &flows, SimOptions::default());
        for r in &report.results {
            assert!((r.fct().as_secs_f64() - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn late_arrival_slows_first_flow() {
        let topo = Topology::star(3, 1e9);
        // Flow A alone for 0.5 s, then shares with B.
        let flows = [flow(0, 2, 125_000_000, 0), flow(1, 2, 125_000_000, 500)];
        let report = simulate(&topo, &flows, SimOptions::default());
        let a = report.results[0].fct().as_secs_f64();
        // A: 0.5 s alone (half done) + 1 s shared = 1.5 s.
        assert!((a - 1.5).abs() < 0.02, "a = {a}");
    }

    #[test]
    fn results_preserve_input_order() {
        let topo = Topology::star(4, 1e9);
        let flows = [flow(2, 3, 1000, 100), flow(0, 1, 1000, 0)];
        let report = simulate(&topo, &flows, SimOptions::default());
        assert_eq!(report.results[0].spec.start, SimTime::from_millis(100));
        assert_eq!(report.results[1].spec.start, SimTime::ZERO);
    }

    #[test]
    fn mice_fast_path() {
        let topo = Topology::star(3, 1e9);
        let opts = SimOptions {
            mouse_threshold: 10_000,
            ..SimOptions::default()
        };
        // One elephant and many mice: mice finish in ~latency regardless.
        let mut flows = vec![flow(0, 2, 1 << 30, 0)];
        for i in 0..100 {
            flows.push(flow(1, 2, 500, i * 10));
        }
        let report = simulate(&topo, &flows, opts);
        assert_eq!(report.peak_active, 1, "mice never enter the fluid set");
        for r in &report.results[1..] {
            assert!(r.fct().as_secs_f64() < 0.001);
        }
    }

    #[test]
    fn local_flows_complete_fast() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 0, 125_000_000, 0)], SimOptions::default());
        // Loopback at 10 Gb/s: 0.1 s.
        assert!((report.results[0].fct().as_secs_f64() - 0.1).abs() < 0.01);
    }

    #[test]
    fn zero_byte_flow_costs_propagation() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 0, 0)], SimOptions::default());
        let fct = report.results[0].fct().as_secs_f64();
        assert!((0.0001..0.001).contains(&fct), "fct = {fct}");
    }

    #[test]
    fn link_bytes_accumulate() {
        let topo = Topology::star(3, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 1000, 0)], SimOptions::default());
        let carried: u64 = report.link_bytes.iter().sum();
        assert_eq!(carried, 2000, "two hops, 1000 bytes each");
    }

    #[test]
    fn oversubscribed_core_slows_cross_rack_traffic() {
        // 4:1 oversubscription: cross-rack flows see a quarter of the
        // rate once enough of them compete for the uplink.
        let nb = Topology::leaf_spine(2, 4, 1, 1e9, 1.0);
        let os = Topology::leaf_spine(2, 4, 1, 1e9, 4.0);
        let flows: Vec<FlowSpec> = (0..4).map(|i| flow(i, 4 + i, 125_000_000, 0)).collect();
        let fast = simulate(&nb, &flows, SimOptions::default());
        let slow = simulate(&os, &flows, SimOptions::default());
        let fast_mean: f64 = fast.fcts().iter().sum::<f64>() / 4.0;
        let slow_mean: f64 = slow.fcts().iter().sum::<f64>() / 4.0;
        assert!(
            slow_mean > 3.0 * fast_mean,
            "oversubscription had no effect: {fast_mean} vs {slow_mean}"
        );
    }

    #[test]
    fn float_residue_does_not_stall_the_clock() {
        // Regression: a completing flow can leave a sub-epsilon residue
        // whose drain time rounds to zero at large `now`, stalling the
        // simulation forever. Many unequal flows sharing links at t≈16 s
        // reproduce the pathology.
        let topo = Topology::star(10, 1e9);
        let mut flows = Vec::new();
        for i in 0..120u64 {
            flows.push(FlowSpec {
                src: HostId((i % 9) as u32),
                dst: HostId(((i + 1) % 9) as u32),
                bytes: 100_000_000 + i * 7_919 + i * i * 13,
                start: SimTime::from_nanos(16_000_000_000 + i * 41_000_000),
                tag: 0,
            });
        }
        let report = simulate(&topo, &flows, SimOptions::default());
        assert_eq!(report.results.len(), 120);
        assert!(report.makespan().as_secs_f64() > 1.0);
    }

    #[test]
    fn slow_start_penalizes_short_flows_relatively_more() {
        let topo = Topology::star(3, 1e9);
        let opts_ss = SimOptions {
            tcp_slow_start: true,
            propagation: Duration::from_millis(1), // RTT = 2 ms
            ..SimOptions::default()
        };
        let opts_fluid = SimOptions {
            propagation: Duration::from_millis(1),
            ..SimOptions::default()
        };
        let short = [flow(0, 1, 100_000, 0)];
        let long = [flow(0, 1, 100_000_000, 0)];
        let rel = |flows: &[FlowSpec]| {
            let with = simulate(&topo, flows, opts_ss).results[0]
                .fct()
                .as_secs_f64();
            let without = simulate(&topo, flows, opts_fluid).results[0]
                .fct()
                .as_secs_f64();
            (with - without) / without
        };
        let short_penalty = rel(&short);
        let long_penalty = rel(&long);
        assert!(
            short_penalty > 5.0 * long_penalty,
            "{short_penalty} vs {long_penalty}"
        );
        assert!(long_penalty >= 0.0);
    }

    /// A source that releases one dependent flow when its parent (flow 0)
    /// completes.
    struct ChainSource {
        first: Option<FlowSpec>,
        child: Option<FlowSpec>,
        releases: Vec<(usize, SimTime)>,
    }

    impl TrafficSource for ChainSource {
        fn on_start(&mut self) -> Vec<FlowSpec> {
            self.first.take().into_iter().collect()
        }
        fn on_flow_complete(&mut self, id: FlowId, result: &FlowResult) -> Vec<FlowSpec> {
            self.releases.push((id.0, result.finish));
            if id.0 == 0 {
                self.child.take().into_iter().collect()
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn source_injects_dependent_flow_after_parent() {
        let topo = Topology::star(3, 1e9);
        let mut source = ChainSource {
            first: Some(flow(0, 2, 125_000_000, 0)),
            child: Some(flow(1, 2, 125_000_000, 0)),
            releases: Vec::new(),
        };
        let report = simulate_source(&topo, &mut source, SimOptions::default());
        assert_eq!(report.results.len(), 2);
        // Parent runs alone (~1 s), child starts only after it finishes.
        let parent = report.results[0];
        let child = report.results[1];
        assert!((parent.fct().as_secs_f64() - 1.0).abs() < 0.01);
        assert!(child.spec.start >= parent.finish, "child waits for parent");
        assert!((child.fct().as_secs_f64() - 1.0).abs() < 0.01);
        // The source heard about both completions, parent first.
        assert_eq!(source.releases.len(), 2);
        assert_eq!(source.releases[0].0, 0);
    }

    #[test]
    fn static_source_matches_simulate() {
        let topo = Topology::star(6, 1e9);
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| {
                flow(
                    i % 5,
                    (i + 1) % 5,
                    1_000_000 + u64::from(i) * 77_777,
                    u64::from(i) * 13,
                )
            })
            .collect();
        let direct = simulate(&topo, &flows, SimOptions::default());
        let mut source = StaticSource::new(flows.clone());
        let via_source = simulate_source(&topo, &mut source, SimOptions::default());
        assert_eq!(direct.results, via_source.results);
        assert_eq!(direct.link_bytes, via_source.link_bytes);
        assert_eq!(direct.peak_active, via_source.peak_active);
    }

    #[test]
    fn past_start_times_clamp_to_release() {
        // A child spec claiming to start at t=0 is injected when its
        // parent completes (~1 s): the start clamps forward, never back.
        let topo = Topology::star(3, 1e9);
        let mut source = ChainSource {
            first: Some(flow(0, 1, 125_000_000, 500)),
            child: Some(flow(1, 2, 1_000, 0)),
            releases: Vec::new(),
        };
        let report = simulate_source(&topo, &mut source, SimOptions::default());
        assert_eq!(report.results[1].spec.start, report.results[0].finish);
    }

    #[test]
    fn makespan_and_utilisation() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 125_000_000, 0)], SimOptions::default());
        assert!((report.makespan().as_secs_f64() - 1.0).abs() < 0.01);
        let util = report.peak_link_utilisation(&topo);
        assert!(util > 0.9 && util <= 1.01, "util = {util}");
    }

    // ---- fault layer ----

    use keddah_faults::{FaultSpec, TimedFault};

    fn schedule(faults: Vec<TimedFault>) -> FaultSchedule {
        FaultSpec { faults }.schedule()
    }

    fn fault(at_nanos: u64, kind: FaultKind) -> TimedFault {
        TimedFault { at_nanos, kind }
    }

    fn run_static(topo: &Topology, flows: &[FlowSpec], sched: &FaultSchedule) -> SimReport {
        let mut source = StaticSource::new(flows.to_vec());
        simulate_faulted(topo, &mut source, sched, SimOptions::default())
    }

    fn conserved(report: &SimReport) {
        let offered: u64 = report.results.iter().map(|r| r.spec.bytes).sum();
        assert_eq!(
            report.faults.delivered_bytes + report.faults.lost_bytes,
            offered,
            "byte conservation"
        );
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_simulate() {
        let topo = Topology::leaf_spine(2, 3, 2, 1e9, 2.0);
        let flows: Vec<FlowSpec> = (0..12)
            .map(|i| {
                flow(
                    i % 6,
                    (i + 2) % 6,
                    5_000_000 + u64::from(i) * 997,
                    u64::from(i) * 17,
                )
            })
            .collect();
        let clean = simulate(&topo, &flows, SimOptions::default());
        let faulted = run_static(&topo, &flows, &FaultSchedule::empty());
        assert_eq!(clean.results, faulted.results);
        assert_eq!(clean.link_bytes, faulted.link_bytes);
        assert_eq!(clean.events, faulted.events);
        assert_eq!(faulted.faults.faults_applied, 0);
        assert!(faulted.faults.aborted.is_empty());
        conserved(&faulted);
    }

    #[test]
    fn node_crash_aborts_active_and_dooms_later_flows() {
        let topo = Topology::star(3, 1e9);
        // Flow 0 is mid-transfer at the crash; flow 1 arrives after it.
        let flows = [flow(0, 2, 125_000_000, 0), flow(1, 2, 1_000_000, 800)];
        let sched = schedule(vec![fault(500_000_000, FaultKind::NodeCrash { node: 2 })]);
        let report = run_static(&topo, &flows, &sched);
        assert_eq!(report.faults.aborted, vec![0, 1]);
        // Flow 0 aborts at the crash instant, half delivered.
        let abort_at = report.results[0].finish.as_secs_f64();
        assert!((abort_at - 0.5).abs() < 0.01, "aborted at {abort_at}");
        assert!(report.faults.lost_bytes > 60_000_000);
        // Flow 1 never reaches the wire: lost in full, fct 0.
        assert_eq!(report.results[1].finish, report.results[1].spec.start);
        conserved(&report);
    }

    #[test]
    fn node_recover_reopens_the_host() {
        let topo = Topology::star(3, 1e9);
        let flows = [flow(0, 1, 1_000_000, 200), flow(0, 1, 1_000_000, 900)];
        let sched = schedule(vec![
            fault(100_000_000, FaultKind::NodeCrash { node: 1 }),
            fault(600_000_000, FaultKind::NodeRecover { node: 1 }),
        ]);
        let report = run_static(&topo, &flows, &sched);
        assert_eq!(
            report.faults.aborted,
            vec![0],
            "only the pre-recovery flow dies"
        );
        assert!(report.results[1].fct().as_secs_f64() < 0.1);
        conserved(&report);
    }

    #[test]
    fn link_down_reroutes_over_surviving_spine() {
        // Two spines: the victim flow's uplink dies mid-transfer and the
        // flow continues over the other spine with its remaining bits.
        let topo = Topology::leaf_spine(2, 2, 2, 1e9, 1.0);
        let flows = [flow(0, 3, 125_000_000, 0)];
        let clean = run_static(&topo, &flows, &FaultSchedule::empty());
        // The first fabric link the flow used (host links carry bytes
        // too; any non-host link on its path works — pick the first link
        // with traffic that is not the host access link pair).
        let used: Vec<usize> = clean
            .link_bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(l, _)| l)
            .collect();
        // Down a used leaf->spine link: in this fabric hosts 0..4 own
        // links 0..8 (two per cable); fabric links follow.
        let fabric_link = *used.iter().find(|&&l| l >= 8).expect("fabric link used") as u32;
        let sched = schedule(vec![fault(
            400_000_000,
            FaultKind::LinkDown { link: fabric_link },
        )]);
        let report = run_static(&topo, &flows, &sched);
        assert_eq!(report.faults.rerouted_flows, 1);
        assert!(report.faults.aborted.is_empty());
        // Completes (a touch later than clean is fine; equal-capacity
        // alternative exists).
        let fct = report.results[0].fct().as_secs_f64();
        assert!((0.9..2.0).contains(&fct), "fct = {fct}");
        conserved(&report);
    }

    #[test]
    fn link_down_without_alternative_aborts() {
        // A star host has exactly one downlink: kill it and the flow has
        // nowhere to go.
        let topo = Topology::star(3, 1e9);
        let clean = run_static(
            &topo,
            &[flow(0, 1, 125_000_000, 0)],
            &FaultSchedule::empty(),
        );
        let used: Vec<u32> = clean
            .link_bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(l, _)| l as u32)
            .collect();
        assert_eq!(used.len(), 2, "host uplink + host downlink");
        for &link in &used {
            let sched = schedule(vec![fault(300_000_000, FaultKind::LinkDown { link })]);
            let report = run_static(&topo, &[flow(0, 1, 125_000_000, 0)], &sched);
            assert_eq!(report.faults.aborted, vec![0], "link {link}");
            assert_eq!(report.faults.rerouted_flows, 0);
            conserved(&report);
        }
    }

    #[test]
    fn link_degraded_stretches_completion() {
        let topo = Topology::star(2, 1e9);
        let flows = [flow(0, 1, 125_000_000, 0)];
        // Find the loaded links, then halve both from t=0 (the fault
        // event schedules after the same-instant arrival).
        let clean = run_static(&topo, &flows, &FaultSchedule::empty());
        let faults: Vec<TimedFault> = clean
            .link_bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(l, _)| {
                fault(
                    0,
                    FaultKind::LinkDegraded {
                        link: l as u32,
                        factor: 0.5,
                    },
                )
            })
            .collect();
        let report = run_static(&topo, &flows, &schedule(faults));
        let fct = report.results[0].fct().as_secs_f64();
        assert!(
            (fct - 2.0).abs() < 0.05,
            "halved capacity => doubled fct, got {fct}"
        );
        assert!(report.faults.aborted.is_empty());
        conserved(&report);
    }

    #[test]
    fn partition_kills_only_crossing_flows() {
        let topo = Topology::star(4, 1e9);
        let flows = [
            flow(0, 1, 125_000_000, 0), // inside the cut
            flow(1, 2, 125_000_000, 0), // crosses
            flow(2, 3, 125_000_000, 0), // outside
        ];
        let sched = schedule(vec![fault(
            200_000_000,
            FaultKind::Partition { cut: vec![0, 1] },
        )]);
        let report = run_static(&topo, &flows, &sched);
        assert_eq!(report.faults.aborted, vec![1]);
        assert!(report.results[0].fct().as_secs_f64() > 0.5);
        assert!(report.results[2].fct().as_secs_f64() > 0.5);
        conserved(&report);
    }

    /// A source that re-issues every aborted flow once, from a surviving
    /// host.
    struct RetrySource {
        initial: Vec<FlowSpec>,
        retries: usize,
    }

    impl TrafficSource for RetrySource {
        fn on_start(&mut self) -> Vec<FlowSpec> {
            std::mem::take(&mut self.initial)
        }
        fn on_flow_complete(&mut self, _id: FlowId, _result: &FlowResult) -> Vec<FlowSpec> {
            Vec::new()
        }
        fn on_flow_aborted(
            &mut self,
            _id: FlowId,
            result: &FlowResult,
            lost_bytes: u64,
        ) -> Vec<FlowSpec> {
            self.retries += 1;
            if self.retries > 1 {
                return Vec::new(); // retry once, then accept the loss
            }
            vec![FlowSpec {
                src: HostId(0),
                dst: HostId(1),
                bytes: lost_bytes,
                start: result.finish,
                tag: 99,
            }]
        }
    }

    #[test]
    fn observed_run_matches_plain_and_mirrors_fault_stats() {
        let topo = Topology::star(3, 1e9);
        let flows = [flow(0, 2, 125_000_000, 0), flow(1, 2, 1_000_000, 800)];
        let sched = schedule(vec![fault(500_000_000, FaultKind::NodeCrash { node: 2 })]);
        let plain = run_static(&topo, &flows, &sched);
        let obs = Obs::enabled();
        let mut source = StaticSource::new(flows.to_vec());
        let observed =
            simulate_faulted_observed(&topo, &mut source, &sched, SimOptions::default(), &obs);
        assert_eq!(plain.results, observed.results);
        assert_eq!(plain.link_bytes, observed.link_bytes);
        assert_eq!(plain.faults, observed.faults);
        let snap = obs.metrics();
        assert_eq!(
            snap.counter("faults", "flows_aborted"),
            observed.faults.aborted.len() as u64
        );
        assert_eq!(
            snap.counter("faults", "lost_bytes"),
            observed.faults.lost_bytes
        );
        assert_eq!(snap.counter("netsim", "flows_started"), 2);
        assert!(snap.counter("des", "events_dispatched") >= observed.events);
        let events = obs.trace_events();
        assert!(events.iter().any(|e| e.kind == "fault_fire"));
        assert!(events.iter().any(|e| e.kind == "flow_abort"));
    }

    #[test]
    fn aborted_flows_can_be_reissued_by_the_source() {
        let topo = Topology::star(4, 1e9);
        let mut source = RetrySource {
            initial: vec![flow(2, 3, 125_000_000, 0)],
            retries: 0,
        };
        let sched = schedule(vec![fault(500_000_000, FaultKind::NodeCrash { node: 3 })]);
        let report = simulate_faulted(&topo, &mut source, &sched, SimOptions::default());
        assert_eq!(source.retries, 1);
        assert_eq!(report.results.len(), 2, "retry was injected");
        let retry = report.results[1];
        assert_eq!(retry.spec.tag, 99);
        assert!(retry.spec.start >= report.results[0].finish);
        assert!(retry.finish > retry.spec.start, "retry completed");
        // Conservation holds across the original + reissued flows.
        conserved(&report);
    }
}
