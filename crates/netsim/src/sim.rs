//! Fluid flow-level simulation loop, driven by the shared
//! [`keddah_des::Engine`].
//!
//! Flow arrivals, rate re-solves and flow completions are engine events;
//! a [`TrafficSource`] decides which flows exist and may inject dependent
//! flows reactively on every completion (closed-loop replay). Event
//! timestamps quantize to nanoseconds for ordering, but every event
//! carries its precise `f64` time, so the fluid arithmetic — and hence
//! every [`FlowResult`] — is bit-identical to the pre-engine loop for
//! static (open-loop) traffic.

use keddah_des::{Duration, Engine, SimTime};
use serde::{Deserialize, Serialize};

use crate::fair::{FairFlowId, FairShareState};
use crate::routing::RouteCache;
use crate::source::{FlowId, StaticSource, TrafficSource};
use crate::topology::{HostId, Topology};

/// A flow to inject: who talks to whom, how much, starting when.
///
/// `tag` is an opaque label carried through to the result (the Keddah
/// replay uses it for the traffic component) and also seeds ECMP path
/// selection together with the flow's position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Injection time.
    pub start: SimTime,
    /// Opaque label carried into the result.
    pub tag: u32,
}

/// The outcome of one simulated flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// The injected spec.
    pub spec: FlowSpec,
    /// When the last byte arrived.
    pub finish: SimTime,
}

impl FlowResult {
    /// Flow completion time.
    #[must_use]
    pub fn fct(&self) -> Duration {
        self.finish.saturating_since(self.spec.start)
    }
}

/// Simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Fixed propagation/startup latency added to every flow.
    pub propagation: Duration,
    /// Flows strictly smaller than this bypass the fluid solver and
    /// complete at line rate — the standard "mice fast-path" that keeps
    /// huge control-plane flow counts tractable. Zero disables it.
    pub mouse_threshold: u64,
    /// Rate allotted to host-local flows (loopback), bits/s.
    pub local_bps: f64,
    /// Model TCP slow-start ramp-up: charges each flow
    /// `RTT * log2(segments it must ramp through)` of extra latency, with
    /// RTT = 2 x propagation. Short flows pay proportionally more — the
    /// qualitative FCT effect slow start has in packet simulators. Off
    /// by default (pure fluid model).
    pub tcp_slow_start: bool,
    /// Disable incremental fair-share maintenance and re-run full
    /// progressive filling on every event (the pre-incremental engine's
    /// behaviour). Completion times are identical either way — this is
    /// the correctness oracle the determinism tests exercise and the
    /// baseline the `flow_scaling` bench measures against. Defaults to
    /// the `KEDDAH_FULL_RECOMPUTE` environment variable (set to anything
    /// but `0`).
    pub full_recompute: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            propagation: Duration::from_micros(100),
            mouse_threshold: 0,
            local_bps: 10e9,
            tcp_slow_start: false,
            full_recompute: std::env::var("KEDDAH_FULL_RECOMPUTE").is_ok_and(|v| v != "0"),
        }
    }
}

/// Extra completion latency charged for TCP slow start: one RTT per
/// congestion-window doubling until the flow's data fits the window,
/// capped at the rounds needed for `bytes`.
fn slow_start_delay(bytes: u64, options: &SimOptions) -> f64 {
    if !options.tcp_slow_start || bytes == 0 {
        return 0.0;
    }
    const MSS: f64 = 1448.0;
    let segments = (bytes as f64 / MSS).max(1.0);
    let rounds = segments.log2().ceil().clamp(0.0, 16.0);
    let rtt = 2.0 * options.propagation.as_secs_f64();
    rounds * rtt
}

/// The output of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-flow outcomes, in the same order as the input specs.
    pub results: Vec<FlowResult>,
    /// Total bytes carried per directed link (by link id).
    pub link_bytes: Vec<u64>,
    /// Largest number of concurrently active fluid flows.
    pub peak_active: usize,
    /// Simulation events processed (arrivals, completions and completion
    /// notifications; stale rate predictions excluded). The throughput
    /// denominator of the `flow_scaling` bench.
    pub events: u64,
}

impl SimReport {
    /// Flow completion times in seconds, in input order.
    #[must_use]
    pub fn fcts(&self) -> Vec<f64> {
        self.results.iter().map(|r| r.fct().as_secs_f64()).collect()
    }

    /// The overall makespan: time from the earliest start to the last
    /// finish.
    #[must_use]
    pub fn makespan(&self) -> Duration {
        let start = self.results.iter().map(|r| r.spec.start).min();
        let end = self.results.iter().map(|r| r.finish).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => Duration::ZERO,
        }
    }

    /// Utilisation of the busiest link, as bytes carried divided by
    /// `capacity * makespan`. Returns 0 for an empty run.
    #[must_use]
    pub fn peak_link_utilisation(&self, topo: &Topology) -> f64 {
        let span = self.makespan().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.link_bytes
            .iter()
            .enumerate()
            .map(|(l, &b)| {
                b as f64 * 8.0 / (topo.link_capacity(crate::topology::LinkId(l as u32)) * span)
            })
            .fold(0.0, f64::max)
    }
}

struct ActiveFlow {
    idx: usize,
    remaining_bits: f64,
    /// Handle into the incremental fair-share allocator.
    fair: FairFlowId,
}

/// Engine events of the fluid loop. Nanosecond timestamps order events;
/// the precise `f64` times ride in the payloads so drain arithmetic never
/// quantizes.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Flow `id` (arena index) enters the network at its spec's start.
    Arrive { id: usize },
    /// Predicted earliest completion among the active flows, computed at
    /// the previous event. `gen` invalidates predictions made before the
    /// last rate re-solve; `at` is the precise predicted time.
    Complete { gen: u64, at: f64 },
    /// Flow `id`'s last byte has arrived: tell the source, which may
    /// inject dependent flows. Never touches fluid state.
    Notify { id: usize },
}

/// Sub-byte residues count as drained: they are numerical dust, and
/// waiting for them can stall the clock entirely once `now + residue/rate`
/// rounds back to `now`.
const RETIRE_EPS_BITS: f64 = 8.0;

/// Runs the fluid simulation of `flows` over `topo`.
///
/// Flows are processed in start order; active flows share links by
/// max-min fairness, recomputed at every arrival and departure. The
/// result vector preserves input order.
///
/// This is the open-loop entry point: it wraps `flows` in a
/// [`StaticSource`] and runs [`simulate_source`].
///
/// # Panics
///
/// Panics if a flow references a host outside the topology.
///
/// # Examples
///
/// ```
/// use keddah_des::SimTime;
/// use keddah_netsim::{simulate, FlowSpec, HostId, SimOptions, Topology};
///
/// let topo = Topology::star(4, 1e9);
/// let flows = vec![FlowSpec {
///     src: HostId(0),
///     dst: HostId(1),
///     bytes: 125_000_000, // 1 Gb
///     start: SimTime::ZERO,
///     tag: 0,
/// }];
/// let report = simulate(&topo, &flows, SimOptions::default());
/// // Alone on a 1 Gb/s path: ~1 s.
/// assert!((report.results[0].fct().as_secs_f64() - 1.0).abs() < 0.01);
/// ```
#[must_use]
pub fn simulate(topo: &Topology, flows: &[FlowSpec], options: SimOptions) -> SimReport {
    let mut source = StaticSource::new(flows.to_vec());
    simulate_source(topo, &mut source, options)
}

/// Runs the fluid simulation with a reactive [`TrafficSource`].
///
/// The source's initial flows are injected at their start times; on every
/// completion the source may return dependent flows, which are injected
/// in turn (starts in the simulated past are clamped to "now"). Results
/// are indexed by injection order ([`FlowId`]).
///
/// # Panics
///
/// Panics if a flow references a host outside the topology, or if the
/// fluid solver fails to make progress.
#[must_use]
pub fn simulate_source(
    topo: &Topology,
    source: &mut dyn TrafficSource,
    options: SimOptions,
) -> SimReport {
    let capacities = topo.capacities();
    let mut link_bytes = vec![0u64; capacities.len()];

    // The flow arena: grows as the source injects. Results share its
    // indexing (= FlowId = injection order).
    let mut flows: Vec<FlowSpec> = source.on_start();
    let mut results: Vec<Option<FlowResult>> = vec![None; flows.len()];

    let mut engine: Engine<Ev> = Engine::new();
    // Initial arrivals are scheduled in start order (stable), so
    // same-nanosecond arrivals pop in the order the pre-engine loop
    // processed them.
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by_key(|&i| flows[i].start);
    for &i in &order {
        engine.schedule(flows[i].start, Ev::Arrive { id: i });
    }

    let mut router = RouteCache::new(topo);
    let mut active: Vec<ActiveFlow> = Vec::new();
    // Incremental max-min state: arrivals/retirements re-solve only the
    // affected component; rates stay bit-identical to full progressive
    // filling on every event (see `fair`), so the knob below changes
    // wall-clock, never results.
    let mut fair = FairShareState::new(capacities.clone(), options.local_bps)
        .with_full_recompute(options.full_recompute);
    let mut now = 0.0f64;
    let mut peak_active = 0usize;
    // Completion predictions older than the last arrival/retirement are
    // stale; the generation counter skips them.
    let mut gen: u64 = 0;
    let mut iterations: u64 = 0;
    let mut events: u64 = 0;

    engine.run(|t, ev, queue| {
        // The event's precise time: arrivals carry exact nanoseconds,
        // completions their predicted f64.
        let tf = match ev {
            Ev::Arrive { id } => flows[id].start.as_secs_f64(),
            Ev::Complete { gen: g, at } => {
                if g != gen {
                    return; // stale prediction: rates changed since
                }
                at
            }
            Ev::Notify { id } => {
                // Completion callback: the source may release dependents.
                events += 1;
                let result = results[id].expect("notified flow has a result");
                for mut spec in source.on_flow_complete(FlowId(id), &result) {
                    // A dependent flow cannot start before its trigger.
                    if spec.start < t {
                        spec.start = t;
                    }
                    let id = flows.len();
                    flows.push(spec);
                    results.push(None);
                    queue.push(spec.start, Ev::Arrive { id });
                }
                return; // fluid state untouched
            }
        };

        iterations += 1;
        events += 1;
        if iterations > 20 * flows.len() as u64 + 10_000 {
            panic!(
                "fluid simulation failed to converge: {} active flows at t={now}, {} total, \
                 remaining={:?}, rates={:?}",
                active.len(),
                flows.len(),
                active
                    .iter()
                    .map(|f| f.remaining_bits)
                    .take(5)
                    .collect::<Vec<_>>(),
                active
                    .iter()
                    .map(|f| fair.rate(f.fair))
                    .take(5)
                    .collect::<Vec<_>>()
            );
        }

        // Drain transferred bits up to the event's precise time.
        let dt = (tf - now).max(0.0);
        for f in active.iter_mut() {
            f.remaining_bits = (f.remaining_bits - fair.rate(f.fair) * dt).max(0.0);
        }
        now = tf;

        match ev {
            Ev::Arrive { id } => {
                let spec = flows[id];
                let links: Vec<u32> = router
                    .route(spec.src, spec.dst, id as u64)
                    .into_iter()
                    .map(|l| l.0)
                    .collect();
                for &l in &links {
                    link_bytes[l as usize] += spec.bytes;
                }
                let prop = options.propagation.as_secs_f64();
                if spec.bytes < options.mouse_threshold {
                    // Mice fast-path: uncontended line-rate completion.
                    let bottleneck = links
                        .iter()
                        .map(|&l| capacities[l as usize])
                        .fold(options.local_bps, f64::min);
                    let fct = prop
                        + slow_start_delay(spec.bytes, &options)
                        + spec.bytes as f64 * 8.0 / bottleneck;
                    let finish = SimTime::from_secs_f64(now + fct);
                    results[id] = Some(FlowResult { spec, finish });
                    queue.push(finish.max(t), Ev::Notify { id });
                } else {
                    let fair_id = fair.insert_flow(&links);
                    active.push(ActiveFlow {
                        idx: id,
                        // Propagation charged up front as extra "bits" at
                        // the eventual rate would distort sharing; instead
                        // it is added to the finish time on completion.
                        remaining_bits: (spec.bytes as f64 * 8.0).max(1.0),
                        fair: fair_id,
                    });
                    peak_active = peak_active.max(active.len());
                }
            }
            Ev::Complete { .. } => {
                // Retire every flow that just drained (ties complete
                // together).
                let mut finished = Vec::new();
                active.retain(|f| {
                    if f.remaining_bits <= RETIRE_EPS_BITS {
                        finished.push((f.idx, f.fair));
                        false
                    } else {
                        true
                    }
                });
                if finished.is_empty() && !active.is_empty() {
                    // Guaranteed progress: float rounding left the minimum
                    // flow just above the epsilon; retire it outright.
                    let (pos, _) = active
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| a.remaining_bits.total_cmp(&b.remaining_bits))
                        .expect("active is non-empty");
                    let f = active.remove(pos);
                    finished.push((f.idx, f.fair));
                }
                for (id, fair_id) in finished {
                    fair.remove_flow(fair_id);
                    let spec = flows[id];
                    let extra =
                        options.propagation.as_secs_f64() + slow_start_delay(spec.bytes, &options);
                    let finish = SimTime::from_secs_f64(now + extra);
                    results[id] = Some(FlowResult { spec, finish });
                    queue.push(finish.max(t), Ev::Notify { id });
                }
            }
            Ev::Notify { .. } => unreachable!("handled above"),
        }

        // Re-predict the earliest completion with the post-event rates and
        // remainders — the exact expression the pre-engine loop evaluated
        // each iteration, so the drain arithmetic stays bit-identical.
        gen += 1;
        let next_completion = active
            .iter()
            .map(|f| now + f.remaining_bits / fair.rate(f.fair).max(1e-9))
            .fold(f64::INFINITY, f64::min);
        if next_completion.is_finite() {
            queue.push(
                SimTime::from_secs_f64(next_completion).max(t),
                Ev::Complete {
                    gen,
                    at: next_completion,
                },
            );
        }
    });

    SimReport {
        results: results
            .into_iter()
            .map(|r| r.expect("every flow completes"))
            .collect(),
        link_bytes,
        peak_active,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(src: u32, dst: u32, bytes: u64, start_ms: u64) -> FlowSpec {
        FlowSpec {
            src: HostId(src),
            dst: HostId(dst),
            bytes,
            start: SimTime::from_millis(start_ms),
            tag: 0,
        }
    }

    #[test]
    fn lone_flow_runs_at_line_rate() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 125_000_000, 0)], SimOptions::default());
        assert!((report.results[0].fct().as_secs_f64() - 1.0).abs() < 0.001);
        assert_eq!(report.peak_active, 1);
    }

    #[test]
    fn two_flows_into_one_host_share() {
        let topo = Topology::star(3, 1e9);
        let flows = [flow(0, 2, 125_000_000, 0), flow(1, 2, 125_000_000, 0)];
        let report = simulate(&topo, &flows, SimOptions::default());
        // Both share host 2's 1 Gb/s downlink: ~2 s each.
        for r in &report.results {
            assert!((r.fct().as_secs_f64() - 2.0).abs() < 0.01, "{:?}", r.fct());
        }
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let topo = Topology::star(4, 1e9);
        let flows = [flow(0, 1, 125_000_000, 0), flow(2, 3, 125_000_000, 0)];
        let report = simulate(&topo, &flows, SimOptions::default());
        for r in &report.results {
            assert!((r.fct().as_secs_f64() - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn late_arrival_slows_first_flow() {
        let topo = Topology::star(3, 1e9);
        // Flow A alone for 0.5 s, then shares with B.
        let flows = [flow(0, 2, 125_000_000, 0), flow(1, 2, 125_000_000, 500)];
        let report = simulate(&topo, &flows, SimOptions::default());
        let a = report.results[0].fct().as_secs_f64();
        // A: 0.5 s alone (half done) + 1 s shared = 1.5 s.
        assert!((a - 1.5).abs() < 0.02, "a = {a}");
    }

    #[test]
    fn results_preserve_input_order() {
        let topo = Topology::star(4, 1e9);
        let flows = [flow(2, 3, 1000, 100), flow(0, 1, 1000, 0)];
        let report = simulate(&topo, &flows, SimOptions::default());
        assert_eq!(report.results[0].spec.start, SimTime::from_millis(100));
        assert_eq!(report.results[1].spec.start, SimTime::ZERO);
    }

    #[test]
    fn mice_fast_path() {
        let topo = Topology::star(3, 1e9);
        let opts = SimOptions {
            mouse_threshold: 10_000,
            ..SimOptions::default()
        };
        // One elephant and many mice: mice finish in ~latency regardless.
        let mut flows = vec![flow(0, 2, 1 << 30, 0)];
        for i in 0..100 {
            flows.push(flow(1, 2, 500, i * 10));
        }
        let report = simulate(&topo, &flows, opts);
        assert_eq!(report.peak_active, 1, "mice never enter the fluid set");
        for r in &report.results[1..] {
            assert!(r.fct().as_secs_f64() < 0.001);
        }
    }

    #[test]
    fn local_flows_complete_fast() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 0, 125_000_000, 0)], SimOptions::default());
        // Loopback at 10 Gb/s: 0.1 s.
        assert!((report.results[0].fct().as_secs_f64() - 0.1).abs() < 0.01);
    }

    #[test]
    fn zero_byte_flow_costs_propagation() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 0, 0)], SimOptions::default());
        let fct = report.results[0].fct().as_secs_f64();
        assert!((0.0001..0.001).contains(&fct), "fct = {fct}");
    }

    #[test]
    fn link_bytes_accumulate() {
        let topo = Topology::star(3, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 1000, 0)], SimOptions::default());
        let carried: u64 = report.link_bytes.iter().sum();
        assert_eq!(carried, 2000, "two hops, 1000 bytes each");
    }

    #[test]
    fn oversubscribed_core_slows_cross_rack_traffic() {
        // 4:1 oversubscription: cross-rack flows see a quarter of the
        // rate once enough of them compete for the uplink.
        let nb = Topology::leaf_spine(2, 4, 1, 1e9, 1.0);
        let os = Topology::leaf_spine(2, 4, 1, 1e9, 4.0);
        let flows: Vec<FlowSpec> = (0..4).map(|i| flow(i, 4 + i, 125_000_000, 0)).collect();
        let fast = simulate(&nb, &flows, SimOptions::default());
        let slow = simulate(&os, &flows, SimOptions::default());
        let fast_mean: f64 = fast.fcts().iter().sum::<f64>() / 4.0;
        let slow_mean: f64 = slow.fcts().iter().sum::<f64>() / 4.0;
        assert!(
            slow_mean > 3.0 * fast_mean,
            "oversubscription had no effect: {fast_mean} vs {slow_mean}"
        );
    }

    #[test]
    fn float_residue_does_not_stall_the_clock() {
        // Regression: a completing flow can leave a sub-epsilon residue
        // whose drain time rounds to zero at large `now`, stalling the
        // simulation forever. Many unequal flows sharing links at t≈16 s
        // reproduce the pathology.
        let topo = Topology::star(10, 1e9);
        let mut flows = Vec::new();
        for i in 0..120u64 {
            flows.push(FlowSpec {
                src: HostId((i % 9) as u32),
                dst: HostId(((i + 1) % 9) as u32),
                bytes: 100_000_000 + i * 7_919 + i * i * 13,
                start: SimTime::from_nanos(16_000_000_000 + i * 41_000_000),
                tag: 0,
            });
        }
        let report = simulate(&topo, &flows, SimOptions::default());
        assert_eq!(report.results.len(), 120);
        assert!(report.makespan().as_secs_f64() > 1.0);
    }

    #[test]
    fn slow_start_penalizes_short_flows_relatively_more() {
        let topo = Topology::star(3, 1e9);
        let opts_ss = SimOptions {
            tcp_slow_start: true,
            propagation: Duration::from_millis(1), // RTT = 2 ms
            ..SimOptions::default()
        };
        let opts_fluid = SimOptions {
            propagation: Duration::from_millis(1),
            ..SimOptions::default()
        };
        let short = [flow(0, 1, 100_000, 0)];
        let long = [flow(0, 1, 100_000_000, 0)];
        let rel = |flows: &[FlowSpec]| {
            let with = simulate(&topo, flows, opts_ss).results[0]
                .fct()
                .as_secs_f64();
            let without = simulate(&topo, flows, opts_fluid).results[0]
                .fct()
                .as_secs_f64();
            (with - without) / without
        };
        let short_penalty = rel(&short);
        let long_penalty = rel(&long);
        assert!(
            short_penalty > 5.0 * long_penalty,
            "{short_penalty} vs {long_penalty}"
        );
        assert!(long_penalty >= 0.0);
    }

    /// A source that releases one dependent flow when its parent (flow 0)
    /// completes.
    struct ChainSource {
        first: Option<FlowSpec>,
        child: Option<FlowSpec>,
        releases: Vec<(usize, SimTime)>,
    }

    impl TrafficSource for ChainSource {
        fn on_start(&mut self) -> Vec<FlowSpec> {
            self.first.take().into_iter().collect()
        }
        fn on_flow_complete(&mut self, id: FlowId, result: &FlowResult) -> Vec<FlowSpec> {
            self.releases.push((id.0, result.finish));
            if id.0 == 0 {
                self.child.take().into_iter().collect()
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn source_injects_dependent_flow_after_parent() {
        let topo = Topology::star(3, 1e9);
        let mut source = ChainSource {
            first: Some(flow(0, 2, 125_000_000, 0)),
            child: Some(flow(1, 2, 125_000_000, 0)),
            releases: Vec::new(),
        };
        let report = simulate_source(&topo, &mut source, SimOptions::default());
        assert_eq!(report.results.len(), 2);
        // Parent runs alone (~1 s), child starts only after it finishes.
        let parent = report.results[0];
        let child = report.results[1];
        assert!((parent.fct().as_secs_f64() - 1.0).abs() < 0.01);
        assert!(child.spec.start >= parent.finish, "child waits for parent");
        assert!((child.fct().as_secs_f64() - 1.0).abs() < 0.01);
        // The source heard about both completions, parent first.
        assert_eq!(source.releases.len(), 2);
        assert_eq!(source.releases[0].0, 0);
    }

    #[test]
    fn static_source_matches_simulate() {
        let topo = Topology::star(6, 1e9);
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| {
                flow(
                    i % 5,
                    (i + 1) % 5,
                    1_000_000 + u64::from(i) * 77_777,
                    u64::from(i) * 13,
                )
            })
            .collect();
        let direct = simulate(&topo, &flows, SimOptions::default());
        let mut source = StaticSource::new(flows.clone());
        let via_source = simulate_source(&topo, &mut source, SimOptions::default());
        assert_eq!(direct.results, via_source.results);
        assert_eq!(direct.link_bytes, via_source.link_bytes);
        assert_eq!(direct.peak_active, via_source.peak_active);
    }

    #[test]
    fn past_start_times_clamp_to_release() {
        // A child spec claiming to start at t=0 is injected when its
        // parent completes (~1 s): the start clamps forward, never back.
        let topo = Topology::star(3, 1e9);
        let mut source = ChainSource {
            first: Some(flow(0, 1, 125_000_000, 500)),
            child: Some(flow(1, 2, 1_000, 0)),
            releases: Vec::new(),
        };
        let report = simulate_source(&topo, &mut source, SimOptions::default());
        assert_eq!(report.results[1].spec.start, report.results[0].finish);
    }

    #[test]
    fn makespan_and_utilisation() {
        let topo = Topology::star(2, 1e9);
        let report = simulate(&topo, &[flow(0, 1, 125_000_000, 0)], SimOptions::default());
        assert!((report.makespan().as_secs_f64() - 1.0).abs() < 0.01);
        let util = report.peak_link_utilisation(&topo);
        assert!(util > 0.9 && util <= 1.01, "util = {util}");
    }
}
