//! Destination-indexed route caching.
//!
//! [`Topology::route`] runs a BFS per call; a replay injecting tens of
//! thousands of flows toward a handful of reducer hosts repeats the same
//! BFS endlessly. [`RouteCache`] memoizes the per-destination distance
//! tables so each destination's BFS runs once, while ECMP selection
//! stays per-flow.

use std::collections::HashMap;

use crate::topology::{HostId, LinkId, Topology};

/// A per-destination route cache over one topology.
///
/// # Examples
///
/// ```
/// use keddah_netsim::{RouteCache, HostId, Topology};
///
/// let topo = Topology::fat_tree(4, 1e9);
/// let mut cache = RouteCache::new(&topo);
/// let path = cache.route(HostId(0), HostId(12), 7);
/// assert_eq!(path, topo.route(HostId(0), HostId(12), 7));
/// ```
#[derive(Debug)]
pub struct RouteCache<'a> {
    topo: &'a Topology,
    distances: HashMap<u32, Vec<u32>>,
}

impl<'a> RouteCache<'a> {
    /// Creates an empty cache over `topo`.
    #[must_use]
    pub fn new(topo: &'a Topology) -> Self {
        RouteCache {
            topo,
            distances: HashMap::new(),
        }
    }

    /// Creates a cache with every host's distance table precomputed.
    ///
    /// Routing then never pays a BFS at simulation time — the
    /// `flow_scaling` bench uses this to keep route construction out of
    /// the allocator measurements, and large replays (every host a
    /// destination sooner or later) skip the first-touch latency.
    #[must_use]
    pub fn warmed(topo: &'a Topology) -> Self {
        let mut cache = RouteCache::new(topo);
        cache.warm();
        cache
    }

    /// Precomputes the distance tables of all hosts not yet cached.
    pub fn warm(&mut self) {
        for dst in 0..self.topo.host_count() {
            let topo = self.topo;
            self.distances
                .entry(dst)
                .or_insert_with(|| topo.distances_to(dst));
        }
    }

    /// Number of destinations whose distance table is cached.
    #[must_use]
    pub fn cached_destinations(&self) -> usize {
        self.distances.len()
    }

    /// Shortest ECMP path from `src` to `dst`, identical to
    /// [`Topology::route`] but with the destination's BFS memoized.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a host.
    pub fn route(&mut self, src: HostId, dst: HostId, flow_hash: u64) -> Vec<LinkId> {
        assert!(src.0 < self.topo.host_count(), "{src} is not a host");
        assert!(dst.0 < self.topo.host_count(), "{dst} is not a host");
        if src == dst {
            return Vec::new();
        }
        let topo = self.topo;
        let dist = self
            .distances
            .entry(dst.0)
            .or_insert_with(|| topo.distances_to(dst.0));
        topo.walk_route(src.0, dst.0, dist, flow_hash)
    }

    /// Drops every cached distance table. Fault events that change the
    /// usable graph (a link going down) must call this before the next
    /// route query; the tables are then lazily rebuilt against the new
    /// mask.
    pub fn invalidate(&mut self) {
        self.distances.clear();
    }

    /// Shortest ECMP path from `src` to `dst` over the surviving graph
    /// (links with `down[link] == true` removed). Returns `None` when
    /// the fault mask disconnects the pair.
    ///
    /// The cached tables are only valid for one mask at a time: callers
    /// must [`invalidate`](Self::invalidate) whenever `down` changes
    /// (the fault layer does so on every `LinkDown`).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a host.
    pub fn route_avoiding(
        &mut self,
        src: HostId,
        dst: HostId,
        flow_hash: u64,
        down: &[bool],
    ) -> Option<Vec<LinkId>> {
        assert!(src.0 < self.topo.host_count(), "{src} is not a host");
        assert!(dst.0 < self.topo.host_count(), "{dst} is not a host");
        if src == dst {
            return Some(Vec::new());
        }
        let topo = self.topo;
        let dist = self
            .distances
            .entry(dst.0)
            .or_insert_with(|| topo.distances_to_avoiding(dst.0, down));
        topo.walk_route_avoiding(src.0, dst.0, dist, flow_hash, down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_agrees_with_direct_routing() {
        let topo = Topology::fat_tree(4, 1e9);
        let mut cache = RouteCache::new(&topo);
        for src in 0..topo.host_count() {
            for dst in 0..topo.host_count() {
                for hash in [0u64, 7, 42] {
                    assert_eq!(
                        cache.route(HostId(src), HostId(dst), hash),
                        topo.route(HostId(src), HostId(dst), hash),
                        "mismatch {src}->{dst} hash {hash}"
                    );
                }
            }
        }
        // One BFS per destination, not per call.
        assert_eq!(cache.cached_destinations() as u32, topo.host_count());
    }

    #[test]
    fn warmed_cache_needs_no_lazy_bfs() {
        let topo = Topology::leaf_spine(2, 3, 2, 1e9, 1.0);
        let mut cache = RouteCache::warmed(&topo);
        assert_eq!(cache.cached_destinations() as u32, topo.host_count());
        let path = cache.route(HostId(0), HostId(5), 3);
        assert_eq!(path, topo.route(HostId(0), HostId(5), 3));
        assert_eq!(cache.cached_destinations() as u32, topo.host_count());
    }

    #[test]
    fn masked_routing_avoids_downed_links_or_reports_disconnection() {
        let topo = Topology::leaf_spine(2, 2, 2, 1e9, 1.0);
        let mut cache = RouteCache::new(&topo);
        let all_up = vec![false; topo.link_count()];
        // With nothing down, the masked route equals the clean route.
        assert_eq!(
            cache.route_avoiding(HostId(0), HostId(3), 5, &all_up),
            Some(cache.route(HostId(0), HostId(3), 5))
        );
        // Down the link the clean path uses: the masked route must avoid
        // it (two spines => an alternative exists).
        let clean = cache.route(HostId(0), HostId(3), 5);
        let dead = clean[1]; // a fabric link (index 0 is the host uplink)
        let mut down = all_up.clone();
        down[dead.0 as usize] = true;
        cache.invalidate();
        let masked = cache
            .route_avoiding(HostId(0), HostId(3), 5, &down)
            .expect("alternative spine exists");
        assert!(!masked.contains(&dead));
        // Down the host's only uplink: disconnected.
        let mut cut_off = all_up.clone();
        cut_off[clean[0].0 as usize] = true;
        cache.invalidate();
        assert_eq!(
            cache.route_avoiding(HostId(0), HostId(3), 5, &cut_off),
            None
        );
        // Self-routes survive any mask.
        assert_eq!(
            cache.route_avoiding(HostId(1), HostId(1), 0, &cut_off),
            Some(Vec::new())
        );
    }

    #[test]
    fn invalidate_clears_cached_tables() {
        let topo = Topology::star(4, 1e9);
        let mut cache = RouteCache::warmed(&topo);
        assert_eq!(cache.cached_destinations() as u32, topo.host_count());
        cache.invalidate();
        assert_eq!(cache.cached_destinations(), 0);
    }

    #[test]
    fn self_routes_are_empty_and_uncached() {
        let topo = Topology::star(4, 1e9);
        let mut cache = RouteCache::new(&topo);
        assert!(cache.route(HostId(2), HostId(2), 0).is_empty());
        assert_eq!(cache.cached_destinations(), 0);
    }
}
