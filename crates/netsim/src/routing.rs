//! Destination-indexed route caching.
//!
//! [`Topology::route`] runs a BFS per call; a replay injecting tens of
//! thousands of flows toward a handful of reducer hosts repeats the same
//! BFS endlessly. [`RouteCache`] memoizes the per-destination distance
//! tables so each destination's BFS runs once, while ECMP selection
//! stays per-flow.

use std::collections::HashMap;

use crate::topology::{HostId, LinkId, Topology};

/// A per-destination route cache over one topology.
///
/// # Examples
///
/// ```
/// use keddah_netsim::{RouteCache, HostId, Topology};
///
/// let topo = Topology::fat_tree(4, 1e9);
/// let mut cache = RouteCache::new(&topo);
/// let path = cache.route(HostId(0), HostId(12), 7);
/// assert_eq!(path, topo.route(HostId(0), HostId(12), 7));
/// ```
#[derive(Debug)]
pub struct RouteCache<'a> {
    topo: &'a Topology,
    distances: HashMap<u32, Vec<u32>>,
}

impl<'a> RouteCache<'a> {
    /// Creates an empty cache over `topo`.
    #[must_use]
    pub fn new(topo: &'a Topology) -> Self {
        RouteCache {
            topo,
            distances: HashMap::new(),
        }
    }

    /// Creates a cache with every host's distance table precomputed.
    ///
    /// Routing then never pays a BFS at simulation time — the
    /// `flow_scaling` bench uses this to keep route construction out of
    /// the allocator measurements, and large replays (every host a
    /// destination sooner or later) skip the first-touch latency.
    #[must_use]
    pub fn warmed(topo: &'a Topology) -> Self {
        let mut cache = RouteCache::new(topo);
        cache.warm();
        cache
    }

    /// Precomputes the distance tables of all hosts not yet cached.
    pub fn warm(&mut self) {
        for dst in 0..self.topo.host_count() {
            let topo = self.topo;
            self.distances
                .entry(dst)
                .or_insert_with(|| topo.distances_to(dst));
        }
    }

    /// Number of destinations whose distance table is cached.
    #[must_use]
    pub fn cached_destinations(&self) -> usize {
        self.distances.len()
    }

    /// Shortest ECMP path from `src` to `dst`, identical to
    /// [`Topology::route`] but with the destination's BFS memoized.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a host.
    pub fn route(&mut self, src: HostId, dst: HostId, flow_hash: u64) -> Vec<LinkId> {
        assert!(src.0 < self.topo.host_count(), "{src} is not a host");
        assert!(dst.0 < self.topo.host_count(), "{dst} is not a host");
        if src == dst {
            return Vec::new();
        }
        let topo = self.topo;
        let dist = self
            .distances
            .entry(dst.0)
            .or_insert_with(|| topo.distances_to(dst.0));
        topo.walk_route(src.0, dst.0, dist, flow_hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_agrees_with_direct_routing() {
        let topo = Topology::fat_tree(4, 1e9);
        let mut cache = RouteCache::new(&topo);
        for src in 0..topo.host_count() {
            for dst in 0..topo.host_count() {
                for hash in [0u64, 7, 42] {
                    assert_eq!(
                        cache.route(HostId(src), HostId(dst), hash),
                        topo.route(HostId(src), HostId(dst), hash),
                        "mismatch {src}->{dst} hash {hash}"
                    );
                }
            }
        }
        // One BFS per destination, not per call.
        assert_eq!(cache.cached_destinations() as u32, topo.host_count());
    }

    #[test]
    fn warmed_cache_needs_no_lazy_bfs() {
        let topo = Topology::leaf_spine(2, 3, 2, 1e9, 1.0);
        let mut cache = RouteCache::warmed(&topo);
        assert_eq!(cache.cached_destinations() as u32, topo.host_count());
        let path = cache.route(HostId(0), HostId(5), 3);
        assert_eq!(path, topo.route(HostId(0), HostId(5), 3));
        assert_eq!(cache.cached_destinations() as u32, topo.host_count());
    }

    #[test]
    fn self_routes_are_empty_and_uncached() {
        let topo = Topology::star(4, 1e9);
        let mut cache = RouteCache::new(&topo);
        assert!(cache.route(HostId(2), HostId(2), 0).is_empty());
        assert_eq!(cache.cached_destinations(), 0);
    }
}
