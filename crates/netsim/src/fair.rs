//! Max-min fair bandwidth allocation.
//!
//! The fluid abstraction of TCP used by flow-level simulators: at any
//! instant, active flows receive the max-min fair allocation over the
//! links they traverse, computed by progressive filling. This is the
//! bandwidth-sharing model under which the replay experiments run.
//!
//! Two entry points share the arithmetic:
//!
//! * [`max_min_rates`] — the pure from-scratch solver over one flow set;
//! * [`FairShareState`] — an incremental allocator that keeps per-link
//!   flow adjacency between events and, on each [`insert_flow`] /
//!   [`remove_flow`], re-solves only the *affected component*: the flows
//!   transitively connected to the mutated flow through shared links.
//!   Its rates are **bit-for-bit identical** to [`max_min_rates`] over
//!   the full active set after every mutation (see the module's
//!   equivalence argument below), which is what keeps same-seed replays
//!   byte-identical whichever path runs.
//!
//! # Why component-scoped re-solving is exact
//!
//! Progressive filling over a union of link-disjoint flow components
//! performs, per component, the same floating-point operations as
//! filling each component alone:
//!
//! * a link's `remaining` capacity is only ever decremented by flows
//!   crossing that link, i.e. flows of its own component;
//! * the bottleneck selection order *within* a component depends only on
//!   that component's shares plus the global link index used to break
//!   ties, never on other components' links;
//! * within one freeze round every frozen flow subtracts the *same*
//!   share value, so the order of subtractions (and `.max(0.0)` clamps)
//!   on any given link cannot change the result.
//!
//! Hence a flow's rate is a function of its component only, and cached
//! rates of untouched components remain exactly what a from-scratch
//! solve would produce. The property test
//! `fair_share_state_matches_full_recompute` pins this with exact
//! (bitwise) equality, well inside the 1e-9 budget.
//!
//! # Weighted entries (flow bundles)
//!
//! [`insert_weighted`] registers one entry standing for `w` identical
//! flows — same links, same (per-member) rate. The weighted solve is
//! bit-identical to inserting the `w` members individually:
//!
//! * members of a bundle share one link set, so in the per-flow solve
//!   they are symmetric: all freeze in the same round at the same share;
//! * a link's unfrozen count under weights is the sum of member counts —
//!   the same integer the per-flow solve divides by;
//! * freezing a weight-`w` entry performs `w` literal
//!   `(remaining - share).max(0.0)` subtractions per crossed link — the
//!   member-wise rounding sequence — and within one freeze round every
//!   subtraction uses the *same* share value, so interleaving members of
//!   different bundles (as the per-flow solve may) cannot change any
//!   intermediate, let alone the result.
//!
//! The only shortcut taken: when a freeze drops a link's unfrozen count
//! to zero, its `remaining` is never read again this solve, so the
//! member-wise drain is skipped. That makes single-bundle components
//! O(links) instead of O(members), which is what keeps million-flow
//! bundles solvable per event. The `aggregated_rates_match_per_flow`
//! proptest pins the bitwise equivalence.
//!
//! # Parallel component solves
//!
//! [`with_parallel`](FairShareState::with_parallel) lets the dense
//! (full-refill) path solve independent components on scoped threads.
//! Components are link-disjoint, so their solves share no state; results
//! are merged in ascending component index. By the equivalence argument
//! above the rates are bit-identical at any thread count — the
//! determinism suite pins solver width (and the `KEDDAH_SEQ_SOLVE`
//! oracle) as a no-op on replay output.
//!
//! [`insert_flow`]: FairShareState::insert_flow
//! [`insert_weighted`]: FairShareState::insert_weighted
//! [`remove_flow`]: FairShareState::remove_flow

/// Computes max-min fair rates (bits/s) for a set of flows.
///
/// `flow_links[i]` lists the directed link indices flow `i` traverses
/// (an empty list means the flow never leaves its host and is allocated
/// `local_bps`). `capacities[l]` is link `l`'s capacity in bits/s.
///
/// Runs progressive filling: repeatedly find the most-constrained link
/// (smallest capacity share per unfrozen flow), freeze its flows at that
/// share, remove the consumed capacity, and continue until every flow is
/// frozen.
///
/// # Panics
///
/// Panics in debug builds if a flow references an out-of-range link.
///
/// # Examples
///
/// ```
/// use keddah_netsim::fair::max_min_rates;
///
/// // Two flows share link 0 (10 bps); flow 1 also crosses link 1 (2 bps).
/// let rates = max_min_rates(&[vec![0], vec![0, 1]], &[10.0, 2.0], 100.0);
/// assert!((rates[1] - 2.0).abs() < 1e-9); // bottlenecked on link 1
/// assert!((rates[0] - 8.0).abs() < 1e-9); // picks up the slack
/// ```
#[must_use]
pub fn max_min_rates(flow_links: &[Vec<u32>], capacities: &[f64], local_bps: f64) -> Vec<f64> {
    let n = flow_links.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut frozen = vec![false; n];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Flows on each link, and per-link unfrozen counts.
    let mut link_flows: Vec<Vec<u32>> = vec![Vec::new(); capacities.len()];
    for (i, links) in flow_links.iter().enumerate() {
        for &l in links {
            debug_assert!((l as usize) < capacities.len(), "link out of range");
            link_flows[l as usize].push(i as u32);
        }
        if links.is_empty() {
            rates[i] = local_bps;
            frozen[i] = true;
        }
    }
    let mut unfrozen_on: Vec<u32> = link_flows
        .iter()
        .enumerate()
        .map(|(l, flows)| {
            let _ = l;
            flows.iter().filter(|&&f| !frozen[f as usize]).count() as u32
        })
        .collect();

    loop {
        // Find the bottleneck link: smallest fair share among links with
        // unfrozen flows.
        let mut best: Option<(usize, f64)> = None;
        for (l, &count) in unfrozen_on.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let share = (remaining[l] / count as f64).max(0.0);
            match best {
                Some((_, s)) if s <= share => {}
                _ => best = Some((l, share)),
            }
        }
        let Some((bottleneck, share)) = best else {
            break; // all flows frozen
        };
        // Freeze every unfrozen flow crossing the bottleneck at `share`,
        // and charge that rate to every link each flow crosses.
        let flows_here: Vec<u32> = link_flows[bottleneck]
            .iter()
            .copied()
            .filter(|&f| !frozen[f as usize])
            .collect();
        for f in flows_here {
            if frozen[f as usize] {
                // A flow that crosses the bottleneck twice appears twice
                // in the collected list; freeze it only once.
                continue;
            }
            frozen[f as usize] = true;
            rates[f as usize] = share;
            for &l in &flow_links[f as usize] {
                remaining[l as usize] = (remaining[l as usize] - share).max(0.0);
                unfrozen_on[l as usize] -= 1;
            }
        }
    }
    rates
}

/// Handle to a flow registered with a [`FairShareState`].
///
/// Handles are arena slots: stable while the flow is active, recycled
/// after [`FairShareState::remove_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FairFlowId(pub u32);

#[derive(Debug, Clone, Default)]
struct FlowSlot {
    links: Vec<u32>,
    /// Member flows this entry stands for (1 = a plain flow; >1 = a
    /// bundle of identical flows sharing the link set and the rate).
    weight: u32,
    alive: bool,
}

/// Incremental max-min fair allocator.
///
/// Maintains the active flow set, per-link flow adjacency and per-flow
/// rates across mutations. Inserting or removing a flow re-solves only
/// the affected component (flows transitively sharing links with the
/// mutated flow); when that dirty set exceeds
/// [`fallback_threshold`](Self::with_fallback_threshold) of the active
/// flows — or when full recompute is forced — the whole set is refilled
/// with dense per-link arrays instead, which produces the same rates at
/// a lower constant factor.
///
/// # Examples
///
/// ```
/// use keddah_netsim::fair::{max_min_rates, FairShareState};
///
/// let mut state = FairShareState::new(vec![10.0, 2.0], 100.0);
/// let a = state.insert_flow(&[0]);
/// let b = state.insert_flow(&[0, 1]);
/// assert!((state.rate(b) - 2.0).abs() < 1e-12); // bottlenecked on link 1
/// assert!((state.rate(a) - 8.0).abs() < 1e-12); // picks up the slack
/// // Exactly the from-scratch allocation:
/// let full = max_min_rates(&[vec![0], vec![0, 1]], &[10.0, 2.0], 100.0);
/// assert_eq!(vec![state.rate(a), state.rate(b)], full);
/// state.remove_flow(b);
/// assert_eq!(state.rate(a), 10.0);
/// ```
#[derive(Debug)]
pub struct FairShareState {
    capacities: Vec<f64>,
    local_bps: f64,
    full_recompute: bool,
    /// Dirty-set fraction above which [`fill_dense`](Self::fill_dense)
    /// replaces the component-local solve.
    fallback_threshold: f64,
    slots: Vec<FlowSlot>,
    rates: Vec<f64>,
    free: Vec<u32>,
    /// link -> active entries crossing it, one entry per crossing (an
    /// entry listing a link twice appears twice).
    link_flows: Vec<Vec<u32>>,
    /// Active member flows (weights summed), local (link-less) included.
    active: usize,
    /// Active *entries* (not members) that traverse at least one link —
    /// the dense-fallback heuristic's denominator.
    active_on_links: usize,
    /// Scoped threads the dense path may fan components out over
    /// (1 = sequential). Rates are identical at any width.
    parallel: usize,

    // Stamped scratch maps: an entry is valid iff its stamp equals
    // `stamp`, so per-solve clearing is O(touched), not O(total).
    stamp: u64,
    flow_mark: Vec<u64>,
    flow_local: Vec<u32>,
    link_mark: Vec<u64>,
    link_local: Vec<u32>,

    // Instrumentation for benches and the DESIGN ablation.
    solves: u64,
    solved_flows: u64,
    dense_solves: u64,
}

impl FairShareState {
    /// Creates an empty allocator over links with the given capacities;
    /// flows with no links are allocated `local_bps`.
    #[must_use]
    pub fn new(capacities: Vec<f64>, local_bps: f64) -> Self {
        let n_links = capacities.len();
        FairShareState {
            capacities,
            local_bps,
            full_recompute: false,
            fallback_threshold: 0.75,
            slots: Vec::new(),
            rates: Vec::new(),
            free: Vec::new(),
            link_flows: vec![Vec::new(); n_links],
            active: 0,
            active_on_links: 0,
            parallel: 1,
            stamp: 0,
            flow_mark: Vec::new(),
            flow_local: Vec::new(),
            link_mark: vec![0; n_links],
            link_local: vec![0; n_links],
            solves: 0,
            solved_flows: 0,
            dense_solves: 0,
        }
    }

    /// Forces full progressive filling on every mutation (the
    /// pre-incremental engine's behaviour). Rates are identical either
    /// way; this is the correctness oracle and the perf baseline the
    /// `flow_scaling` bench measures against.
    #[must_use]
    pub fn with_full_recompute(mut self, full: bool) -> Self {
        self.full_recompute = full;
        self
    }

    /// Sets the dirty-set fraction above which a mutation falls back to
    /// dense full filling (clamped to `(0, 1]`; default 0.75).
    #[must_use]
    pub fn with_fallback_threshold(mut self, frac: f64) -> Self {
        self.fallback_threshold = frac.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Lets dense refills solve independent components on up to `jobs`
    /// scoped threads (see the module's parallel-solve section). Rates
    /// are bit-identical at any width; 1 (the default) is sequential.
    #[must_use]
    pub fn with_parallel(mut self, jobs: usize) -> Self {
        self.parallel = jobs.max(1);
        self
    }

    /// Registers a flow crossing `links` and re-solves the affected
    /// component. An empty link list is a host-local flow, allocated the
    /// local rate immediately.
    ///
    /// # Panics
    ///
    /// Panics if a link index is out of range.
    pub fn insert_flow(&mut self, links: &[u32]) -> FairFlowId {
        self.insert_weighted(links, 1)
    }

    /// Registers a *bundle*: one entry standing for `weight` identical
    /// flows crossing `links`. The entry's rate is the **per-member**
    /// rate, bit-identical to inserting the members individually (see
    /// the module's weighted-entries section).
    ///
    /// # Panics
    ///
    /// Panics if a link index is out of range or `weight` is zero.
    pub fn insert_weighted(&mut self, links: &[u32], weight: u32) -> FairFlowId {
        assert!(weight > 0, "a fair-share entry needs at least one member");
        for &l in links {
            assert!(
                (l as usize) < self.capacities.len(),
                "link {l} out of range"
            );
        }
        let id = if let Some(slot) = self.free.pop() {
            self.slots[slot as usize].links.clear();
            self.slots[slot as usize].links.extend_from_slice(links);
            self.slots[slot as usize].weight = weight;
            self.slots[slot as usize].alive = true;
            slot
        } else {
            self.slots.push(FlowSlot {
                links: links.to_vec(),
                weight,
                alive: true,
            });
            self.rates.push(0.0);
            self.flow_mark.push(0);
            self.flow_local.push(0);
            (self.slots.len() - 1) as u32
        };
        self.active += weight as usize;
        if links.is_empty() {
            self.rates[id as usize] = self.local_bps;
            return FairFlowId(id);
        }
        self.active_on_links += 1;
        for &l in links {
            self.link_flows[l as usize].push(id);
        }
        self.resolve_around(&[id]);
        FairFlowId(id)
    }

    /// Adds `dw` members to a bundle and re-solves its component —
    /// equivalent to `dw` individual [`insert_flow`](Self::insert_flow)
    /// calls with the bundle's link set.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale or `dw` is zero.
    pub fn add_weight(&mut self, id: FairFlowId, dw: u32) {
        let slot = id.0 as usize;
        assert!(
            self.slots.get(slot).is_some_and(|s| s.alive),
            "add_weight on stale handle {id:?}"
        );
        assert!(dw > 0, "weight delta must be positive");
        self.slots[slot].weight += dw;
        self.active += dw as usize;
        if !self.slots[slot].links.is_empty() {
            self.resolve_around(&[id.0]);
        }
    }

    /// Removes `dw` members from a bundle and re-solves its component.
    /// The last member must leave via [`remove_flow`](Self::remove_flow)
    /// instead, which retires the entry.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale, `dw` is zero, or `dw` is not
    /// strictly less than the current weight.
    pub fn sub_weight(&mut self, id: FairFlowId, dw: u32) {
        let slot = id.0 as usize;
        assert!(
            self.slots.get(slot).is_some_and(|s| s.alive),
            "sub_weight on stale handle {id:?}"
        );
        let w = self.slots[slot].weight;
        assert!(
            dw > 0 && dw < w,
            "sub_weight({dw}) must leave at least one of {w} members"
        );
        self.slots[slot].weight = w - dw;
        self.active -= dw as usize;
        if !self.slots[slot].links.is_empty() {
            self.resolve_around(&[id.0]);
        }
    }

    /// Member count of an active entry (1 for plain flows).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    #[must_use]
    pub fn weight(&self, id: FairFlowId) -> u32 {
        let slot = id.0 as usize;
        assert!(
            self.slots.get(slot).is_some_and(|s| s.alive),
            "weight of stale handle {id:?}"
        );
        self.slots[slot].weight
    }

    /// Unregisters a flow and re-solves the component it left behind
    /// (which may have split into several; solving their union is
    /// equivalent).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (already removed).
    pub fn remove_flow(&mut self, id: FairFlowId) {
        let slot = id.0 as usize;
        assert!(
            self.slots.get(slot).is_some_and(|s| s.alive),
            "remove_flow on stale handle {id:?}"
        );
        self.slots[slot].alive = false;
        self.rates[slot] = 0.0;
        self.active -= self.slots[slot].weight as usize;
        self.slots[slot].weight = 0;
        let links = std::mem::take(&mut self.slots[slot].links);
        self.free.push(id.0);
        if links.is_empty() {
            return;
        }
        self.active_on_links -= 1;
        // Collect the orphaned neighbours before dropping the adjacency.
        self.stamp += 1;
        let mut seeds: Vec<u32> = Vec::new();
        for &l in &links {
            self.link_flows[l as usize].retain(|&f| f != id.0);
            for &f in &self.link_flows[l as usize] {
                if self.flow_mark[f as usize] != self.stamp {
                    self.flow_mark[f as usize] = self.stamp;
                    seeds.push(f);
                }
            }
        }
        if !seeds.is_empty() {
            self.resolve_around(&seeds);
        }
    }

    /// Changes one link's capacity (a degraded or repaired optic, a
    /// downed link at 0) and re-solves only the component sharing it:
    /// the link's flows seed the dirty set exactly like an arrival on
    /// that link would, so the incremental allocator absorbs fault
    /// events without a dense refill. With no flows on the link this is
    /// a pure bookkeeping update.
    ///
    /// # Panics
    ///
    /// Panics if the link id is out of range or the capacity is not a
    /// finite non-negative number.
    pub fn set_capacity(&mut self, link: u32, bps: f64) {
        assert!(
            (link as usize) < self.capacities.len(),
            "link {link} out of range"
        );
        assert!(
            bps.is_finite() && bps >= 0.0,
            "capacity must be finite and non-negative, got {bps}"
        );
        self.capacities[link as usize] = bps;
        let seeds = self.link_flows[link as usize].clone();
        if !seeds.is_empty() {
            self.resolve_around(&seeds);
        }
    }

    /// The current **per-member** rate of an active entry, bits/s (for
    /// weight-1 entries this is simply the flow's rate).
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    #[must_use]
    pub fn rate(&self, id: FairFlowId) -> f64 {
        let slot = id.0 as usize;
        assert!(
            self.slots.get(slot).is_some_and(|s| s.alive),
            "rate of stale handle {id:?}"
        );
        self.rates[slot]
    }

    /// Rates of every active flow, sorted by handle.
    #[must_use]
    pub fn rates(&self) -> Vec<(FairFlowId, f64)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| (FairFlowId(i as u32), self.rates[i]))
            .collect()
    }

    /// Number of active member flows (weights summed, local included).
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Total component solves performed, dense fallbacks included.
    #[must_use]
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Total flow rates written across all solves — the incremental
    /// path's work metric (the full-recompute path re-writes every
    /// active flow on every event).
    #[must_use]
    pub fn solved_flows(&self) -> u64 {
        self.solved_flows
    }

    /// How many solves fell back to dense full filling.
    #[must_use]
    pub fn dense_solves(&self) -> u64 {
        self.dense_solves
    }

    /// Re-solves the component reachable from `seeds` (flows), or
    /// everything via the dense path when the dirty set is large enough
    /// that component bookkeeping stops paying for itself.
    fn resolve_around(&mut self, seeds: &[u32]) {
        if self.full_recompute {
            self.fill_dense();
            return;
        }
        // BFS over the flow/link sharing graph. `flow_local` doubles as
        // the local index map for the fill; `link_local` likewise.
        self.stamp += 1;
        let stamp = self.stamp;
        let mut members: Vec<u32> = Vec::with_capacity(seeds.len());
        let mut comp_links: Vec<u32> = Vec::new();
        for &f in seeds {
            if self.flow_mark[f as usize] != stamp {
                self.flow_mark[f as usize] = stamp;
                self.flow_local[f as usize] = members.len() as u32;
                members.push(f);
            }
        }
        let mut head = 0usize;
        while head < members.len() {
            let f = members[head] as usize;
            head += 1;
            for li in 0..self.slots[f].links.len() {
                let l = self.slots[f].links[li] as usize;
                if self.link_mark[l] != stamp {
                    self.link_mark[l] = stamp;
                    self.link_local[l] = comp_links.len() as u32;
                    comp_links.push(l as u32);
                    for gi in 0..self.link_flows[l].len() {
                        let g = self.link_flows[l][gi] as usize;
                        if self.flow_mark[g] != stamp {
                            self.flow_mark[g] = stamp;
                            self.flow_local[g] = members.len() as u32;
                            members.push(g as u32);
                        }
                    }
                }
            }
        }
        // Dense fallback: once the dirty set is most of the active flows
        // (and big enough for the local index maps to cost more than
        // they save), plain full filling has the lower constant factor.
        let dirty_frac = members.len() as f64 / self.active_on_links.max(1) as f64;
        if members.len() >= 64 && dirty_frac > self.fallback_threshold {
            self.fill_dense();
        } else {
            self.fill_local(&members, &comp_links);
        }
    }

    /// Progressive filling restricted to one component, with the
    /// component's links remapped to dense local indices. Reproduces
    /// [`max_min_rates`]'s arithmetic exactly: identical share
    /// divisions, identical subtraction-and-clamp updates, and the same
    /// bottleneck tie-break (lowest *global* link index).
    fn fill_local(&mut self, members: &[u32], comp_links: &[u32]) {
        self.solves += 1;
        self.solved_flows += members.len() as u64;
        let out = solve_component(
            &self.slots,
            &self.link_flows,
            &self.capacities,
            &self.flow_local,
            &self.link_local,
            members,
            comp_links,
        );
        for (&f, &r) in members.iter().zip(&out) {
            self.rates[f as usize] = r;
        }
    }

    /// Dense full refill: decomposes the active graph into
    /// link-connected components and fills each independently (on scoped
    /// threads when [`with_parallel`](Self::with_parallel) allows),
    /// merging rates in ascending component index. Per the module's
    /// equivalence argument this is bit-identical to one global
    /// progressive fill, and to [`max_min_rates`] over the active set.
    fn fill_dense(&mut self) {
        self.solves += 1;
        self.dense_solves += 1;
        // Decomposition: BFS from each unvisited linked entry, in slot
        // order, writing component-relative local indices into the
        // stamped maps. Flattened storage, one (member, link) range per
        // component.
        self.stamp += 1;
        let stamp = self.stamp;
        let mut members: Vec<u32> = Vec::new();
        let mut links: Vec<u32> = Vec::new();
        let mut comps: Vec<(usize, usize, usize, usize)> = Vec::new();
        for start in 0..self.slots.len() {
            if !self.slots[start].alive
                || self.slots[start].links.is_empty()
                || self.flow_mark[start] == stamp
            {
                continue;
            }
            let (ms, ls) = (members.len(), links.len());
            self.flow_mark[start] = stamp;
            self.flow_local[start] = 0;
            members.push(start as u32);
            let mut head = ms;
            while head < members.len() {
                let f = members[head] as usize;
                head += 1;
                for li in 0..self.slots[f].links.len() {
                    let l = self.slots[f].links[li] as usize;
                    if self.link_mark[l] != stamp {
                        self.link_mark[l] = stamp;
                        self.link_local[l] = (links.len() - ls) as u32;
                        links.push(l as u32);
                        for gi in 0..self.link_flows[l].len() {
                            let g = self.link_flows[l][gi] as usize;
                            if self.flow_mark[g] != stamp {
                                self.flow_mark[g] = stamp;
                                self.flow_local[g] = (members.len() - ms) as u32;
                                members.push(g as u32);
                            }
                        }
                    }
                }
            }
            comps.push((ms, members.len(), ls, links.len()));
        }
        self.solved_flows += members.len() as u64;

        // Components are link-disjoint, so solving them in parallel
        // shares no state; the spawn gate only avoids thread overhead on
        // small refills (rates are identical either way).
        let jobs = self.parallel.min(comps.len()).max(1);
        if jobs > 1 && members.len() >= 64 {
            let (slots, link_flows, capacities) = (&self.slots, &self.link_flows, &self.capacities);
            let (flow_local, link_local) = (&self.flow_local, &self.link_local);
            let (members_ref, links_ref, comps_ref) = (&members, &links, &comps);
            let solved: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..jobs)
                    .map(|tid| {
                        s.spawn(move || {
                            comps_ref
                                .iter()
                                .enumerate()
                                .filter(|(ci, _)| ci % jobs == tid)
                                .map(|(ci, &(ms, me, ls, le))| {
                                    (
                                        ci,
                                        solve_component(
                                            slots,
                                            link_flows,
                                            capacities,
                                            flow_local,
                                            link_local,
                                            &members_ref[ms..me],
                                            &links_ref[ls..le],
                                        ),
                                    )
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("component solver thread"))
                    .collect()
            });
            // Deterministic merge: ascending component index. The slots
            // are disjoint, so this fixes presentation order only.
            let mut per_comp: Vec<Option<Vec<f64>>> = vec![None; comps.len()];
            for (ci, out) in solved.into_iter().flatten() {
                per_comp[ci] = Some(out);
            }
            for (ci, &(ms, me, _, _)) in comps.iter().enumerate() {
                let out = per_comp[ci].take().expect("every component solved");
                for (&f, r) in members[ms..me].iter().zip(out) {
                    self.rates[f as usize] = r;
                }
            }
        } else {
            for &(ms, me, ls, le) in &comps {
                let out = solve_component(
                    &self.slots,
                    &self.link_flows,
                    &self.capacities,
                    &self.flow_local,
                    &self.link_local,
                    &members[ms..me],
                    &links[ls..le],
                );
                for (&f, &r) in members[ms..me].iter().zip(&out) {
                    self.rates[f as usize] = r;
                }
            }
        }
    }
}

/// Weighted progressive filling over one link-connected component.
/// `flow_local` / `link_local` map global ids to component-relative
/// indices (valid for every member/link of this component); returns the
/// per-member rate of each entry, indexed like `members`.
///
/// The arithmetic is [`max_min_rates`]'s exactly, with each weight-`w`
/// entry standing for `w` interleaved member freezes (see the module's
/// weighted-entries section for why that is bit-identical).
fn solve_component(
    slots: &[FlowSlot],
    link_flows: &[Vec<u32>],
    capacities: &[f64],
    flow_local: &[u32],
    link_local: &[u32],
    members: &[u32],
    comp_links: &[u32],
) -> Vec<f64> {
    let mut remaining: Vec<f64> = comp_links.iter().map(|&l| capacities[l as usize]).collect();
    // All entries crossing a component link are members by closure, so
    // the unfrozen count starts at the full member (weight) total.
    let mut unfrozen: Vec<u32> = comp_links
        .iter()
        .map(|&l| {
            link_flows[l as usize]
                .iter()
                .map(|&f| slots[f as usize].weight)
                .sum()
        })
        .collect();
    let mut frozen: Vec<bool> = vec![false; members.len()];
    let mut out: Vec<f64> = vec![0.0; members.len()];

    loop {
        // Bottleneck: smallest share; ties break on the smallest global
        // link id, exactly like the full solver's ascending link scan.
        let mut best: Option<(f64, u32, usize)> = None;
        for (j, (&count, &global)) in unfrozen.iter().zip(comp_links).enumerate() {
            if count == 0 {
                continue;
            }
            let share = (remaining[j] / f64::from(count)).max(0.0);
            match best {
                Some((s, g, _)) if s < share || (s == share && g < global) => {}
                _ => best = Some((share, global, j)),
            }
        }
        let Some((share, _, bottleneck)) = best else {
            break;
        };
        for &f in &link_flows[comp_links[bottleneck] as usize] {
            let local = flow_local[f as usize] as usize;
            if frozen[local] {
                continue;
            }
            frozen[local] = true;
            out[local] = share;
            let w = slots[f as usize].weight;
            for &l in &slots[f as usize].links {
                let lj = link_local[l as usize] as usize;
                unfrozen[lj] -= w;
                if unfrozen[lj] == 0 {
                    // This freeze emptied the link: its `remaining` is
                    // never read again, so the member-wise drain below
                    // would be dead work — O(links), not O(members).
                    continue;
                }
                // The member-wise rounding sequence, one literal
                // subtract-and-clamp per member crossing.
                let mut rem = remaining[lj];
                for _ in 0..w {
                    rem = (rem - share).max(0.0);
                }
                remaining[lj] = rem;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + b.abs())
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = max_min_rates(&[vec![0, 1]], &[5.0, 3.0], 100.0);
        assert!(close(rates[0], 3.0));
    }

    #[test]
    fn equal_flows_split_evenly() {
        let rates = max_min_rates(&[vec![0], vec![0], vec![0], vec![0]], &[8.0], 100.0);
        assert!(rates.iter().all(|&r| close(r, 2.0)));
    }

    #[test]
    fn classic_three_flow_example() {
        // Links: A (cap 10), B (cap 10).
        // f0: A; f1: A,B; f2: B.
        // Max-min: f1 = 5 (both links), f0 = 5, f2 = 5.
        let rates = max_min_rates(&[vec![0], vec![0, 1], vec![1]], &[10.0, 10.0], 100.0);
        assert!(rates.iter().all(|&r| close(r, 5.0)), "{rates:?}");
    }

    #[test]
    fn slack_reallocation() {
        // f0 bottlenecked at 1 on link 1; f1 then gets 9 on link 0.
        let rates = max_min_rates(&[vec![0, 1], vec![0]], &[10.0, 1.0], 100.0);
        assert!(close(rates[0], 1.0));
        assert!(close(rates[1], 9.0));
    }

    #[test]
    fn local_flows_bypass_links() {
        let rates = max_min_rates(&[vec![], vec![0]], &[4.0], 77.0);
        assert!(close(rates[0], 77.0));
        assert!(close(rates[1], 4.0));
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[1.0], 1.0).is_empty());
    }

    #[test]
    fn set_capacity_rescales_only_the_affected_component() {
        // Two links, two isolated flows. Degrading link 0 must re-rate
        // its flow and leave the other component untouched, on both the
        // incremental and the dense-oracle paths.
        for full in [false, true] {
            let mut state = FairShareState::new(vec![10.0, 6.0], 100.0).with_full_recompute(full);
            let f0 = state.insert_flow(&[0]);
            let f1 = state.insert_flow(&[1]);
            assert!(close(state.rate(f0), 10.0));
            assert!(close(state.rate(f1), 6.0));
            state.set_capacity(0, 2.5);
            assert!(close(state.rate(f0), 2.5), "full={full}");
            assert!(close(state.rate(f1), 6.0), "full={full}");
            // Repair restores the original allocation.
            state.set_capacity(0, 10.0);
            assert!(close(state.rate(f0), 10.0), "full={full}");
        }
    }

    #[test]
    fn set_capacity_on_an_empty_link_is_pure_bookkeeping() {
        let mut state = FairShareState::new(vec![10.0, 6.0], 100.0);
        let f0 = state.insert_flow(&[0]);
        let solves_before = state.solves();
        state.set_capacity(1, 1.0);
        assert_eq!(state.solves(), solves_before, "no flows, no re-solve");
        // The new capacity still takes effect for later arrivals.
        let f1 = state.insert_flow(&[1]);
        assert!(close(state.rate(f1), 1.0));
        assert!(close(state.rate(f0), 10.0));
    }

    #[test]
    fn flow_crossing_a_link_twice_charged_twice() {
        // A degenerate path listing link 0 twice consumes double capacity
        // but must not be frozen twice (regression caught by proptest).
        let rates = max_min_rates(&[vec![0, 0], vec![0]], &[9.0], 100.0);
        // Bottleneck share: 9 / 3 slots = 3; flow 0 holds two slots.
        assert!(close(rates[0], 3.0), "{rates:?}");
        assert!(close(rates[1], 3.0) || rates[1] > 3.0, "{rates:?}");
        let used = 2.0 * rates[0] + rates[1];
        assert!(used <= 9.0 + 1e-9, "over capacity: {used}");
    }

    #[test]
    fn allocation_respects_capacities() {
        // Random-ish mesh: verify sum of rates on every link <= capacity.
        let flows = vec![
            vec![0, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![0],
            vec![3],
        ];
        let caps = [10.0, 7.0, 4.0, 6.0];
        let rates = max_min_rates(&flows, &caps, 100.0);
        let mut used = [0.0f64; 4];
        for (i, links) in flows.iter().enumerate() {
            assert!(rates[i] > 0.0, "flow {i} starved");
            for &l in links {
                used[l as usize] += rates[i];
            }
        }
        for (l, &u) in used.iter().enumerate() {
            assert!(u <= caps[l] + 1e-9, "link {l} over capacity: {u}");
        }
    }

    /// Drives a state and a from-scratch shadow in lockstep, asserting
    /// bitwise-equal rates after every mutation.
    fn assert_state_tracks_full(caps: &[f64], script: &[(bool, Vec<u32>)]) {
        let mut state = FairShareState::new(caps.to_vec(), 1e10);
        let mut alive: Vec<(FairFlowId, Vec<u32>)> = Vec::new();
        for (step, (remove, links)) in script.iter().enumerate() {
            if *remove && !alive.is_empty() {
                let (id, _) =
                    alive.remove(links.first().copied().unwrap_or(0) as usize % alive.len());
                state.remove_flow(id);
            } else {
                let id = state.insert_flow(links);
                alive.push((id, links.clone()));
            }
            let shadow: Vec<Vec<u32>> = alive.iter().map(|(_, l)| l.clone()).collect();
            let expect = max_min_rates(&shadow, caps, 1e10);
            for ((id, _), want) in alive.iter().zip(&expect) {
                let got = state.rate(*id);
                assert!(
                    got == *want,
                    "step {step}: flow {id:?} rate {got} != full recompute {want}"
                );
            }
        }
    }

    #[test]
    fn state_matches_full_on_mixed_script() {
        let caps = [10.0, 7.0, 4.0, 6.0, 9.0, 2.0];
        let script = vec![
            (false, vec![0, 2]),
            (false, vec![0, 3]),
            (false, vec![]), // local flow
            (false, vec![1, 4]),
            (false, vec![5, 5]),    // crosses link 5 twice
            (false, vec![1, 2, 3]), // merges two components
            (true, vec![1]),
            (false, vec![4]),
            (true, vec![0]),
            (true, vec![2]),
            (false, vec![0, 1, 2, 3, 4, 5]),
            (true, vec![0]),
            (true, vec![0]),
            (true, vec![0]),
        ];
        assert_state_tracks_full(&caps, &script);
    }

    #[test]
    fn state_matches_full_under_forced_full_recompute() {
        let caps = [8.0, 3.0];
        let mut state = FairShareState::new(caps.to_vec(), 50.0).with_full_recompute(true);
        let a = state.insert_flow(&[0]);
        let b = state.insert_flow(&[0, 1]);
        let full = max_min_rates(&[vec![0], vec![0, 1]], &caps, 50.0);
        assert_eq!(state.rate(a), full[0]);
        assert_eq!(state.rate(b), full[1]);
        assert!(state.dense_solves() >= 2, "forced path is always dense");
    }

    #[test]
    fn state_reuses_slots_and_tracks_active() {
        let mut state = FairShareState::new(vec![5.0], 1.0);
        let a = state.insert_flow(&[0]);
        assert_eq!(state.active_flows(), 1);
        state.remove_flow(a);
        assert_eq!(state.active_flows(), 0);
        let b = state.insert_flow(&[0]);
        assert_eq!(b, a, "freed slot is recycled");
        assert_eq!(state.rates(), vec![(b, 5.0)]);
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn state_rejects_stale_handles() {
        let mut state = FairShareState::new(vec![5.0], 1.0);
        let a = state.insert_flow(&[0]);
        state.remove_flow(a);
        state.remove_flow(a);
    }

    #[test]
    fn local_flows_are_singleton_components() {
        let mut state = FairShareState::new(vec![4.0], 77.0);
        let a = state.insert_flow(&[]);
        let b = state.insert_flow(&[0]);
        assert_eq!(state.rate(a), 77.0);
        assert_eq!(state.rate(b), 4.0);
        let solves = state.solves();
        state.remove_flow(a); // no links: nothing to re-solve
        assert_eq!(state.solves(), solves);
        assert_eq!(state.rate(b), 4.0);
    }

    #[test]
    fn disjoint_components_do_not_resolve_each_other() {
        // Two independent links: mutating one side must not re-solve the
        // other (solved_flows counts rate writes).
        let mut state = FairShareState::new(vec![10.0, 10.0], 1e10);
        let _left = state.insert_flow(&[0]);
        let before = state.solved_flows();
        let right = state.insert_flow(&[1]);
        assert_eq!(
            state.solved_flows() - before,
            1,
            "inserting into an empty link touches one flow"
        );
        state.remove_flow(right);
        assert_eq!(
            state.solved_flows() - before,
            1,
            "removal left no neighbours"
        );
    }

    #[test]
    fn is_max_min_fair_no_flow_can_grow() {
        // A flow could only grow by taking from an equal-or-smaller flow
        // on some saturated link. Verify each flow has a saturated link
        // where it is among the largest.
        let flows = vec![vec![0, 1], vec![1], vec![0], vec![1, 2]];
        let caps = [6.0, 9.0, 2.0];
        let rates = max_min_rates(&flows, &caps, 100.0);
        let mut used = [0.0f64; 3];
        for (i, links) in flows.iter().enumerate() {
            for &l in links {
                used[l as usize] += rates[i];
            }
        }
        for (i, links) in flows.iter().enumerate() {
            let has_tight_link = links.iter().any(|&l| {
                let saturated = used[l as usize] >= caps[l as usize] - 1e-9;
                let is_max = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, ls)| ls.contains(&l))
                    .all(|(j, _)| rates[j] <= rates[i] + 1e-9);
                saturated && is_max
            });
            assert!(has_tight_link, "flow {i} could grow: {rates:?}");
        }
    }

    /// Builds one state from weighted bundles and one from the same
    /// members inserted individually, asserting bitwise-equal per-member
    /// rates for every bundle.
    fn assert_weighted_matches_singletons(caps: &[f64], bundles: &[(Vec<u32>, u32)]) {
        for full in [false, true] {
            let mut grouped = FairShareState::new(caps.to_vec(), 1e10).with_full_recompute(full);
            let mut single = FairShareState::new(caps.to_vec(), 1e10).with_full_recompute(full);
            let mut gids = Vec::new();
            let mut sids = Vec::new();
            for (links, w) in bundles {
                gids.push(grouped.insert_weighted(links, *w));
                sids.push(
                    (0..*w)
                        .map(|_| single.insert_flow(links))
                        .collect::<Vec<_>>(),
                );
            }
            for (bi, (gid, members)) in gids.iter().zip(&sids).enumerate() {
                let want = single.rate(members[0]);
                for &m in members {
                    assert!(
                        single.rate(m) == want,
                        "bundle {bi} members diverge (full={full})"
                    );
                }
                assert!(
                    grouped.rate(*gid) == want,
                    "bundle {bi}: grouped {} != singleton {} (full={full})",
                    grouped.rate(*gid),
                    want
                );
            }
        }
    }

    #[test]
    fn weighted_entries_match_singleton_members() {
        assert_weighted_matches_singletons(
            &[10.0, 7.0, 4.0, 6.0],
            &[
                (vec![0, 2], 3),
                (vec![0, 3], 1),
                (vec![1, 2], 5),
                (vec![3], 2),
                (vec![0, 0], 2), // crosses link 0 twice
                (vec![], 4),     // local bundle
            ],
        );
    }

    #[test]
    fn weight_mutation_matches_member_churn() {
        // add_weight / sub_weight track individual insert/remove exactly.
        let caps = [9.0, 5.0];
        let mut grouped = FairShareState::new(caps.to_vec(), 1e10);
        let mut single = FairShareState::new(caps.to_vec(), 1e10);
        let b = grouped.insert_weighted(&[0, 1], 2);
        let mut members = vec![single.insert_flow(&[0, 1]), single.insert_flow(&[0, 1])];
        let lone_g = grouped.insert_flow(&[0]);
        let lone_s = single.insert_flow(&[0]);
        assert_eq!(grouped.rate(b), single.rate(members[0]));
        assert_eq!(grouped.rate(lone_g), single.rate(lone_s));

        grouped.add_weight(b, 3);
        for _ in 0..3 {
            members.push(single.insert_flow(&[0, 1]));
        }
        assert_eq!(grouped.weight(b), 5);
        assert_eq!(grouped.active_flows(), 6);
        assert_eq!(grouped.rate(b), single.rate(members[0]));
        assert_eq!(grouped.rate(lone_g), single.rate(lone_s));

        grouped.sub_weight(b, 4);
        for m in members.drain(1..) {
            single.remove_flow(m);
        }
        assert_eq!(grouped.rate(b), single.rate(members[0]));
        assert_eq!(grouped.rate(lone_g), single.rate(lone_s));

        // The last member retires the entry.
        grouped.remove_flow(b);
        single.remove_flow(members[0]);
        assert_eq!(grouped.rate(lone_g), single.rate(lone_s));
        assert_eq!(grouped.active_flows(), 1);
    }

    #[test]
    #[should_panic(expected = "must leave at least one")]
    fn sub_weight_rejects_emptying_the_entry() {
        let mut state = FairShareState::new(vec![5.0], 1.0);
        let b = state.insert_weighted(&[0], 2);
        state.sub_weight(b, 2);
    }

    #[test]
    fn parallel_dense_solve_is_bit_identical() {
        // Many disjoint components, forced through the dense path at
        // widths 1 and 8: identical rates, bit for bit.
        let n_links = 40usize;
        let caps: Vec<f64> = (0..n_links).map(|l| 1e9 + l as f64 * 3.7e7).collect();
        let build = |jobs: usize| {
            let mut state = FairShareState::new(caps.clone(), 1e10)
                .with_full_recompute(true)
                .with_parallel(jobs);
            let mut ids = Vec::new();
            for i in 0..128u32 {
                let l = (i as usize * 7) % n_links;
                let links = if i % 3 == 0 {
                    vec![l as u32, ((l + 1) % n_links) as u32]
                } else {
                    vec![l as u32]
                };
                ids.push(state.insert_weighted(&links, 1 + i % 4));
            }
            ids.iter().map(|&id| state.rate(id)).collect::<Vec<f64>>()
        };
        let seq = build(1);
        let par = build(8);
        assert!(
            seq.iter().zip(&par).all(|(a, b)| a == b),
            "parallel dense solve diverged"
        );
    }
}
