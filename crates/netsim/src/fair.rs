//! Max-min fair bandwidth allocation.
//!
//! The fluid abstraction of TCP used by flow-level simulators: at any
//! instant, active flows receive the max-min fair allocation over the
//! links they traverse, computed by progressive filling. This is the
//! bandwidth-sharing model under which the replay experiments run.

/// Computes max-min fair rates (bits/s) for a set of flows.
///
/// `flow_links[i]` lists the directed link indices flow `i` traverses
/// (an empty list means the flow never leaves its host and is allocated
/// `local_bps`). `capacities[l]` is link `l`'s capacity in bits/s.
///
/// Runs progressive filling: repeatedly find the most-constrained link
/// (smallest capacity share per unfrozen flow), freeze its flows at that
/// share, remove the consumed capacity, and continue until every flow is
/// frozen.
///
/// # Panics
///
/// Panics in debug builds if a flow references an out-of-range link.
///
/// # Examples
///
/// ```
/// use keddah_netsim::fair::max_min_rates;
///
/// // Two flows share link 0 (10 bps); flow 1 also crosses link 1 (2 bps).
/// let rates = max_min_rates(&[vec![0], vec![0, 1]], &[10.0, 2.0], 100.0);
/// assert!((rates[1] - 2.0).abs() < 1e-9); // bottlenecked on link 1
/// assert!((rates[0] - 8.0).abs() < 1e-9); // picks up the slack
/// ```
#[must_use]
pub fn max_min_rates(flow_links: &[Vec<u32>], capacities: &[f64], local_bps: f64) -> Vec<f64> {
    let n = flow_links.len();
    let mut rates = vec![0.0f64; n];
    if n == 0 {
        return rates;
    }
    let mut frozen = vec![false; n];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Flows on each link, and per-link unfrozen counts.
    let mut link_flows: Vec<Vec<u32>> = vec![Vec::new(); capacities.len()];
    for (i, links) in flow_links.iter().enumerate() {
        for &l in links {
            debug_assert!((l as usize) < capacities.len(), "link out of range");
            link_flows[l as usize].push(i as u32);
        }
        if links.is_empty() {
            rates[i] = local_bps;
            frozen[i] = true;
        }
    }
    let mut unfrozen_on: Vec<u32> = link_flows
        .iter()
        .enumerate()
        .map(|(l, flows)| {
            let _ = l;
            flows.iter().filter(|&&f| !frozen[f as usize]).count() as u32
        })
        .collect();

    loop {
        // Find the bottleneck link: smallest fair share among links with
        // unfrozen flows.
        let mut best: Option<(usize, f64)> = None;
        for (l, &count) in unfrozen_on.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let share = (remaining[l] / count as f64).max(0.0);
            match best {
                Some((_, s)) if s <= share => {}
                _ => best = Some((l, share)),
            }
        }
        let Some((bottleneck, share)) = best else {
            break; // all flows frozen
        };
        // Freeze every unfrozen flow crossing the bottleneck at `share`,
        // and charge that rate to every link each flow crosses.
        let flows_here: Vec<u32> = link_flows[bottleneck]
            .iter()
            .copied()
            .filter(|&f| !frozen[f as usize])
            .collect();
        for f in flows_here {
            if frozen[f as usize] {
                // A flow that crosses the bottleneck twice appears twice
                // in the collected list; freeze it only once.
                continue;
            }
            frozen[f as usize] = true;
            rates[f as usize] = share;
            for &l in &flow_links[f as usize] {
                remaining[l as usize] = (remaining[l as usize] - share).max(0.0);
                unfrozen_on[l as usize] -= 1;
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + b.abs())
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let rates = max_min_rates(&[vec![0, 1]], &[5.0, 3.0], 100.0);
        assert!(close(rates[0], 3.0));
    }

    #[test]
    fn equal_flows_split_evenly() {
        let rates = max_min_rates(&[vec![0], vec![0], vec![0], vec![0]], &[8.0], 100.0);
        assert!(rates.iter().all(|&r| close(r, 2.0)));
    }

    #[test]
    fn classic_three_flow_example() {
        // Links: A (cap 10), B (cap 10).
        // f0: A; f1: A,B; f2: B.
        // Max-min: f1 = 5 (both links), f0 = 5, f2 = 5.
        let rates = max_min_rates(&[vec![0], vec![0, 1], vec![1]], &[10.0, 10.0], 100.0);
        assert!(rates.iter().all(|&r| close(r, 5.0)), "{rates:?}");
    }

    #[test]
    fn slack_reallocation() {
        // f0 bottlenecked at 1 on link 1; f1 then gets 9 on link 0.
        let rates = max_min_rates(&[vec![0, 1], vec![0]], &[10.0, 1.0], 100.0);
        assert!(close(rates[0], 1.0));
        assert!(close(rates[1], 9.0));
    }

    #[test]
    fn local_flows_bypass_links() {
        let rates = max_min_rates(&[vec![], vec![0]], &[4.0], 77.0);
        assert!(close(rates[0], 77.0));
        assert!(close(rates[1], 4.0));
    }

    #[test]
    fn empty_input() {
        assert!(max_min_rates(&[], &[1.0], 1.0).is_empty());
    }

    #[test]
    fn flow_crossing_a_link_twice_charged_twice() {
        // A degenerate path listing link 0 twice consumes double capacity
        // but must not be frozen twice (regression caught by proptest).
        let rates = max_min_rates(&[vec![0, 0], vec![0]], &[9.0], 100.0);
        // Bottleneck share: 9 / 3 slots = 3; flow 0 holds two slots.
        assert!(close(rates[0], 3.0), "{rates:?}");
        assert!(close(rates[1], 3.0) || rates[1] > 3.0, "{rates:?}");
        let used = 2.0 * rates[0] + rates[1];
        assert!(used <= 9.0 + 1e-9, "over capacity: {used}");
    }

    #[test]
    fn allocation_respects_capacities() {
        // Random-ish mesh: verify sum of rates on every link <= capacity.
        let flows = vec![
            vec![0, 2],
            vec![0, 3],
            vec![1, 2],
            vec![1, 3],
            vec![0],
            vec![3],
        ];
        let caps = [10.0, 7.0, 4.0, 6.0];
        let rates = max_min_rates(&flows, &caps, 100.0);
        let mut used = [0.0f64; 4];
        for (i, links) in flows.iter().enumerate() {
            assert!(rates[i] > 0.0, "flow {i} starved");
            for &l in links {
                used[l as usize] += rates[i];
            }
        }
        for (l, &u) in used.iter().enumerate() {
            assert!(u <= caps[l] + 1e-9, "link {l} over capacity: {u}");
        }
    }

    #[test]
    fn is_max_min_fair_no_flow_can_grow() {
        // A flow could only grow by taking from an equal-or-smaller flow
        // on some saturated link. Verify each flow has a saturated link
        // where it is among the largest.
        let flows = vec![vec![0, 1], vec![1], vec![0], vec![1, 2]];
        let caps = [6.0, 9.0, 2.0];
        let rates = max_min_rates(&flows, &caps, 100.0);
        let mut used = [0.0f64; 3];
        for (i, links) in flows.iter().enumerate() {
            for &l in links {
                used[l as usize] += rates[i];
            }
        }
        for (i, links) in flows.iter().enumerate() {
            let has_tight_link = links.iter().any(|&l| {
                let saturated = used[l as usize] >= caps[l as usize] - 1e-9;
                let is_max = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, ls)| ls.contains(&l))
                    .all(|(j, _)| rates[j] <= rates[i] + 1e-9);
                saturated && is_max
            });
            assert!(has_tight_link, "flow {i} could grow: {rates:?}");
        }
    }
}
