//! Round-based TCP window simulation — a second fidelity level.
//!
//! The fluid max-min model ([`crate::simulate`]) assumes every flow is
//! instantly at its fair share; real TCP ramps through slow start and
//! oscillates under AIMD. This module simulates that dynamics at
//! RTT-round granularity: each round, every active flow offers one
//! congestion window of data; links deliver proportionally when
//! oversubscribed; flows that crossed a congested link halve their
//! window, the rest grow (doubling in slow start, +1 MSS in avoidance).
//!
//! It costs one pass per RTT, so it suits medium-horizon studies and
//! fidelity ablations against the fluid model rather than hour-long
//! replays.

use keddah_des::{Duration, SimTime};

use crate::routing::RouteCache;
use crate::sim::{FlowResult, FlowSpec, SimReport};
use crate::topology::Topology;

/// Knobs for the TCP round simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpOptions {
    /// Round-trip time; also the simulation step.
    pub rtt: Duration,
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Initial congestion window, in segments (RFC 6928 default of 10).
    pub init_cwnd: u64,
    /// Initial slow-start threshold, in segments.
    pub init_ssthresh: u64,
    /// Switch buffering, as a multiple of the per-round link budget:
    /// loss (window halving) only triggers once offered load exceeds
    /// `capacity * rtt * (1 + buffer_factor)`. Zero models bufferless
    /// links and produces the classic 75%-utilisation sawtooth even for
    /// a lone flow.
    pub buffer_factor: f64,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            rtt: Duration::from_micros(250),
            mss: 1448,
            init_cwnd: 10,
            init_ssthresh: 512,
            buffer_factor: 1.0,
        }
    }
}

struct TcpFlow {
    idx: usize,
    remaining: f64, // bytes
    links: Vec<u32>,
    cwnd: f64,     // segments
    ssthresh: f64, // segments
}

/// Simulates `flows` with round-based TCP dynamics over `topo`.
///
/// Results preserve input order; completion times have RTT granularity.
///
/// # Panics
///
/// Panics if a flow references a host outside the topology, or if
/// `options` contains zero values.
///
/// # Examples
///
/// ```
/// use keddah_des::SimTime;
/// use keddah_netsim::{simulate_tcp, FlowSpec, HostId, TcpOptions, Topology};
///
/// let topo = Topology::star(2, 1e9);
/// let flows = vec![FlowSpec {
///     src: HostId(0),
///     dst: HostId(1),
///     bytes: 10 << 20,
///     start: SimTime::ZERO,
///     tag: 0,
/// }];
/// let report = simulate_tcp(&topo, &flows, TcpOptions::default());
/// // 10 MiB at ~1 Gb/s plus the slow-start ramp: well under a second.
/// assert!(report.results[0].fct().as_secs_f64() < 0.5);
/// ```
#[must_use]
pub fn simulate_tcp(topo: &Topology, flows: &[FlowSpec], options: TcpOptions) -> SimReport {
    assert!(!options.rtt.is_zero(), "rtt must be positive");
    assert!(
        options.mss > 0 && options.init_cwnd > 0 && options.init_ssthresh > 0,
        "TCP parameters must be positive"
    );
    let rtt = options.rtt.as_secs_f64();
    let mss = options.mss as f64;
    // Link budget per round, in bytes.
    let budgets: Vec<f64> = topo
        .links()
        .iter()
        .map(|l| l.capacity_bps / 8.0 * rtt)
        .collect();

    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by_key(|&i| flows[i].start);

    let mut router = RouteCache::new(topo);
    let mut results: Vec<Option<FlowResult>> = vec![None; flows.len()];
    let mut link_bytes = vec![0u64; budgets.len()];
    let mut active: Vec<TcpFlow> = Vec::new();
    let mut next = 0usize;
    let mut peak_active = 0usize;
    let mut round: u64 = 0;

    // Start at the first arrival's round (rounded up so the round's
    // start time is not before the arrival).
    if let Some(&first) = order.first() {
        round = (flows[first].start.as_secs_f64() / rtt).ceil() as u64;
    }

    let mut demand = vec![0.0f64; budgets.len()];
    loop {
        let t = round as f64 * rtt;
        // Admit arrivals that have started by the beginning of the round.
        while next < order.len() && flows[order[next]].start.as_secs_f64() <= t {
            let idx = order[next];
            next += 1;
            let spec = flows[idx];
            let links: Vec<u32> = router
                .route(spec.src, spec.dst, idx as u64)
                .into_iter()
                .map(|l| l.0)
                .collect();
            active.push(TcpFlow {
                idx,
                remaining: spec.bytes as f64,
                links,
                cwnd: options.init_cwnd as f64,
                ssthresh: options.init_ssthresh as f64,
            });
        }
        peak_active = peak_active.max(active.len());

        if active.is_empty() {
            match order.get(next) {
                // Jump the clock to the next arrival, always making
                // progress (a floor here would revisit the same round
                // forever when the arrival is mid-round).
                Some(&i) => {
                    let target = (flows[i].start.as_secs_f64() / rtt).ceil() as u64;
                    round = target.max(round + 1).max(round);
                    continue;
                }
                None => break,
            }
        }

        // Offered load per link this round.
        demand.fill(0.0);
        let offers: Vec<f64> = active
            .iter()
            .map(|f| (f.cwnd * mss).min(f.remaining).max(mss.min(f.remaining)))
            .collect();
        for (f, &offer) in active.iter().zip(&offers) {
            for &l in &f.links {
                demand[l as usize] += offer;
            }
        }
        // Per-link delivery scale (capacity cap) and loss indicator
        // (buffer overflow).
        let scale: Vec<f64> = demand
            .iter()
            .zip(&budgets)
            .map(|(&d, &b)| if d <= b { 1.0 } else { b / d })
            .collect();
        let lossy: Vec<bool> = demand
            .iter()
            .zip(&budgets)
            .map(|(&d, &b)| d > b * (1.0 + options.buffer_factor))
            .collect();

        // Deliver, adjust windows, retire completions.
        let finish_time = SimTime::from_secs_f64((round + 1) as f64 * rtt);
        let mut i = 0;
        while i < active.len() {
            let offer = offers[i];
            let f = &mut active[i];
            let mut flow_scale = 1.0f64;
            let mut saw_loss = false;
            for &l in &f.links {
                flow_scale = flow_scale.min(scale[l as usize]);
                saw_loss |= lossy[l as usize];
            }
            let delivered = offer * flow_scale;
            for &l in &f.links {
                link_bytes[l as usize] += delivered as u64;
            }
            f.remaining -= delivered;
            if f.remaining <= 0.5 {
                results[f.idx] = Some(FlowResult {
                    spec: flows[f.idx],
                    finish: finish_time,
                });
                active.swap_remove(i);
                continue;
            }
            if saw_loss {
                // Congestion: multiplicative decrease.
                f.ssthresh = (f.cwnd / 2.0).max(2.0);
                f.cwnd = f.ssthresh;
            } else if f.cwnd < f.ssthresh {
                f.cwnd *= 2.0; // slow start
            } else {
                f.cwnd += 1.0; // congestion avoidance
            }
            i += 1;
        }
        round += 1;
    }

    SimReport {
        results: results
            .into_iter()
            .map(|r| r.expect("every flow completes"))
            .collect(),
        link_bytes,
        peak_active,
        // Each simulated RTT round is one event of this stepped model.
        events: round,
        faults: crate::sim::FaultStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use crate::topology::HostId;

    fn flow(src: u32, dst: u32, bytes: u64, start_ms: u64) -> FlowSpec {
        FlowSpec {
            src: HostId(src),
            dst: HostId(dst),
            bytes,
            start: SimTime::from_millis(start_ms),
            tag: 0,
        }
    }

    #[test]
    fn lone_elephant_approaches_line_rate() {
        let topo = Topology::star(2, 1e9);
        let report = simulate_tcp(&topo, &[flow(0, 1, 125_000_000, 0)], TcpOptions::default());
        let fct = report.results[0].fct().as_secs_f64();
        // Ideal is 1.0 s; slow-start ramp costs a little.
        assert!((1.0..1.2).contains(&fct), "fct = {fct}");
    }

    #[test]
    fn mouse_pays_the_slow_start_ramp() {
        let topo = Topology::star(2, 1e9);
        let opts = TcpOptions::default();
        let bytes = 100 * opts.mss; // 100 segments
        let report = simulate_tcp(&topo, &[flow(0, 1, bytes, 0)], opts);
        let rounds = report.results[0].fct().as_secs_f64() / opts.rtt.as_secs_f64();
        // cwnd 10 -> 20 -> 40 -> 80 -> done: ~4 rounds, far more than the
        // sub-round a fluid model would charge.
        assert!((3.0..=6.0).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn sharing_flows_converge_to_fair_shares() {
        let topo = Topology::star(3, 1e9);
        let flows = [flow(0, 2, 62_500_000, 0), flow(1, 2, 62_500_000, 0)];
        let report = simulate_tcp(&topo, &flows, TcpOptions::default());
        // 125 MB total through a 1 Gb/s downlink: ideal 1.0 s.
        for r in &report.results {
            let fct = r.fct().as_secs_f64();
            assert!((0.8..1.6).contains(&fct), "fct = {fct}");
        }
    }

    #[test]
    fn tcp_is_slower_than_fluid_for_short_flows() {
        // The fidelity gap the module exists to expose.
        let topo = Topology::star(3, 1e9);
        let flows: Vec<FlowSpec> = (0..8).map(|i| flow(i % 2, 2, 200_000, 0)).collect();
        let tcp = simulate_tcp(&topo, &flows, TcpOptions::default());
        let fluid = simulate(&topo, &flows, SimOptions::default());
        let mean = |r: &SimReport| r.fcts().iter().sum::<f64>() / r.results.len() as f64;
        assert!(
            mean(&tcp) > mean(&fluid),
            "tcp {} vs fluid {}",
            mean(&tcp),
            mean(&fluid)
        );
    }

    #[test]
    fn elephants_agree_with_fluid_within_tolerance() {
        let topo = Topology::star(4, 1e9);
        let flows = [
            flow(0, 3, 250_000_000, 0),
            flow(1, 3, 250_000_000, 0),
            flow(2, 3, 250_000_000, 0),
        ];
        let tcp = simulate_tcp(&topo, &flows, TcpOptions::default());
        let fluid = simulate(&topo, &flows, SimOptions::default());
        for (a, b) in tcp.results.iter().zip(&fluid.results) {
            let ta = a.fct().as_secs_f64();
            let tb = b.fct().as_secs_f64();
            assert!(
                (ta - tb).abs() / tb < 0.35,
                "tcp {ta} vs fluid {tb} diverged"
            );
        }
    }

    #[test]
    fn mid_round_first_arrival_does_not_hang() {
        // Regression: an arrival not aligned to an RTT boundary used to
        // pin the idle-jump to the same round forever.
        let topo = Topology::star(2, 1e9);
        let f = FlowSpec {
            src: HostId(0),
            dst: HostId(1),
            bytes: 5_000,
            start: SimTime::from_micros(333), // not a multiple of 250us
            tag: 0,
        };
        let report = simulate_tcp(&topo, &[f], TcpOptions::default());
        assert!(report.results[0].finish > f.start);
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let topo = Topology::star(2, 1e9);
        let flows = [flow(0, 1, 10_000, 0), flow(0, 1, 10_000, 60_000)];
        let report = simulate_tcp(&topo, &flows, TcpOptions::default());
        assert_eq!(report.results.len(), 2);
        assert!(report.results[1].finish > SimTime::from_secs(60));
    }

    #[test]
    fn deterministic() {
        let topo = Topology::leaf_spine(2, 2, 2, 1e9, 2.0);
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| flow(i % 4, (i + 1) % 4, 1 << 20, i as u64 * 3))
            .collect();
        let a = simulate_tcp(&topo, &flows, TcpOptions::default());
        let b = simulate_tcp(&topo, &flows, TcpOptions::default());
        assert_eq!(a.results, b.results);
    }

    #[test]
    #[should_panic(expected = "rtt must be positive")]
    fn zero_rtt_rejected() {
        let topo = Topology::star(2, 1e9);
        let opts = TcpOptions {
            rtt: Duration::ZERO,
            ..TcpOptions::default()
        };
        let _ = simulate_tcp(&topo, &[flow(0, 1, 1, 0)], opts);
    }
}
