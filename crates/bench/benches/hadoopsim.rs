//! Criterion benches for the Hadoop cluster simulator: capture
//! throughput vs cluster size and input size (the events/sec ablation
//! from DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keddah_hadoop::{run_job, ClusterSpec, HadoopConfig, JobSpec, Workload};
use std::hint::black_box;

fn bench_cluster_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("hadoop_sim/cluster_size");
    group.sample_size(10);
    for &(racks, per_rack) in &[(2u32, 4u32), (4, 5), (8, 8)] {
        let cluster = ClusterSpec::racks(racks, per_rack);
        let config = HadoopConfig::default();
        let job = JobSpec::new(Workload::TeraSort, 2 << 30);
        group.bench_with_input(
            BenchmarkId::from_parameter(racks * per_rack),
            &cluster,
            |b, cluster| b.iter(|| run_job(black_box(cluster), &config, &job, 1).trace.len()),
        );
    }
    group.finish();
}

fn bench_input_size(c: &mut Criterion) {
    let cluster = ClusterSpec::racks(4, 5);
    let config = HadoopConfig::default();
    let mut group = c.benchmark_group("hadoop_sim/input_gib");
    group.sample_size(10);
    for &gib in &[1u64, 4, 16] {
        let job = JobSpec::new(Workload::TeraSort, gib << 30);
        group.bench_with_input(BenchmarkId::from_parameter(gib), &job, |b, job| {
            b.iter(|| run_job(&cluster, &config, black_box(job), 1).trace.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_size, bench_input_size);
criterion_main!(benches);
