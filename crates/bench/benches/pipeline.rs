//! Criterion benches for the end-to-end Keddah pipeline stages:
//! capture → fit → generate.

use criterion::{criterion_group, criterion_main, Criterion};
use keddah_core::pipeline::Keddah;
use keddah_hadoop::{ClusterSpec, HadoopConfig, JobSpec, Workload};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let cluster = ClusterSpec::racks(2, 4);
    let config = HadoopConfig::default();
    let job = JobSpec::new(Workload::TeraSort, 1 << 30);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("capture_1gib", |b| {
        b.iter(|| Keddah::capture(&cluster, &config, black_box(&job), 1, 1))
    });

    let traces = Keddah::capture(&cluster, &config, &job, 5, 1);
    group.bench_function("fit_5_runs", |b| {
        b.iter(|| Keddah::fit(black_box(&traces)).expect("fits"))
    });

    let model = Keddah::fit(&traces).expect("fits");
    group.bench_function("generate_job", |b| {
        b.iter(|| black_box(&model).generate_job(7).flows.len())
    });

    group.bench_function("validate", |b| {
        b.iter(|| Keddah::validate(black_box(&model), &traces, 2, 3).expect("validates"))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
