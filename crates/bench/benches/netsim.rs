//! Criterion benches for the flow-level network simulator: max-min fair
//! re-convergence cost vs active flow count (the DESIGN.md ablation) and
//! end-to-end replay throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keddah_des::SimTime;
use keddah_netsim::fair::max_min_rates;
use keddah_netsim::{simulate, FlowSpec, HostId, SimOptions, Topology};
use std::hint::black_box;

/// Progressive-filling cost as the active flow set grows, on a fat-tree
/// with 4-hop paths.
fn bench_max_min(c: &mut Criterion) {
    let topo = Topology::fat_tree(8, 1e9); // 128 hosts
    let mut group = c.benchmark_group("max_min_rates");
    for &n in &[10usize, 100, 1_000] {
        let flow_links: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let src = HostId((i % 128) as u32);
                let dst = HostId(((i * 37 + 5) % 128) as u32);
                topo.route(src, dst, i as u64)
                    .into_iter()
                    .map(|l| l.0)
                    .collect()
            })
            .collect();
        let caps: Vec<f64> = (0..topo.link_count()).map(|_| 1e9).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &flow_links,
            |b, flow_links| b.iter(|| max_min_rates(black_box(flow_links), &caps, 10e9)),
        );
    }
    group.finish();
}

/// End-to-end fluid simulation of a shuffle-like all-to-few pattern.
fn bench_simulate(c: &mut Criterion) {
    let topo = Topology::leaf_spine(4, 8, 4, 1e9, 2.0);
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for &n in &[200usize, 2_000] {
        let flows: Vec<FlowSpec> = (0..n)
            .map(|i| FlowSpec {
                src: HostId((i % 32) as u32),
                dst: HostId(((i / 32) % 8) as u32),
                bytes: 4 << 20,
                start: SimTime::from_millis((i as u64) * 7),
                tag: 0,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &flows, |b, flows| {
            b.iter(|| simulate(&topo, black_box(flows), SimOptions::default()).makespan())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_min, bench_simulate);
criterion_main!(benches);
