//! Criterion benches for the statistical fitting pipeline, plus the
//! KS-vs-AIC model-selection ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keddah_stat::distributions::{Distribution, LogNormal, Weibull};
use keddah_stat::fit::{fit_all, fit_select, Candidate, Selection};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn draw(n: usize, seed: u64) -> Vec<f64> {
    let d = LogNormal::new(14.0, 0.8).expect("valid params");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

/// Full candidate sweep cost vs sample size.
fn bench_fit_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_all");
    for &n in &[100usize, 1_000, 10_000] {
        let xs = draw(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| fit_all(black_box(xs), Candidate::POSITIVE).expect("fits"))
        });
    }
    group.finish();
}

/// Single-family MLE costs (the Newton-iteration families are the
/// expensive ones).
fn bench_mle(c: &mut Criterion) {
    let xs = draw(5_000, 2);
    c.bench_function("mle/weibull_5000", |b| {
        b.iter(|| Weibull::fit_mle(black_box(&xs)).expect("fits"))
    });
    c.bench_function("mle/lognormal_5000", |b| {
        b.iter(|| LogNormal::fit_mle(black_box(&xs)).expect("fits"))
    });
}

/// Ablation: how often KS-based and AIC-based selection disagree, and
/// their relative cost. Disagreement rate is printed once; criterion
/// measures cost.
fn bench_selection_ablation(c: &mut Criterion) {
    // Report the disagreement rate across 50 mixed-truth samples.
    let mut disagreements = 0;
    for seed in 0..50u64 {
        let xs = if seed % 2 == 0 {
            draw(800, seed)
        } else {
            let d = Weibull::new(1.3, 2e6).expect("valid params");
            let mut rng = StdRng::seed_from_u64(seed);
            (0..800).map(|_| d.sample(&mut rng)).collect()
        };
        let by_ks = fit_select(&xs, Candidate::POSITIVE, Selection::KsStatistic).expect("fits");
        let by_aic = fit_select(&xs, Candidate::POSITIVE, Selection::Aic).expect("fits");
        if by_ks.dist.name() != by_aic.dist.name() {
            disagreements += 1;
        }
    }
    println!("[ablation] KS vs AIC selection disagreement: {disagreements}/50 samples");

    let xs = draw(1_000, 3);
    c.bench_function("selection/ks", |b| {
        b.iter(|| fit_select(black_box(&xs), Candidate::POSITIVE, Selection::KsStatistic))
    });
    c.bench_function("selection/aic", |b| {
        b.iter(|| fit_select(black_box(&xs), Candidate::POSITIVE, Selection::Aic))
    });
    c.bench_function("selection/anderson_darling", |b| {
        b.iter(|| {
            fit_select(
                black_box(&xs),
                Candidate::POSITIVE,
                Selection::AndersonDarling,
            )
        })
    });
}

criterion_group!(benches, bench_fit_all, bench_mle, bench_selection_ablation);
criterion_main!(benches);
