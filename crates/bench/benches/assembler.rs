//! Criterion benches for the capture substrate: flow assembly
//! throughput and the idle-timeout ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keddah_des::{Duration, SimTime};
use keddah_flowcap::{FlowAssembler, NodeId, PacketRecord};
use std::hint::black_box;

/// A synthetic packet stream: `flows` concurrent connections, 10
/// packets each, interleaved in time.
fn packet_stream(flows: u32) -> Vec<PacketRecord> {
    let mut packets = Vec::with_capacity(flows as usize * 10);
    for round in 0..10u64 {
        for f in 0..flows {
            let ts = SimTime::from_millis(round * 100 + (f as u64 % 97));
            let src = NodeId(f % 20);
            let dst = NodeId(20 + f % 10);
            let sp = 30_000 + (f % 30_000) as u16;
            let p = match round {
                0 => PacketRecord::syn(ts, src, sp, dst, 50_010, 128),
                9 => PacketRecord::fin(ts, src, sp, dst, 50_010, 0),
                _ => PacketRecord::data(ts, src, sp, dst, 50_010, 64_000),
            };
            packets.push(p);
        }
    }
    packets.sort_by_key(|p| p.ts);
    packets
}

fn bench_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_assembly");
    for &flows in &[100u32, 1_000, 10_000] {
        let packets = packet_stream(flows);
        group.bench_with_input(
            BenchmarkId::from_parameter(flows),
            &packets,
            |b, packets| {
                b.iter(|| {
                    let mut asm = FlowAssembler::new();
                    asm.extend(black_box(packets.iter().copied()));
                    asm.finish().len()
                })
            },
        );
    }
    group.finish();
}

/// Ablation: idle-timeout sensitivity. A stream with 2 s gaps between
/// packet bursts of the same 5-tuple: short timeouts split flows, long
/// ones merge them. Reports flow counts once, benches the extremes.
fn bench_timeout_ablation(c: &mut Criterion) {
    let mut packets = Vec::new();
    for burst in 0..50u64 {
        for f in 0..20u32 {
            let ts = SimTime::from_millis(burst * 2_000 + f as u64);
            packets.push(PacketRecord::data(
                ts,
                NodeId(f),
                40_000,
                NodeId(100),
                13_562,
                10_000,
            ));
        }
    }
    packets.sort_by_key(|p| p.ts);
    for timeout_s in [1u64, 5, 60] {
        let mut asm = FlowAssembler::with_idle_timeout(Duration::from_secs(timeout_s));
        asm.extend(packets.iter().copied());
        println!(
            "[ablation] idle timeout {timeout_s:>2}s -> {} flows",
            asm.finish().len()
        );
    }
    let mut group = c.benchmark_group("timeout_ablation");
    for &timeout_s in &[1u64, 60] {
        group.bench_with_input(
            BenchmarkId::from_parameter(timeout_s),
            &packets,
            |b, packets| {
                b.iter(|| {
                    let mut asm = FlowAssembler::with_idle_timeout(Duration::from_secs(timeout_s));
                    asm.extend(black_box(packets.iter().copied()));
                    asm.finish().len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_assembly, bench_timeout_ablation);
criterion_main!(benches);
