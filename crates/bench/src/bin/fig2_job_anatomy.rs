//! Figure 2 \[R\]: anatomy of a job — per-component traffic over time.
//!
//! The timeline of one TeraSort: bytes on the wire per second, split by
//! Hadoop component. The figure's signature shape: an HDFS-read ramp as
//! map waves start, a broad shuffle plateau that overlaps the map tail,
//! and an HDFS-write burst at the end as reducers commit output through
//! replication pipelines, with a thin carpet of control traffic
//! throughout.

use keddah_bench::{default_config, gib, heading, testbed};
use keddah_des::Duration;
use keddah_flowcap::Component;
use keddah_hadoop::{run_job, JobSpec, Workload};

fn main() {
    heading("Figure 2: job anatomy (TeraSort, 32 GiB)");
    let run = run_job(
        &testbed(),
        &default_config(),
        &JobSpec::new(Workload::TeraSort, gib(32)),
        2,
    );
    let bin = Duration::from_secs(5);
    let timeline = run.trace.timeline(bin);

    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "t (s)", "hdfs_read", "shuffle", "hdfs_write", "control"
    );
    let series: Vec<(Component, Vec<u64>)> = [
        Component::HdfsRead,
        Component::Shuffle,
        Component::HdfsWrite,
        Component::Control,
    ]
    .iter()
    .map(|&c| (c, timeline.series(c)))
    .collect();
    for (i, bin_entry) in timeline.bins.iter().enumerate() {
        let t = bin_entry.start.as_secs_f64();
        print!("{t:>6.0}");
        for (_, s) in &series {
            print!(" {:>10.1}MB", s[i] as f64 / 1e6);
        }
        println!();
    }

    // Phase markers: where each component's traffic is centred.
    println!("\ncomponent   first-byte  peak-bin  last-byte (seconds)");
    for (c, s) in &series {
        let first = s.iter().position(|&b| b > 0);
        let last = s.iter().rposition(|&b| b > 0);
        let peak = s
            .iter()
            .enumerate()
            .max_by_key(|&(_, &b)| b)
            .map(|(i, _)| i);
        if let (Some(f), Some(p), Some(l)) = (first, peak, last) {
            println!(
                "{:<11} {:>9.0} {:>9.0} {:>9.0}",
                c.name(),
                timeline.bins[f].start.as_secs_f64(),
                timeline.bins[p].start.as_secs_f64(),
                timeline.bins[l].start.as_secs_f64()
            );
        }
    }
    println!(
        "\nPaper shape: read ramp -> shuffle plateau overlapping the map tail ->\n\
         write burst at the end; control traffic spans the whole job."
    );
}
