//! Figure 8 \[R\]: Hadoop traffic beyond the testbed — topology study.
//!
//! The use-case the toolchain exists for: take the fitted TeraSort
//! model and study its traffic on fabrics the physical testbed never
//! had — a big switch, non-blocking and oversubscribed leaf–spine, and
//! a fat-tree — reporting shuffle FCT percentiles and peak link
//! utilisation per fabric.

use keddah_bench::{default_config, gib, heading, percentile, testbed};
use keddah_core::pipeline::Keddah;
use keddah_core::replay::replay_jobs;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};
use keddah_netsim::{SimOptions, Topology};

fn main() {
    heading("Figure 8: generated TeraSort on alternative fabrics");
    let cluster = testbed();
    let traces = Keddah::capture(
        &cluster,
        &default_config(),
        &JobSpec::new(Workload::TeraSort, gib(8)),
        5,
        600,
    );
    let model = Keddah::fit(&traces).expect("terasort models");
    let jobs = vec![model.generate_job(42)];

    let fabrics: Vec<Topology> = vec![
        Topology::star(24, 1e9),
        Topology::leaf_spine(6, 4, 4, 1e9, 1.0),
        Topology::leaf_spine(6, 4, 4, 1e9, 2.0),
        Topology::leaf_spine(6, 4, 4, 1e9, 4.0),
        Topology::fat_tree(6, 1e9),
    ];
    let opts = SimOptions {
        mouse_threshold: 10_000,
        ..SimOptions::default()
    };

    println!(
        "{:<42} {:>10} {:>10} {:>10} {:>10}",
        "fabric", "p50 (s)", "p95 (s)", "p99 (s)", "peak util"
    );
    for topo in &fabrics {
        let report = replay_jobs(&jobs, topo, opts).expect("model fits all fabrics");
        let shuffle = report
            .fct_by_component
            .get(&Component::Shuffle)
            .cloned()
            .unwrap_or_default();
        println!(
            "{:<42} {:>10.3} {:>10.3} {:>10.3} {:>9.1}%",
            topo.name(),
            percentile(&shuffle, 0.50),
            percentile(&shuffle, 0.95),
            percentile(&shuffle, 0.99),
            report.sim.peak_link_utilisation(topo) * 100.0
        );
    }
    println!(
        "\nPaper shape: non-blocking fabrics behave like the big switch;\n\
         oversubscription stretches the FCT tail roughly with its factor."
    );
}
