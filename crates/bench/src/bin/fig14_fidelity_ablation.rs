//! Figure 14 \[R, extension\]: network-model fidelity ablation.
//!
//! The same Keddah-generated TeraSort replayed under three network
//! models of increasing fidelity: the pure fluid max-min model, the
//! fluid model with the slow-start latency correction, and the
//! round-based TCP (AIMD) simulator. Shows where the cheap model is
//! trustworthy (elephant medians) and where dynamics matter (short-flow
//! and tail FCTs).

use keddah_bench::{default_config, gib, heading, mean, percentile, testbed};
use keddah_core::pipeline::Keddah;
use keddah_core::replay::jobs_to_flows;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};
use keddah_netsim::{simulate, simulate_tcp, SimOptions, TcpOptions, Topology};

fn main() {
    heading("Figure 14 [extension]: fluid vs TCP fidelity (TeraSort 4 GiB)");
    let traces = Keddah::capture(
        &testbed(),
        &default_config(),
        &JobSpec::new(Workload::TeraSort, gib(4)),
        5,
        800,
    );
    let model = Keddah::fit(&traces).expect("terasort fits");
    let jobs = vec![model.generate_job(5)];
    let topo = Topology::leaf_spine(6, 4, 3, 1e9, 2.0);
    let flows = jobs_to_flows(&jobs, &topo).expect("fits fabric");
    // Drop control mice for a like-for-like comparison (the TCP model has
    // no mice fast-path).
    let data_flows: Vec<_> = flows.iter().copied().filter(|f| f.bytes > 10_000).collect();
    println!(
        "{} data flows ({:.2} GB)\n",
        data_flows.len(),
        data_flows.iter().map(|f| f.bytes as f64).sum::<f64>() / 1e9
    );

    let shuffle_tag = Component::ALL
        .iter()
        .position(|&c| c == Component::Shuffle)
        .expect("shuffle in ALL") as u32;
    let fcts = |report: &keddah_netsim::SimReport| -> (Vec<f64>, Vec<f64>) {
        let shuffle: Vec<f64> = report
            .results
            .iter()
            .filter(|r| r.spec.tag == shuffle_tag)
            .map(|r| r.fct().as_secs_f64())
            .collect();
        (report.fcts(), shuffle)
    };

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "model", "mean", "p50", "p95", "p99"
    );
    let fluid = simulate(&topo, &data_flows, SimOptions::default());
    let fluid_ss = simulate(
        &topo,
        &data_flows,
        SimOptions {
            tcp_slow_start: true,
            ..SimOptions::default()
        },
    );
    let tcp = simulate_tcp(&topo, &data_flows, TcpOptions::default());
    for (name, report) in [
        ("fluid max-min", &fluid),
        ("fluid + slow-start latency", &fluid_ss),
        ("round-based TCP (AIMD)", &tcp),
    ] {
        let (_, shuffle) = fcts(report);
        println!(
            "{:<28} {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s",
            name,
            mean(&shuffle),
            percentile(&shuffle, 0.5),
            percentile(&shuffle, 0.95),
            percentile(&shuffle, 0.99)
        );
    }
    println!(
        "\nExpected shape: the three models agree on medians (elephants live at\n\
         their fair share); the TCP model shifts short flows and the tail up\n\
         as slow start and AIMD sawtooth bite."
    );
}
