//! Figure 11 \[R, extension\]: traffic under task failures.
//!
//! Sweep the task-failure probability and measure the recovery traffic
//! it induces: failed map attempts re-read their input block, so HDFS
//! read volume and job duration climb with the failure rate while
//! shuffle volume stays put (reducers only ever fetch from the
//! successful attempt).
//!
//! The sweep runs as one matrix through the experiment runner.

use keddah_bench::{default_config, gib, heading, jobs_from_env, runner};
use keddah_core::runner::MatrixCell;
use keddah_flowcap::Component;
use keddah_hadoop::{HadoopConfig, Workload};

fn main() {
    heading("Figure 11 [extension]: failure-recovery traffic (TeraSort, 4 GiB)");
    println!(
        "replication 1: a failed attempt is blacklisted on its node, so every\n\
         retry re-reads its block across the network\n"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "p(fail)", "retries", "read MB", "shuffle MB", "makespan"
    );
    let probabilities = [0.0f64, 0.05, 0.1, 0.2, 0.4];
    let cells: Vec<MatrixCell> = probabilities
        .iter()
        .map(|&p| {
            let config = HadoopConfig {
                task_failure_prob: p,
                ..default_config()
            }
            .with_replication(1);
            MatrixCell::new(Workload::TeraSort, gib(4), config, 3)
        })
        .collect();
    let results = runner().run_matrix(&cells, jobs_from_env());
    for (&p, result) in probabilities.iter().zip(&results) {
        let retries = result.mean_over_runs(|r| f64::from(r.failed_map_attempts));
        let read = result.mean_component_bytes(Component::HdfsRead);
        let shuffle = result.mean_component_bytes(Component::Shuffle);
        let makespan = result.mean_duration_secs();
        println!(
            "{p:>8.2} {retries:>10.1} {:>12.1} {:>12.1} {:>11.1}s",
            read.max(0.0) / 1e6,
            shuffle.max(0.0) / 1e6,
            makespan
        );
    }
    println!(
        "\nExpected shape: HDFS read volume and makespan climb with the failure\n\
         rate (re-reads); shuffle volume is flat."
    );
}
