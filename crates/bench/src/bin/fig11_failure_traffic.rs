//! Figure 11 \[R, extension\]: traffic under task failures.
//!
//! Sweep the task-failure probability and measure the recovery traffic
//! it induces: failed map attempts re-read their input block, so HDFS
//! read volume and job duration climb with the failure rate while
//! shuffle volume stays put (reducers only ever fetch from the
//! successful attempt).

use keddah_bench::{default_config, gib, heading, mean, testbed};
use keddah_flowcap::Component;
use keddah_hadoop::{run_job, HadoopConfig, JobSpec, Workload};

fn main() {
    heading("Figure 11 [extension]: failure-recovery traffic (TeraSort, 4 GiB)");
    println!(
        "replication 1: a failed attempt is blacklisted on its node, so every\n\
         retry re-reads its block across the network\n"
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12}",
        "p(fail)", "retries", "read MB", "shuffle MB", "makespan"
    );
    let cluster = testbed();
    let job = JobSpec::new(Workload::TeraSort, gib(4));
    for &p in &[0.0f64, 0.05, 0.1, 0.2, 0.4] {
        let config = HadoopConfig {
            task_failure_prob: p,
            ..default_config()
        }
        .with_replication(1);
        let runs: Vec<_> = (0..3)
            .map(|i| run_job(&cluster, &config, &job, 900 + i))
            .collect();
        let retries = mean(
            &runs
                .iter()
                .map(|r| f64::from(r.counters.failed_map_attempts))
                .collect::<Vec<_>>(),
        );
        let read = mean(
            &runs
                .iter()
                .map(|r| {
                    r.trace
                        .component_flows(Component::HdfsRead)
                        .map(|f| f.total_bytes() as f64)
                        .sum::<f64>()
                })
                .collect::<Vec<_>>(),
        );
        let shuffle = mean(
            &runs
                .iter()
                .map(|r| {
                    r.trace
                        .component_flows(Component::Shuffle)
                        .map(|f| f.total_bytes() as f64)
                        .sum::<f64>()
                })
                .collect::<Vec<_>>(),
        );
        let makespan = mean(
            &runs
                .iter()
                .map(|r| r.duration.as_secs_f64())
                .collect::<Vec<_>>(),
        );
        println!(
            "{p:>8.2} {retries:>10.1} {:>12.1} {:>12.1} {:>11.1}s",
            read.max(0.0) / 1e6,
            shuffle.max(0.0) / 1e6,
            makespan
        );
    }
    println!(
        "\nExpected shape: HDFS read volume and makespan climb with the failure\n\
         rate (re-reads); shuffle volume is flat."
    );
}
