//! Figure 12 \[R, extension\]: spatial structure of Hadoop traffic.
//!
//! The communication matrix per component: shuffle concentrates into the
//! reducer nodes (in-cast), HDFS writes spread across the pipeline
//! targets, and control traffic stars around the master. Reported as
//! sender/receiver counts and received-byte concentration, for both a
//! capture and model-generated traffic, to show the generator preserves
//! spatial structure.

use keddah_bench::{default_config, gib, heading, testbed};
use keddah_core::pipeline::Keddah;
use keddah_flowcap::{Component, NodeId, TrafficMatrix};
use keddah_hadoop::{run_job, JobSpec, Workload};
use std::collections::BTreeMap;

fn summarize(label: &str, matrices: &BTreeMap<Component, TrafficMatrix>) {
    println!("\n[{label}]");
    println!(
        "{:<11} {:>9} {:>10} {:>14} {:>16}",
        "component", "senders", "receivers", "GB", "rx concentration"
    );
    for (component, m) in matrices {
        if *component == Component::Other {
            continue;
        }
        println!(
            "{:<11} {:>9} {:>10} {:>14.2} {:>16.3}",
            component.name(),
            m.sender_count(),
            m.receiver_count(),
            m.total_bytes() as f64 / 1e9,
            m.rx_concentration()
        );
    }
}

fn main() {
    heading("Figure 12 [extension]: communication matrices (TeraSort, 8 GiB)");
    let cluster = testbed();
    let config = default_config();
    let job = JobSpec::new(Workload::TeraSort, gib(8));

    // Captured traffic.
    let run = run_job(&cluster, &config, &job, 5);
    let captured = TrafficMatrix::per_component(run.trace.flows());
    summarize("captured", &captured);

    // Model-generated traffic mapped onto the same node space.
    let traces = Keddah::capture(&cluster, &config, &job, 5, 50);
    let model = Keddah::fit(&traces).expect("terasort fits");
    let generated = model.generate_job(9);
    // Reuse the flow-record shape so the same matrix code applies.
    let flows: Vec<keddah_flowcap::FlowRecord> = generated
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| keddah_flowcap::FlowRecord {
            tuple: keddah_flowcap::FiveTuple {
                src: NodeId(f.src),
                src_port: 40_000 + (i % 20_000) as u16,
                dst: NodeId(f.dst),
                dst_port: 1,
            },
            start: keddah_des::SimTime::from_secs_f64(f.start),
            end: keddah_des::SimTime::from_secs_f64(f.start + 1.0),
            fwd_bytes: f.bytes,
            rev_bytes: 0,
            packets: 1,
            component: Some(f.component),
        })
        .collect();
    let synthetic = TrafficMatrix::per_component(&flows);
    summarize("generated", &synthetic);

    println!(
        "\nPaper shape: shuffle receivers ~ reducer-node count with high\n\
         concentration; control converges on the master; the generator\n\
         reproduces those widths via its endpoint patterns.\n\
         Note: captured control shows every node as a receiver because RPC\n\
         responses flow back; generated flows are unidirectional, so their\n\
         control matrix has a single sink (the master)."
    );
}
