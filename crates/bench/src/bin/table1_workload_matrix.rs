//! Table 1 \[R\]: the evaluation's workload matrix.
//!
//! Lists every job type with its data-flow profile and the sweep
//! dimensions of the capture campaign, plus one measured capture per
//! workload at the reference point (2 GiB, 8 reducers, replication 3) to
//! ground the matrix in observed traffic. The per-workload captures run
//! through the experiment runner.

use keddah_bench::{default_config, fmt_bytes, gib, heading, jobs_from_env, runner};
use keddah_core::runner::MatrixCell;
use keddah_hadoop::Workload;

fn main() {
    heading("Table 1: workload matrix");
    println!(
        "sweeps: input {{1, 2, 4, 8, 16}} GiB x reducers {{4, 8, 16}} x replication {{1, 2, 3}}"
    );
    println!("testbed: 20 workers in 4 racks + master, 1 Gb/s NICs\n");
    println!(
        "{:<10} {:>8} {:>8} {:>6} {:>6} | {:>8} {:>12} {:>10}",
        "workload", "map sel", "red sel", "iters", "maps", "flows", "wire bytes", "makespan"
    );

    let config = default_config();
    // Paper tables pin the original seven rows in canonical order;
    // post-paper workloads (pig_join, datagrid, tpcxhs) stay out.
    let cells: Vec<MatrixCell> = Workload::PAPER
        .iter()
        .map(|&w| MatrixCell::new(w, gib(2), config.clone(), 1))
        .collect();
    let results = runner().run_matrix(&cells, jobs_from_env());
    for (cell, result) in cells.iter().zip(&results) {
        let profile = cell.workload.profile();
        let run = &result.runs[0];
        let maps_per_round = gib(2).div_ceil(config.block_bytes);
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>6} {:>6} | {:>8} {:>12} {:>9.1}s",
            result.workload,
            profile.map_selectivity,
            profile.reduce_selectivity,
            profile.iterations,
            maps_per_round,
            run.flows,
            fmt_bytes(run.bytes as f64),
            run.duration_secs
        );
    }
    println!(
        "\nPaper shape: TeraSort/PageRank are network-heavy; Grep/KMeans move\n\
         little data; iterative jobs repeat per-round traffic."
    );
}
