//! Table 1 \[R\]: the evaluation's workload matrix.
//!
//! Lists every job type with its data-flow profile and the sweep
//! dimensions of the capture campaign, plus one measured capture per
//! workload at the reference point (2 GiB, 8 reducers, replication 3) to
//! ground the matrix in observed traffic.

use keddah_bench::{default_config, fmt_bytes, gib, heading, testbed};
use keddah_hadoop::{run_job, JobSpec, Workload};

fn main() {
    heading("Table 1: workload matrix");
    println!(
        "sweeps: input {{1, 2, 4, 8, 16}} GiB x reducers {{4, 8, 16}} x replication {{1, 2, 3}}"
    );
    println!("testbed: 20 workers in 4 racks + master, 1 Gb/s NICs\n");
    println!(
        "{:<10} {:>8} {:>8} {:>6} {:>6} | {:>8} {:>12} {:>10}",
        "workload", "map sel", "red sel", "iters", "maps", "flows", "wire bytes", "makespan"
    );

    let cluster = testbed();
    let config = default_config();
    for &workload in Workload::ALL {
        let profile = workload.profile();
        let job = JobSpec::new(workload, gib(2));
        let run = run_job(&cluster, &config, &job, 1);
        let maps_per_round = gib(2).div_ceil(config.block_bytes);
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>6} {:>6} | {:>8} {:>12} {:>9.1}s",
            workload.name(),
            profile.map_selectivity,
            profile.reduce_selectivity,
            profile.iterations,
            maps_per_round,
            run.trace.len(),
            fmt_bytes(run.trace.total_bytes() as f64),
            run.duration.as_secs_f64()
        );
    }
    println!(
        "\nPaper shape: TeraSort/PageRank are network-heavy; Grep/KMeans move\n\
         little data; iterative jobs repeat per-round traffic."
    );
}
