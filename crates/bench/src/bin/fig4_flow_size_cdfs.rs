//! Figure 4 \[R\]: flow size CDFs per component, empirical vs fitted.
//!
//! For TeraSort and WordCount at 8 GiB (30 pooled runs): the empirical
//! flow-size CDF of each data component next to the CDF of the best
//! fitted family at fixed quantiles, with the winning family and KS
//! distance. This is the figure that justifies modelling each component
//! with its own parametric family.

use keddah_bench::{default_config, gib, heading, testbed};
use keddah_core::dataset::Dataset;
use keddah_core::fitting::fit_model;
use keddah_core::pipeline::Keddah;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};
use keddah_stat::distributions::Distribution;
use keddah_stat::Ecdf;

const QUANTILES: &[f64] = &[0.05, 0.25, 0.5, 0.75, 0.9, 0.99];

fn main() {
    heading("Figure 4: flow-size CDFs, empirical vs fitted (8 GiB, 30 runs)");
    let cluster = testbed();
    let config = default_config();
    for workload in [Workload::TeraSort, Workload::WordCount] {
        let traces = Keddah::capture(&cluster, &config, &JobSpec::new(workload, gib(8)), 30, 200);
        let dataset = Dataset::from_traces(&traces);
        let model = fit_model(&dataset).expect("workload models");
        println!("\n--- {} ---", workload.name());
        for &component in Component::DATA {
            let Some(sample) = dataset.component(component) else {
                continue;
            };
            let Some(cm) = model.component(component) else {
                println!("{:<10} too few flows to model", component.name());
                continue;
            };
            let ecdf = Ecdf::new(sample.sizes.clone()).expect("non-empty sample");
            println!(
                "{:<10} n={:<6} best fit: {}  (KS = {:.3}, p = {:.3})",
                component.name(),
                ecdf.len(),
                cm.size_dist,
                cm.size_fit.ks_statistic,
                cm.size_fit.ks_p_value
            );
            println!("  {:>6} {:>14} {:>14}", "q", "empirical", "fitted");
            for &q in QUANTILES {
                println!(
                    "  {:>6.2} {:>14.0} {:>14.0}",
                    q,
                    ecdf.quantile(q),
                    cm.size_dist.quantile(q)
                );
            }
        }
    }
    println!(
        "\nPaper shape: per-component empirical and fitted quantiles track each\n\
         other closely; shuffle sizes are well described by a heavy-ish-tailed\n\
         family, HDFS transfers cluster near the block size."
    );
}
