//! Figure 5 \[R\]: traffic scaling with input size.
//!
//! Per-component wire bytes as input grows 1 → 16 GiB, per workload,
//! with a fitted power law `bytes = a * input^b` per series. The paper's
//! observation: data-plane traffic scales near-linearly with input
//! (b ≈ 1) with workload-specific constants, while control traffic grows
//! much more slowly (with job duration, not volume).
//!
//! The full 15-cell sweep (3 workloads x 5 sizes) runs through the
//! experiment runner, so the points fill in parallel across cores.

use keddah_bench::{default_config, gib, heading, jobs_from_env, runner};
use keddah_core::runner::MatrixCell;
use keddah_flowcap::Component;
use keddah_hadoop::Workload;
use keddah_stat::regression::PowerLaw;

fn main() {
    heading("Figure 5: traffic vs input size (1-16 GiB, 3 runs per point)");
    let sizes = [1u64, 2, 4, 8, 16];
    let workloads = [Workload::TeraSort, Workload::WordCount, Workload::Grep];
    let cells: Vec<MatrixCell> = workloads
        .iter()
        .flat_map(|&w| {
            sizes
                .iter()
                .map(move |&s| MatrixCell::new(w, gib(s), default_config(), 3))
        })
        .collect();
    let results = runner().run_matrix(&cells, jobs_from_env());

    for (wi, workload) in workloads.into_iter().enumerate() {
        println!("\n--- {} ---", workload.name());
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12}",
            "GiB", "read MB", "shuffle MB", "write MB", "control MB"
        );
        let mut series: std::collections::BTreeMap<Component, Vec<f64>> =
            std::collections::BTreeMap::new();
        for (si, &s) in sizes.iter().enumerate() {
            let result = &results[wi * sizes.len() + si];
            print!("{s:>6}");
            for &c in &[
                Component::HdfsRead,
                Component::Shuffle,
                Component::HdfsWrite,
                Component::Control,
            ] {
                let bytes = result.mean_component_bytes(c);
                series.entry(c).or_default().push(bytes.max(1.0));
                print!(" {:>11.1}", bytes.max(0.0) / 1e6);
            }
            println!();
        }
        let xs: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
        println!("power-law fits (bytes = a * GiB^b):");
        for (c, ys) in &series {
            // Sizes too small to produce this component at all (zero
            // traffic) would poison the log-log fit; fit over the sizes
            // where the component actually appears.
            let pts: (Vec<f64>, Vec<f64>) = xs
                .iter()
                .zip(ys)
                .filter(|&(_, &y)| y > 1.0)
                .map(|(&x, &y)| (x, y))
                .unzip();
            if pts.0.len() < 2 {
                println!("  {:<10} (too little traffic to fit)", c.name());
                continue;
            }
            match PowerLaw::fit(&pts.0, &pts.1) {
                Ok(fit) => println!(
                    "  {:<10} b = {:.2}  (a = {:.2e}, R^2 = {:.3}, over {} sizes)",
                    c.name(),
                    fit.exponent,
                    fit.scale,
                    fit.r_squared,
                    pts.0.len()
                ),
                Err(e) => println!("  {:<10} fit failed: {e}", c.name()),
            }
        }
    }
    println!(
        "\nPaper shape: data components scale with exponent b ~ 1 (linear in\n\
         input); control traffic's exponent is far below 1."
    );
}
