//! Streaming-ingestion throughput bench: the `keddah serve` hot path.
//!
//! Times the three ingest paths the daemon runs, in records/second:
//!
//! * `flow_exact` — [`StreamEngine`] in the degenerate exact-store
//!   config (raw samples, offline-identical refits): the upper bound on
//!   memory, the baseline for fidelity;
//! * `flow_gk` — the same engine on GK sketches (ε = 0.01): the
//!   bounded-memory config the daemon defaults to;
//! * `packet` — the bounded-memory [`StreamAssembler`] on a raw packet
//!   stream with a deliberately small connection table, so the
//!   LRU/idle eviction machinery is on the timed path.
//!
//! Results land in `BENCH_stream.json` next to the committed baseline.
//! `KEDDAH_SMOKE=1` shrinks the sweep for CI; `KEDDAH_BENCH_CHECK=1`
//! compares against the committed baseline first and exits non-zero if
//! any cell fell more than `KEDDAH_BENCH_TOLERANCE` (default 25%) below
//! it, or if a flow-ingest cell fails the absolute floor of 100k
//! records/sec the serve design point requires.

use std::time::Instant;

use criterion::{black_box, BenchmarkId, Criterion};
use keddah_bench::{heading, smoke};
use keddah_core::stream::{StreamEngine, StreamOptions};
use keddah_core::SketchMode;
use keddah_des::{Duration, SimTime};
use keddah_flowcap::{
    ports, FiveTuple, FlowRecord, NodeId, PacketRecord, StreamAssembler, StreamConfig, TraceMeta,
};
use keddah_obs::Obs;
use keddah_stat::sketch::{GkSketch, StreamingQuantiles};
use serde::{Deserialize, Serialize};

/// Flows per synthetic rotation (one `end_run` per this many records).
const RUN_FLOWS: usize = 20_000;

/// Absolute flows/sec floor the serve design point requires of the
/// flow-ingest paths (checked in `KEDDAH_BENCH_CHECK` mode).
const FLOOR_RECORDS_PER_SEC: f64 = 100_000.0;

/// Baseline fraction a cell may lose before the gate fails; override
/// with `KEDDAH_BENCH_TOLERANCE`.
const DEFAULT_TOLERANCE: f64 = 0.25;

/// splitmix64: cheap deterministic mixing, no RNG state to thread.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Synthetic classified flow record `i` of rotation `run`: shuffle-
/// and HDFS-shaped flows across a 64-node cluster, sizes spread over
/// three decades so the fitter has real distributions to chew on.
fn flow_record(run: usize, i: usize) -> FlowRecord {
    let h = mix(((run as u64) << 32) | i as u64);
    let src = NodeId((h % 64) as u32);
    let dst = NodeId(((1 + (h >> 8) % 63 + src.0 as u64) % 64) as u32);
    let dst_port = if h & 1 == 0 {
        ports::SHUFFLE
    } else {
        ports::DATANODE_XFER
    };
    let start = SimTime::from_millis((i as u64 / 4) % 60_000);
    FlowRecord {
        tuple: FiveTuple {
            src,
            src_port: 40_000 + ((h >> 16) % 8_192) as u16,
            dst,
            dst_port,
        },
        start,
        end: start + Duration::from_millis(1 + (h >> 24) % 500),
        fwd_bytes: 128 + (h >> 32) % 1_024,
        rev_bytes: 1 << (10 + (h >> 40) % 11),
        packets: 2 + (h >> 48) % 64,
        component: None,
    }
}

fn run_meta(seed: u64) -> TraceMeta {
    TraceMeta {
        workload: "terasort".to_string(),
        input_bytes: 1 << 30,
        reducers: 8,
        replication: 3,
        block_bytes: 128 << 20,
        nodes: 64,
        seed,
        counters: None,
    }
}

/// Synthetic packet `i`: adjacent-node data packets with occasional
/// FINs, timestamps loosely increasing with jitter so the idle sweeps
/// and out-of-order tolerance both run.
fn packet(i: usize) -> PacketRecord {
    let h = mix(0x5eed ^ i as u64);
    let src = NodeId((h % 48) as u32);
    let dst = NodeId(((1 + (h >> 8) % 47 + src.0 as u64) % 48) as u32);
    let ts = SimTime::from_micros((i as u64 * 25).saturating_sub(h % 50));
    let src_port = 40_000 + ((h >> 16) % 2_048) as u16;
    let bytes = 256 + (h >> 32) % 65_536;
    if h & 0xff == 0 {
        PacketRecord::fin(ts, src, src_port, dst, ports::SHUFFLE, bytes)
    } else {
        PacketRecord::data(ts, src, src_port, dst, ports::SHUFFLE, bytes)
    }
}

/// One cell of `BENCH_stream.json`. All fields always serialize; the
/// gate keys cells on `(path, records)`.
#[derive(Debug, Serialize, Deserialize)]
struct Case {
    /// `flow_exact`, `flow_gk` or `packet`.
    path: String,
    /// Records pushed through the timed section.
    records: usize,
    /// Rotations ingested (flow paths; 0 for the packet path).
    runs: usize,
    /// Model generations reached (flow paths; 0 for the packet path).
    generation: u64,
    /// Flow records emitted by the assembler (packet path only).
    emitted: u64,
    elapsed_secs: f64,
    records_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    bench: String,
    mode: String,
    /// The absolute flows/sec floor the check mode enforces.
    floor_records_per_sec: f64,
    cases: Vec<Case>,
}

/// Times flow-record ingestion through the full engine (assemble-free
/// path: records arrive pre-assembled, as from rotated `.jsonl`), with
/// one refit folded in at the end — the serve steady state.
fn flow_case(label: &str, sketch: SketchMode, total: usize) -> Case {
    let runs = (total / RUN_FLOWS).max(1);
    let obs = Obs::enabled();
    let mut engine = StreamEngine::new(
        StreamOptions {
            sketch,
            refit_runs: runs,
            ..StreamOptions::default()
        },
        &obs,
    )
    .expect("engine options valid");
    let start = Instant::now();
    for run in 0..runs {
        for i in 0..RUN_FLOWS {
            engine.ingest_flow(flow_record(run, i));
        }
        engine.end_run(&run_meta(run as u64)).expect("run ingests");
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(engine.generation() >= 1, "the bench must reach a fit");
    let records = runs * RUN_FLOWS;
    let rate = records as f64 / elapsed.max(1e-9);
    println!(
        "{label:>10} {records:>9} records, {runs:>3} runs: {elapsed:>8.3}s \
         ({rate:>12.0} records/s, generation {})",
        engine.generation()
    );
    Case {
        path: label.to_string(),
        records,
        runs,
        generation: engine.generation(),
        emitted: 0,
        elapsed_secs: elapsed,
        records_per_sec: rate,
    }
}

/// Times raw packet ingestion through the bounded connection table;
/// capacity is far below the live tuple population so LRU eviction
/// stays hot.
fn packet_case(total: usize) -> Case {
    let packets: Vec<PacketRecord> = (0..total).map(packet).collect();
    let mut asm = StreamAssembler::with_config(StreamConfig {
        idle_timeout: Duration::from_secs(5),
        max_active: 4_096,
    });
    let start = Instant::now();
    let mut emitted = 0u64;
    for p in &packets {
        asm.push(*p);
        if asm.ready() >= 8_192 {
            emitted += asm.drain().len() as u64;
        }
    }
    emitted += asm.flush().len() as u64;
    let elapsed = start.elapsed().as_secs_f64();
    let rate = total as f64 / elapsed.max(1e-9);
    println!(
        "{:>10} {total:>9} records:           {elapsed:>8.3}s \
         ({rate:>12.0} records/s, {emitted} flows out)",
        "packet"
    );
    Case {
        path: "packet".to_string(),
        records: total,
        runs: 0,
        generation: 0,
        emitted,
        elapsed_secs: elapsed,
        records_per_sec: rate,
    }
}

/// Criterion micro-group: per-sample cost of the two sample stores the
/// engine chooses between — raw vector vs GK sketch.
fn bench_sketch_push(c: &mut Criterion) {
    let samples: Vec<f64> = (0..65_536u64)
        .map(|i| (mix(i) % 1_000_000) as f64)
        .collect();
    let mut group = c.benchmark_group("sketch_push");
    group.sample_size(if smoke() { 10 } else { 30 });
    group.bench_with_input(
        BenchmarkId::new("exact_vec", samples.len()),
        &samples,
        |b, samples| {
            b.iter(|| {
                let mut store = Vec::with_capacity(samples.len());
                store.extend_from_slice(black_box(samples));
                black_box(store)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("gk_eps_0.01", samples.len()),
        &samples,
        |b, samples| {
            b.iter(|| {
                let mut sketch = GkSketch::new(0.01).expect("valid eps");
                for &x in samples {
                    sketch.observe(x);
                }
                black_box(sketch.tuple_count())
            });
        },
    );
    group.finish();
}

/// Per-cell regression diff against the committed baseline, keyed on
/// `(path, records)`; a current cell with no baseline key is new, not a
/// regression.
fn diff_cells(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for c in &current.cases {
        let Some(b) = baseline
            .cases
            .iter()
            .find(|b| b.path == c.path && b.records == c.records)
        else {
            continue;
        };
        let floor = (1.0 - tolerance) * b.records_per_sec;
        let verdict = if c.records_per_sec < floor {
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  gate: {:>10} {:>9}: {:>12.0} rec/s vs baseline {:>12.0} (floor {:>12.0}) {}",
            c.path, c.records, c.records_per_sec, b.records_per_sec, floor, verdict
        );
        if c.records_per_sec < floor {
            failures.push(format!(
                "{} {} records: {:.0} rec/s < floor {:.0} (baseline {:.0})",
                c.path, c.records, c.records_per_sec, floor, b.records_per_sec
            ));
        }
    }
    failures
}

fn main() {
    let smoke = smoke();
    let mode = if smoke { "smoke" } else { "full" };
    heading(&format!(
        "stream_ingest: serve ingestion throughput ({mode})"
    ));

    let mut criterion = Criterion::default().configure_from_args();
    bench_sketch_push(&mut criterion);
    criterion.final_summary();

    // Full mode sweeps a superset of the smoke sizes, so the committed
    // full-mode baseline always carries the cells the CI smoke gate
    // needs to key against.
    let flow_totals: &[usize] = if smoke {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let packet_totals: &[usize] = if smoke {
        &[200_000]
    } else {
        &[200_000, 1_000_000]
    };

    println!();
    let mut cases = Vec::new();
    for &total in flow_totals {
        cases.push(flow_case("flow_exact", SketchMode::Exact, total));
        cases.push(flow_case(
            "flow_gk",
            SketchMode::Gk { epsilon: 0.01 },
            total,
        ));
    }
    for &total in packet_totals {
        cases.push(packet_case(total));
    }

    let report = BenchReport {
        bench: "stream_ingest".to_string(),
        mode: mode.to_string(),
        floor_records_per_sec: FLOOR_RECORDS_PER_SEC,
        cases,
    };

    let path = "BENCH_stream.json";
    let check = std::env::var("KEDDAH_BENCH_CHECK").is_ok_and(|v| v != "0");
    let tolerance = std::env::var("KEDDAH_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(DEFAULT_TOLERANCE);
    let mut failures = Vec::new();
    if check {
        println!("\nregression gate (tolerance {:.0}%):", tolerance * 100.0);
        for c in &report.cases {
            if c.path.starts_with("flow") && c.records_per_sec < FLOOR_RECORDS_PER_SEC {
                println!(
                    "  gate: {:>10} {:>9}: {:.0} rec/s below absolute floor {:.0} FAIL",
                    c.path, c.records, c.records_per_sec, FLOOR_RECORDS_PER_SEC
                );
                failures.push(format!(
                    "{} {} records: {:.0} rec/s under the {:.0} rec/s serve floor",
                    c.path, c.records, c.records_per_sec, FLOOR_RECORDS_PER_SEC
                ));
            }
        }
        match std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str::<BenchReport>(&s).ok())
        {
            Some(baseline) => failures.extend(diff_cells(&report, &baseline, tolerance)),
            None => println!("  gate: no parseable committed baseline; floor check only"),
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_stream.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        eprintln!(
            "FAIL: {} cell(s) regressed vs committed baseline / absolute floor:",
            failures.len()
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
