//! Figure 13 \[R, extension\]: a multi-tenant cluster hour from models
//! alone.
//!
//! Builds a weighted job mix (the HiBench-ish blend of the workload
//! matrix) with Poisson arrivals, generates a 10-minute cluster
//! workload purely from fitted models, and replays it on an
//! oversubscribed leaf–spine — the end state the toolchain is for:
//! cluster-scale Hadoop network studies without a Hadoop cluster.

use keddah_bench::{default_config, gib, heading, mean, percentile, testbed};
use keddah_core::mix::{JobMix, MixEntry};
use keddah_core::pipeline::Keddah;
use keddah_core::replay::replay_jobs;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};
use keddah_netsim::{SimOptions, Topology};

fn main() {
    heading("Figure 13 [extension]: 10-minute cluster mix from models");
    let cluster = testbed();
    let config = default_config();

    // Fit one model per workload (2 GiB reference point).
    let weights = [
        (Workload::TeraSort, 2.0),
        (Workload::WordCount, 3.0),
        (Workload::PageRank, 1.0),
        (Workload::Grep, 3.0),
        (Workload::KMeans, 1.0),
    ];
    let mut entries = Vec::new();
    for (i, &(workload, weight)) in weights.iter().enumerate() {
        let traces = Keddah::capture(
            &cluster,
            &config,
            &JobSpec::new(workload, gib(2)),
            4,
            2000 + 100 * i as u64,
        );
        entries.push(MixEntry {
            model: Keddah::fit(&traces).expect("workload models"),
            weight,
        });
        println!("model fitted: {} (weight {weight})", workload.name());
    }
    let mix = JobMix::new(entries, 1.0 / 45.0).expect("valid mix"); // a job every ~45 s

    let horizon = 600.0;
    let jobs = mix.generate(horizon, 31);
    let offered: f64 = jobs.iter().map(|j| j.total_bytes() as f64).sum::<f64>() / 1e9;
    println!(
        "\ngenerated {} jobs over {horizon} s ({:.1} GB offered, {:.1} GB/min)",
        jobs.len(),
        offered,
        offered / (horizon / 60.0)
    );

    let topo = Topology::leaf_spine(6, 4, 3, 1e9, 2.0);
    let opts = SimOptions {
        mouse_threshold: 10_000,
        ..SimOptions::default()
    };
    let report = replay_jobs(&jobs, &topo, opts).expect("mix fits fabric");
    println!(
        "replayed {} flows on {} — makespan {:.0} s, peak link {:.1}%",
        report.sim.results.len(),
        topo.name(),
        report.makespan_secs(),
        report.sim.peak_link_utilisation(&topo) * 100.0
    );
    println!(
        "\n{:<11} {:>8} {:>10} {:>10} {:>10}",
        "component", "flows", "mean FCT", "p95 FCT", "p99 FCT"
    );
    for (component, fcts) in &report.fct_by_component {
        if *component == Component::Other {
            continue;
        }
        println!(
            "{:<11} {:>8} {:>9.3}s {:>9.3}s {:>9.3}s",
            component.name(),
            fcts.len(),
            mean(fcts),
            percentile(fcts, 0.95),
            percentile(fcts, 0.99)
        );
    }
    println!(
        "\nPaper shape: a continuous mixed workload keeps the fabric partially\n\
         loaded; heavy sort-like jobs set the FCT tail while scan-like jobs\n\
         ride along barely affected."
    );
}
