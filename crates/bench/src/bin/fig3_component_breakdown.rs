//! Figure 3 \[R\]: traffic volume breakdown per component, per job type.
//!
//! For each workload at the 8 GiB reference point: how the bytes on the
//! wire divide among HDFS read, HDFS write, shuffle and control. This is
//! where the job types separate: TeraSort is shuffle-dominated, Grep is
//! read-dominated (its shuffle is negligible), WordCount sits between.

use keddah_bench::{default_config, fmt_bytes, gib, heading, mean, testbed};
use keddah_flowcap::Component;
use keddah_hadoop::{run_repeats, JobSpec, Workload};

fn main() {
    heading("Figure 3: per-component traffic breakdown (8 GiB, 3 runs each)");
    println!(
        "{:<10} {:>12} | {:>8} {:>8} {:>8} {:>8}",
        "workload", "total", "read%", "shuffle%", "write%", "ctrl%"
    );
    let cluster = testbed();
    let config = default_config();
    for &workload in Workload::ALL {
        let runs = run_repeats(&cluster, &config, &JobSpec::new(workload, gib(8)), 10, 3);
        let per_component = |c: Component| -> f64 {
            mean(
                &runs
                    .iter()
                    .map(|r| {
                        r.trace
                            .component_flows(c)
                            .map(|f| f.total_bytes() as f64)
                            .sum::<f64>()
                    })
                    .collect::<Vec<f64>>(),
            )
        };
        let read = per_component(Component::HdfsRead);
        let shuffle = per_component(Component::Shuffle);
        let write = per_component(Component::HdfsWrite);
        let ctrl = per_component(Component::Control);
        let total = read + shuffle + write + ctrl;
        println!(
            "{:<10} {:>12} | {:>7.1}% {:>7.1}% {:>7.1}% {:>8.2}%",
            workload.name(),
            fmt_bytes(total),
            100.0 * read / total,
            100.0 * shuffle / total,
            100.0 * write / total,
            100.0 * ctrl / total
        );
    }
    println!(
        "\nPaper shape: shuffle dominates TeraSort/PageRank; Grep and KMeans are\n\
         read-dominated with near-zero shuffle; control is a sliver everywhere."
    );
}
