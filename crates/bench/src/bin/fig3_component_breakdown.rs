//! Figure 3 \[R\]: traffic volume breakdown per component, per job type.
//!
//! For each workload at the 8 GiB reference point: how the bytes on the
//! wire divide among HDFS read, HDFS write, shuffle and control. This is
//! where the job types separate: TeraSort is shuffle-dominated, Grep is
//! read-dominated (its shuffle is negligible), WordCount sits between.
//!
//! Cells run through the experiment runner (`--jobs`-style parallelism
//! via `KEDDAH_JOBS`); `KEDDAH_SMOKE` shrinks the matrix to one small
//! cell per workload for CI.

use keddah_bench::{default_config, fmt_bytes, gib, heading, jobs_from_env, runner, smoke};
use keddah_core::runner::MatrixCell;
use keddah_flowcap::Component;
use keddah_hadoop::Workload;

fn main() {
    let (input_bytes, repeats) = if smoke() { (256 << 20, 1) } else { (gib(8), 3) };
    heading(&format!(
        "Figure 3: per-component traffic breakdown ({}, {repeats} run(s) each)",
        fmt_bytes(input_bytes as f64)
    ));
    println!(
        "{:<10} {:>12} | {:>8} {:>8} {:>8} {:>8}",
        "workload", "total", "read%", "shuffle%", "write%", "ctrl%"
    );
    // Figure rows stay pinned to the paper's seven workloads.
    let cells: Vec<MatrixCell> = Workload::PAPER
        .iter()
        .map(|&w| MatrixCell::new(w, input_bytes, default_config(), repeats))
        .collect();
    let results = runner().run_matrix(&cells, jobs_from_env());
    for result in &results {
        let read = result.mean_component_bytes(Component::HdfsRead);
        let shuffle = result.mean_component_bytes(Component::Shuffle);
        let write = result.mean_component_bytes(Component::HdfsWrite);
        let ctrl = result.mean_component_bytes(Component::Control);
        let total = read + shuffle + write + ctrl;
        println!(
            "{:<10} {:>12} | {:>7.1}% {:>7.1}% {:>7.1}% {:>8.2}%",
            result.workload,
            fmt_bytes(total),
            100.0 * read / total,
            100.0 * shuffle / total,
            100.0 * write / total,
            100.0 * ctrl / total
        );
    }
    println!(
        "\nPaper shape: shuffle dominates TeraSort/PageRank; Grep and KMeans are\n\
         read-dominated with near-zero shuffle; control is a sliver everywhere."
    );
}
