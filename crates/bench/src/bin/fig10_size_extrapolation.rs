//! Figure 10 \[R, extension\]: model extrapolation across input sizes.
//!
//! Train anchor models at {1, 2, 4} GiB, fit the model family's scaling
//! laws, then predict the traffic at 8 and 16 GiB *without capturing
//! there* — and score the predictions against actual captures. This is
//! the scaling use-case the journal extension of Keddah develops.

use keddah_bench::{default_config, gib, heading, testbed};
use keddah_core::family::ModelFamily;
use keddah_core::pipeline::Keddah;
use keddah_core::KeddahModel;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};

fn train(gib_size: u64, seed: u64) -> KeddahModel {
    let traces = Keddah::capture(
        &testbed(),
        &default_config(),
        &JobSpec::new(Workload::TeraSort, gib(gib_size)),
        5,
        seed,
    );
    Keddah::fit(&traces).expect("anchor fits")
}

fn main() {
    heading("Figure 10 [extension]: model-family extrapolation (TeraSort)");
    let anchors = vec![train(1, 100), train(2, 200), train(4, 300)];
    let family = ModelFamily::fit(&anchors).expect("family fits");

    println!("fitted scaling laws (x = GiB):");
    for (component, law) in &family.count_laws {
        println!(
            "  {:<11} flows = {:.1} * x^{:.2}   (R^2 = {:.3})",
            component.name(),
            law.scale,
            law.exponent,
            law.r_squared
        );
    }
    println!(
        "  {:<11} secs  = {:.1} * x^{:.2}   (R^2 = {:.3})",
        "makespan",
        family.makespan_law.scale,
        family.makespan_law.exponent,
        family.makespan_law.r_squared
    );

    println!(
        "\n{:>6} {:<11} {:>12} {:>12} {:>10}",
        "GiB", "component", "predicted", "measured", "error"
    );
    for &target in &[8u64, 16] {
        let predicted = family.model_at(gib(target));
        let actual = train(target, 400 + target);
        for &component in Component::ALL {
            let (Some(p), Some(a)) = (predicted.component(component), actual.component(component))
            else {
                continue;
            };
            println!(
                "{:>6} {:<11} {:>12.0} {:>12.0} {:>9.1}%",
                target,
                component.name(),
                p.count.mean,
                a.count.mean,
                100.0 * (p.count.mean - a.count.mean).abs() / a.count.mean
            );
        }
        println!(
            "{:>6} {:<11} {:>11.1}s {:>11.1}s {:>9.1}%",
            target,
            "makespan",
            predicted.makespan.mean,
            actual.makespan.mean,
            100.0 * (predicted.makespan.mean - actual.makespan.mean).abs() / actual.makespan.mean
        );
    }
    println!(
        "\nExpected shape: data-plane flow counts extrapolate within ~10-30%\n\
         (near-linear scaling); control scales with duration, not volume."
    );
}
