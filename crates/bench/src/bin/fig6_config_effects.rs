//! Figure 6 \[R\]: effect of cluster configuration on traffic.
//!
//! TeraSort at 8 GiB under (a) a reducer-count sweep and (b) a
//! replication-factor sweep. Reducer count reshapes the shuffle — many
//! more, smaller flows at the same total volume; replication multiplies
//! HDFS write traffic while leaving the shuffle untouched.

use keddah_bench::{default_config, gib, heading, mean, testbed};
use keddah_flowcap::Component;
use keddah_hadoop::{run_repeats, JobSpec, Workload};

fn component_stats(
    runs: &[keddah_hadoop::JobRun],
    c: Component,
) -> (f64, f64, f64) {
    let counts: Vec<f64> = runs
        .iter()
        .map(|r| r.trace.component_flows(c).count() as f64)
        .collect();
    let bytes: Vec<f64> = runs
        .iter()
        .map(|r| {
            r.trace
                .component_flows(c)
                .map(|f| f.total_bytes() as f64)
                .sum::<f64>()
        })
        .collect();
    let count = mean(&counts);
    let volume = mean(&bytes);
    (count, volume, volume / count.max(1.0))
}

fn main() {
    let cluster = testbed();
    let job = JobSpec::new(Workload::TeraSort, gib(8));

    heading("Figure 6a: reducer count vs shuffle structure (TeraSort, 8 GiB)");
    println!(
        "{:>9} {:>12} {:>14} {:>16}",
        "reducers", "flows", "total MB", "mean flow KB"
    );
    for reducers in [2u32, 4, 8, 16, 32] {
        let config = default_config().with_reducers(reducers);
        let runs = run_repeats(&cluster, &config, &job, 60, 2);
        let (count, volume, per_flow) = component_stats(&runs, Component::Shuffle);
        println!(
            "{reducers:>9} {count:>12.0} {:>14.1} {:>16.1}",
            volume / 1e6,
            per_flow / 1e3
        );
    }
    println!("shape: flow count grows ~linearly with reducers, per-flow size shrinks,\ntotal volume stays ~constant.");

    heading("Figure 6b: replication factor vs HDFS write traffic (TeraSort, 8 GiB)");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "replication", "write MB", "shuffle MB", "read MB"
    );
    for replication in [1u16, 2, 3] {
        let config = default_config().with_replication(replication);
        let runs = run_repeats(&cluster, &config, &job, 80, 2);
        let (_, write, _) = component_stats(&runs, Component::HdfsWrite);
        let (_, shuffle, _) = component_stats(&runs, Component::Shuffle);
        let (_, read, _) = component_stats(&runs, Component::HdfsRead);
        println!(
            "{replication:>12} {:>14.1} {:>14.1} {:>14.1}",
            write / 1e6,
            shuffle / 1e6,
            read / 1e6
        );
    }
    println!(
        "shape: write traffic steps up with each extra replica ((r-1) pipeline\n\
         hops per block); shuffle is unaffected. Read traffic *falls* as\n\
         replication rises — more replicas mean better map locality, a real\n\
         Hadoop coupling the simulator reproduces."
    );

    heading("Figure 6c: block size vs HDFS flow structure (TeraSort, 8 GiB)");
    println!(
        "{:>10} {:>8} {:>12} {:>16} {:>12}",
        "block MiB", "maps", "read flows", "mean read MB", "makespan"
    );
    for block_mib in [64u64, 128, 256] {
        let config = default_config().with_block_bytes(block_mib << 20);
        let runs = run_repeats(&cluster, &config, &job, 120, 2);
        let (count, _, per_flow) = component_stats(&runs, Component::HdfsRead);
        let maps = runs[0].counters.maps;
        let makespan = mean(
            &runs
                .iter()
                .map(|r| r.duration.as_secs_f64())
                .collect::<Vec<_>>(),
        );
        println!(
            "{block_mib:>10} {maps:>8} {count:>12.1} {:>16.1} {:>11.1}s",
            per_flow / 1e6,
            makespan
        );
    }
    println!(
        "shape: halving the block size doubles the map count and halves the\n\
         per-flow HDFS transfer size — block size sets the data-plane flow\n\
         granularity."
    );
}
