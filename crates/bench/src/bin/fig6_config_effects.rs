//! Figure 6 \[R\]: effect of cluster configuration on traffic.
//!
//! TeraSort at 8 GiB under (a) a reducer-count sweep and (b) a
//! replication-factor sweep. Reducer count reshapes the shuffle — many
//! more, smaller flows at the same total volume; replication multiplies
//! HDFS write traffic while leaving the shuffle untouched.
//!
//! All three sweeps are assembled into one matrix and run through the
//! experiment runner, so the sweep points execute in parallel.

use keddah_bench::{default_config, gib, heading, jobs_from_env, runner};
use keddah_core::runner::{CellResult, MatrixCell};
use keddah_flowcap::Component;
use keddah_hadoop::Workload;

fn component_stats(result: &CellResult, c: Component) -> (f64, f64, f64) {
    let count = result.mean_component_flows(c);
    let volume = result.mean_component_bytes(c);
    (count, volume, volume / count.max(1.0))
}

fn main() {
    let input = gib(8);
    let reducer_sweep = [2u32, 4, 8, 16, 32];
    let replication_sweep = [1u16, 2, 3];
    let block_sweep = [64u64, 128, 256];

    let mut cells = Vec::new();
    for &reducers in &reducer_sweep {
        let config = default_config().with_reducers(reducers);
        cells.push(MatrixCell::new(Workload::TeraSort, input, config, 2));
    }
    for &replication in &replication_sweep {
        let config = default_config().with_replication(replication);
        cells.push(MatrixCell::new(Workload::TeraSort, input, config, 2));
    }
    for &block_mib in &block_sweep {
        let config = default_config().with_block_bytes(block_mib << 20);
        cells.push(MatrixCell::new(Workload::TeraSort, input, config, 2));
    }
    let results = runner().run_matrix(&cells, jobs_from_env());
    let (sweep_a, rest) = results.split_at(reducer_sweep.len());
    let (sweep_b, sweep_c) = rest.split_at(replication_sweep.len());

    heading("Figure 6a: reducer count vs shuffle structure (TeraSort, 8 GiB)");
    println!(
        "{:>9} {:>12} {:>14} {:>16}",
        "reducers", "flows", "total MB", "mean flow KB"
    );
    for (&reducers, result) in reducer_sweep.iter().zip(sweep_a) {
        let (count, volume, per_flow) = component_stats(result, Component::Shuffle);
        println!(
            "{reducers:>9} {count:>12.0} {:>14.1} {:>16.1}",
            volume / 1e6,
            per_flow / 1e3
        );
    }
    println!("shape: flow count grows ~linearly with reducers, per-flow size shrinks,\ntotal volume stays ~constant.");

    heading("Figure 6b: replication factor vs HDFS write traffic (TeraSort, 8 GiB)");
    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "replication", "write MB", "shuffle MB", "read MB"
    );
    for (&replication, result) in replication_sweep.iter().zip(sweep_b) {
        let (_, write, _) = component_stats(result, Component::HdfsWrite);
        let (_, shuffle, _) = component_stats(result, Component::Shuffle);
        let (_, read, _) = component_stats(result, Component::HdfsRead);
        println!(
            "{replication:>12} {:>14.1} {:>14.1} {:>14.1}",
            write / 1e6,
            shuffle / 1e6,
            read / 1e6
        );
    }
    println!(
        "shape: write traffic steps up with each extra replica ((r-1) pipeline\n\
         hops per block); shuffle is unaffected. Read traffic *falls* as\n\
         replication rises — more replicas mean better map locality, a real\n\
         Hadoop coupling the simulator reproduces."
    );

    heading("Figure 6c: block size vs HDFS flow structure (TeraSort, 8 GiB)");
    println!(
        "{:>10} {:>8} {:>12} {:>16} {:>12}",
        "block MiB", "maps", "read flows", "mean read MB", "makespan"
    );
    for (&block_mib, result) in block_sweep.iter().zip(sweep_c) {
        let (count, _, per_flow) = component_stats(result, Component::HdfsRead);
        let maps = result.runs[0].maps;
        let makespan = result.mean_duration_secs();
        println!(
            "{block_mib:>10} {maps:>8} {count:>12.1} {:>16.1} {:>11.1}s",
            per_flow / 1e6,
            makespan
        );
    }
    println!(
        "shape: halving the block size doubles the map count and halves the\n\
         per-flow HDFS transfer size — block size sets the data-plane flow\n\
         granularity."
    );
}
