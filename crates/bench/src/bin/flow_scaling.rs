//! Flow-count scaling bench: incremental vs full-recompute allocation.
//!
//! Sweeps 1k/10k/100k concurrent flows through the fluid engine in open
//! loop (static arrivals) and closed loop (completion-chained arrivals),
//! under both the incremental [`FairShareState`] allocator and the forced
//! full-recompute baseline (`SimOptions::full_recompute`, the pre-
//! incremental engine's behaviour). Results are identical by construction
//! — the sweep measures events/second only — and land in
//! `BENCH_netsim.json` next to the committed baseline.
//!
//! The traffic is rack-local adjacent-pair flows on a 16x16 leaf-spine:
//! every (src, src+1) pair forms its own two-link component, so arrivals
//! and departures touch small disjoint components — the regime the
//! incremental allocator exists for, and the shape of Keddah's
//! rack-affine shuffle placement under many concurrent jobs.
//!
//! Modes:
//! * default — full sweep including 100k flows (the full-recompute
//!   baseline stops at 10k; at 100k it needs hours);
//! * `KEDDAH_SMOKE=1` — 1k/10k only, for CI;
//! * `KEDDAH_BENCH_CHECK=1` — before overwriting `BENCH_netsim.json`,
//!   compare against it and exit non-zero if the open-loop 10k speedup
//!   regressed by more than 25%.

use std::time::Instant;

use criterion::{black_box, BenchmarkId, Criterion};
use keddah_bench::{heading, smoke};
use keddah_des::SimTime;
use keddah_netsim::{
    simulate, simulate_source, FairShareState, FlowId, FlowResult, FlowSpec, HostId, SimOptions,
    SimReport, Topology, TrafficSource,
};
use serde::{Deserialize, Serialize};

/// Racks and hosts per rack of the bench fabric.
const RACKS: u32 = 16;
const PER_RACK: u32 = 16;

/// Fraction of the baseline open-loop 10k speedup below which the
/// `KEDDAH_BENCH_CHECK` gate fails (a >25% regression).
const REGRESSION_FLOOR: f64 = 0.75;

fn fabric() -> Topology {
    Topology::leaf_spine(RACKS, PER_RACK, 4, 1e9, 2.0)
}

/// Deterministic rack-local traffic: flow `i` runs between adjacent
/// hosts of rack `i % RACKS`, so concurrent flows split into one
/// two-link component per (src, dst) pair.
fn pair_local_flows(n: usize, bytes: u64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            let rack = i as u32 % RACKS;
            let slot = (i as u32 / RACKS) % PER_RACK;
            let src = rack * PER_RACK + slot;
            let dst = rack * PER_RACK + (slot + 1) % PER_RACK;
            FlowSpec {
                src: HostId(src),
                dst: HostId(dst),
                // Spread sizes a little so completions don't all tie.
                bytes: bytes + (i as u64 % 7) * 65_536,
                start: SimTime::from_nanos(i as u64 * 1_000),
                tag: rack,
            }
        })
        .collect()
}

/// Closed-loop traffic: `n` chains run concurrently; each completion
/// releases the next hop of its chain (direction reversed, staying
/// rack-local) until `depth` flows have run.
struct ChainSource {
    heads: Vec<FlowSpec>,
    /// Hops left per injected flow, indexed by injection order.
    hops_left: Vec<u32>,
    depth: u32,
}

impl ChainSource {
    fn new(n: usize, depth: u32, bytes: u64) -> ChainSource {
        ChainSource {
            heads: pair_local_flows(n, bytes),
            hops_left: Vec::new(),
            depth,
        }
    }
}

impl TrafficSource for ChainSource {
    fn on_start(&mut self) -> Vec<FlowSpec> {
        let heads = std::mem::take(&mut self.heads);
        self.hops_left = vec![self.depth - 1; heads.len()];
        heads
    }

    fn on_flow_complete(&mut self, id: FlowId, result: &FlowResult) -> Vec<FlowSpec> {
        let left = self.hops_left[id.0];
        if left == 0 {
            return Vec::new();
        }
        let parent = result.spec;
        self.hops_left.push(left - 1);
        vec![FlowSpec {
            src: parent.dst,
            dst: parent.src,
            bytes: parent.bytes,
            start: result.finish,
            tag: parent.tag,
        }]
    }
}

/// One timed sweep cell of `BENCH_netsim.json`.
#[derive(Debug, Serialize, Deserialize)]
struct Case {
    /// `open` or `closed`.
    workload: String,
    /// `incremental` or `full`.
    allocator: String,
    /// Target concurrent flow count.
    flows: usize,
    /// Flows actually simulated (closed loop runs `depth` per chain).
    total_flows: usize,
    events: u64,
    peak_active: usize,
    elapsed_secs: f64,
    events_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    bench: String,
    mode: String,
    topology: String,
    /// Open-loop 10k-flow events/sec, incremental over full-recompute —
    /// the headline number the CI regression gate watches.
    speedup_open_10k: f64,
    cases: Vec<Case>,
}

fn options(full_recompute: bool) -> SimOptions {
    SimOptions {
        full_recompute,
        ..SimOptions::default()
    }
}

fn timed(label: &str, flows: usize, allocator: &str, run: impl FnOnce() -> SimReport) -> Case {
    let start = Instant::now();
    let report = run();
    let elapsed = start.elapsed().as_secs_f64();
    let case = Case {
        workload: label.to_string(),
        allocator: allocator.to_string(),
        flows,
        total_flows: report.results.len(),
        events: report.events,
        peak_active: report.peak_active,
        elapsed_secs: elapsed,
        events_per_sec: report.events as f64 / elapsed.max(1e-9),
    };
    println!(
        "{label:>6} {allocator:>12} {flows:>7} flows: {:>8} events in {elapsed:>8.3}s \
         ({:>12.0} events/s, peak {})",
        case.events, case.events_per_sec, case.peak_active
    );
    case
}

/// Criterion micro-group: allocator churn on a small fabric, insert and
/// retire every flow once, incremental vs from-scratch refill.
fn bench_allocator_churn(c: &mut Criterion) {
    let topo = Topology::leaf_spine(4, 8, 2, 1e9, 2.0);
    let caps = topo.capacities();
    let flows = pair_local_flows_on(256, &topo);
    let mut group = c.benchmark_group("fair_share_churn");
    group.sample_size(if smoke() { 2 } else { 10 });
    for (name, full) in [("incremental", false), ("full_recompute", true)] {
        group.bench_with_input(BenchmarkId::new(name, flows.len()), &flows, |b, flows| {
            b.iter(|| {
                let mut state = FairShareState::new(caps.clone(), 10e9).with_full_recompute(full);
                let ids: Vec<_> = flows.iter().map(|f| state.insert_flow(f)).collect();
                for id in ids {
                    state.remove_flow(id);
                }
                black_box(state.solves())
            });
        });
    }
    group.finish();
}

/// Routed link lists for `n` adjacent-pair flows on `topo` (4 racks x 8
/// hosts in the churn group).
fn pair_local_flows_on(n: usize, topo: &Topology) -> Vec<Vec<u32>> {
    let mut router = keddah_netsim::RouteCache::warmed(topo);
    (0..n)
        .map(|i| {
            let rack = i as u32 % 4;
            let slot = (i as u32 / 4) % 8;
            let src = rack * 8 + slot;
            let dst = rack * 8 + (slot + 1) % 8;
            router
                .route(HostId(src), HostId(dst), i as u64)
                .into_iter()
                .map(|l| l.0)
                .collect()
        })
        .collect()
}

fn main() {
    let smoke = smoke();
    let mode = if smoke { "smoke" } else { "full" };
    heading(&format!("flow_scaling: allocator scaling sweep ({mode})"));

    let mut criterion = Criterion::default().configure_from_args();
    bench_allocator_churn(&mut criterion);
    criterion.final_summary();

    let topo = fabric();
    let sizes: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    // The full-recompute baseline is cubic-ish in concurrency; past 10k
    // it needs hours, so the sweep caps it there (documented in the
    // README performance table).
    const FULL_CAP: usize = 10_000;

    println!();
    let mut cases = Vec::new();
    for &n in sizes {
        // Bigger sweeps shrink per-flow payload so simulated time — and
        // event count — stays proportional to the flow count.
        let bytes = (4 << 20) / (n / 1_000).max(1) as u64 + (1 << 20);
        for full in [false, true] {
            if full && n > FULL_CAP {
                continue;
            }
            let allocator = if full { "full" } else { "incremental" };
            let flows = pair_local_flows(n, bytes);
            cases.push(timed("open", n, allocator, || {
                simulate(&topo, &flows, options(full))
            }));
            cases.push(timed("closed", n, allocator, || {
                let mut source = ChainSource::new(n, 2, bytes / 2);
                simulate_source(&topo, &mut source, options(full))
            }));
        }
    }

    let rate = |workload: &str, allocator: &str, flows: usize| {
        cases
            .iter()
            .find(|c| c.workload == workload && c.allocator == allocator && c.flows == flows)
            .map(|c| c.events_per_sec)
    };
    let speedup = match (
        rate("open", "incremental", 10_000),
        rate("open", "full", 10_000),
    ) {
        (Some(inc), Some(full)) => inc / full,
        _ => 0.0,
    };
    println!("\nopen-loop 10k speedup (incremental / full): {speedup:.2}x");

    let report = BenchReport {
        bench: "flow_scaling".to_string(),
        mode: mode.to_string(),
        topology: format!("leaf_spine({RACKS}x{PER_RACK}, 4 spines, 2:1)"),
        speedup_open_10k: speedup,
        cases,
    };

    let path = "BENCH_netsim.json";
    let check = std::env::var("KEDDAH_BENCH_CHECK").is_ok_and(|v| v != "0");
    let mut regressed = false;
    if check {
        match std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str::<BenchReport>(&s).ok())
        {
            Some(baseline) if baseline.speedup_open_10k > 0.0 => {
                let floor = REGRESSION_FLOOR * baseline.speedup_open_10k;
                println!(
                    "regression gate: speedup {:.2}x vs baseline {:.2}x (floor {:.2}x)",
                    speedup, baseline.speedup_open_10k, floor
                );
                regressed = speedup < floor;
            }
            _ => println!("regression gate: no committed baseline with a 10k speedup; skipping"),
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_netsim.json");
    println!("wrote {path}");

    if regressed {
        eprintln!("FAIL: open-loop 10k speedup regressed by more than 25% vs committed baseline");
        std::process::exit(1);
    }
}
