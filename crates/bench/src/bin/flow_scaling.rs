//! Flow-count scaling bench: bundled vs per-flow vs full-recompute
//! allocation.
//!
//! Sweeps 1k/10k/100k/1M concurrent flows through the fluid engine in
//! open loop (static arrivals) and closed loop (completion-chained
//! arrivals), under three allocator shapes:
//!
//! * `incremental` — flow bundles + incremental [`FairShareState`]
//!   (the default engine);
//! * `no_aggregate` — singleton bundles (`SimOptions::aggregate =
//!   false`, the `KEDDAH_NO_AGGREGATE` oracle): the pre-bundle engine,
//!   i.e. the 100k-flow cliff this bench exists to pin;
//! * `full` — singleton bundles plus forced full progressive filling on
//!   every event (`SimOptions::full_recompute`): the pre-incremental
//!   baseline.
//!
//! Results are identical across all three by construction — the sweep
//! measures events/second only — and land in `BENCH_netsim.json` next
//! to the committed baseline. Cells too slow to time (the full
//! baseline past 10k, the per-flow allocator at 1M) are emitted as
//! explicit `"skipped": true` entries with a reason, which the
//! regression gate treats as non-regressions rather than missing keys.
//!
//! The traffic is rack-local adjacent-pair flows on a 16x16 leaf-spine:
//! every (src, src+1) pair forms its own two-link component, so arrivals
//! and departures touch small disjoint components — the regime the
//! incremental allocator exists for, and the shape of Keddah's
//! rack-affine shuffle placement under many concurrent jobs. Any flow
//! count collapses onto a few hundred distinct paths, which is what
//! bundling exploits.
//!
//! Modes:
//! * default — full sweep including 100k and 1M flows;
//! * `KEDDAH_SMOKE=1` — 1k/10k only, for CI;
//! * `KEDDAH_BENCH_CHECK=1` — before overwriting `BENCH_netsim.json`,
//!   compare against it and exit non-zero if the open-loop 10k speedup
//!   regressed, or if any timed cell's `events_per_sec` fell more than
//!   `KEDDAH_BENCH_TOLERANCE` (default 0.25, i.e. 25%) below its
//!   committed baseline value.

use std::time::Instant;

use criterion::{black_box, BenchmarkId, Criterion};
use keddah_bench::{heading, smoke};
use keddah_des::SimTime;
use keddah_netsim::{
    simulate, simulate_source, FairShareState, FlowId, FlowResult, FlowSpec, HostId, SimOptions,
    SimReport, Topology, TrafficSource,
};
use serde::{Deserialize, Serialize};

/// Racks and hosts per rack of the bench fabric.
const RACKS: u32 = 16;
const PER_RACK: u32 = 16;

/// Default fraction of a baseline cell's events/sec a fresh run may lose
/// before the `KEDDAH_BENCH_CHECK` gate fails (a >25% regression);
/// override with `KEDDAH_BENCH_TOLERANCE`.
const DEFAULT_TOLERANCE: f64 = 0.25;

/// The allocator shapes swept: (name, aggregate, full_recompute).
const ALLOCATORS: &[(&str, bool, bool)] = &[
    ("incremental", true, false),
    ("no_aggregate", false, false),
    ("full", false, true),
];

fn fabric() -> Topology {
    Topology::leaf_spine(RACKS, PER_RACK, 4, 1e9, 2.0)
}

/// Deterministic rack-local traffic: flow `i` runs between adjacent
/// hosts of rack `i % RACKS`, so concurrent flows split into one
/// two-link component per (src, dst) pair.
fn pair_local_flows(n: usize, bytes: u64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| {
            let rack = i as u32 % RACKS;
            let slot = (i as u32 / RACKS) % PER_RACK;
            let src = rack * PER_RACK + slot;
            let dst = rack * PER_RACK + (slot + 1) % PER_RACK;
            FlowSpec {
                src: HostId(src),
                dst: HostId(dst),
                // Spread sizes a little so completions don't all tie.
                bytes: bytes + (i as u64 % 7) * 65_536,
                start: SimTime::from_nanos(i as u64 * 1_000),
                tag: rack,
            }
        })
        .collect()
}

/// Closed-loop traffic: `n` chains run concurrently; each completion
/// releases the next hop of its chain (direction reversed, staying
/// rack-local) until `depth` flows have run.
struct ChainSource {
    heads: Vec<FlowSpec>,
    /// Hops left per injected flow, indexed by injection order.
    hops_left: Vec<u32>,
    depth: u32,
}

impl ChainSource {
    fn new(n: usize, depth: u32, bytes: u64) -> ChainSource {
        ChainSource {
            heads: pair_local_flows(n, bytes),
            hops_left: Vec::new(),
            depth,
        }
    }
}

impl TrafficSource for ChainSource {
    fn on_start(&mut self) -> Vec<FlowSpec> {
        let heads = std::mem::take(&mut self.heads);
        self.hops_left = vec![self.depth - 1; heads.len()];
        heads
    }

    fn on_flow_complete(&mut self, id: FlowId, result: &FlowResult) -> Vec<FlowSpec> {
        let left = self.hops_left[id.0];
        if left == 0 {
            return Vec::new();
        }
        let parent = result.spec;
        self.hops_left.push(left - 1);
        vec![FlowSpec {
            src: parent.dst,
            dst: parent.src,
            bytes: parent.bytes,
            start: result.finish,
            tag: parent.tag,
        }]
    }
}

/// One sweep cell of `BENCH_netsim.json`: either a timed measurement or
/// an explicitly skipped cell carrying a reason. The regression gate
/// treats skipped cells as non-regressions, never as missing keys.
/// Every field is always serialized (the vendored serde derive has no
/// `skip_serializing_if`): timed cells carry `"skipped": false` and a
/// `null` reason, skipped cells carry `null` timing fields.
#[derive(Debug, Serialize, Deserialize)]
struct Case {
    /// `open` or `closed`.
    workload: String,
    /// `incremental`, `no_aggregate` or `full`.
    allocator: String,
    /// Target concurrent flow count.
    flows: usize,
    /// True for cells deliberately left untimed.
    skipped: bool,
    /// Why a skipped cell was skipped.
    reason: Option<String>,
    /// Flows actually simulated (closed loop runs `depth` per chain).
    total_flows: Option<usize>,
    events: Option<u64>,
    peak_active: Option<usize>,
    elapsed_secs: Option<f64>,
    events_per_sec: Option<f64>,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    bench: String,
    mode: String,
    topology: String,
    /// Open-loop 10k-flow events/sec, incremental over full-recompute —
    /// the headline number the CI regression gate watches.
    speedup_open_10k: f64,
    cases: Vec<Case>,
}

fn options(aggregate: bool, full_recompute: bool) -> SimOptions {
    SimOptions {
        aggregate,
        full_recompute,
        ..SimOptions::default()
    }
}

/// The reason a (allocator, workload, size) cell is not timed, if any.
/// These are the cells the bench used to omit silently; they now land
/// in the JSON as explicit skips.
fn cap_reason(allocator: &str, workload: &str, n: usize) -> Option<String> {
    match allocator {
        "full" if n > 10_000 => Some(
            "full-recompute re-fills every entry on every event; past 10k flows one cell \
             needs hours"
                .to_string(),
        ),
        "no_aggregate" if n > 100_000 => Some(
            "per-flow allocation at 1M flows needs hours — the cliff the bundled rows remove"
                .to_string(),
        ),
        "no_aggregate" if workload == "closed" && n > 10_000 => Some(
            "per-flow closed loop at 100k flows takes ~6 minutes; the open-loop row covers \
             the scale point"
                .to_string(),
        ),
        _ => None,
    }
}

fn timed(label: &str, flows: usize, allocator: &str, run: impl FnOnce() -> SimReport) -> Case {
    let start = Instant::now();
    let report = run();
    let elapsed = start.elapsed().as_secs_f64();
    let events_per_sec = report.events as f64 / elapsed.max(1e-9);
    println!(
        "{label:>6} {allocator:>12} {flows:>8} flows: {:>9} events in {elapsed:>8.3}s \
         ({:>12.0} events/s, peak {})",
        report.events, events_per_sec, report.peak_active
    );
    Case {
        workload: label.to_string(),
        allocator: allocator.to_string(),
        flows,
        skipped: false,
        reason: None,
        total_flows: Some(report.results.len()),
        events: Some(report.events),
        peak_active: Some(report.peak_active),
        elapsed_secs: Some(elapsed),
        events_per_sec: Some(events_per_sec),
    }
}

fn skipped_case(label: &str, flows: usize, allocator: &str, reason: String) -> Case {
    println!("{label:>6} {allocator:>12} {flows:>8} flows: skipped ({reason})");
    Case {
        workload: label.to_string(),
        allocator: allocator.to_string(),
        flows,
        skipped: true,
        reason: Some(reason),
        total_flows: None,
        events: None,
        peak_active: None,
        elapsed_secs: None,
        events_per_sec: None,
    }
}

/// Criterion micro-group: allocator churn on a small fabric, insert and
/// retire every flow once, incremental vs from-scratch refill.
fn bench_allocator_churn(c: &mut Criterion) {
    let topo = Topology::leaf_spine(4, 8, 2, 1e9, 2.0);
    let caps = topo.capacities();
    let flows = pair_local_flows_on(256, &topo);
    let mut group = c.benchmark_group("fair_share_churn");
    group.sample_size(if smoke() { 2 } else { 10 });
    for (name, full) in [("incremental", false), ("full_recompute", true)] {
        group.bench_with_input(BenchmarkId::new(name, flows.len()), &flows, |b, flows| {
            b.iter(|| {
                let mut state = FairShareState::new(caps.clone(), 10e9).with_full_recompute(full);
                let ids: Vec<_> = flows.iter().map(|f| state.insert_flow(f)).collect();
                for id in ids {
                    state.remove_flow(id);
                }
                black_box(state.solves())
            });
        });
    }
    group.finish();
}

/// Routed link lists for `n` adjacent-pair flows on `topo` (4 racks x 8
/// hosts in the churn group).
fn pair_local_flows_on(n: usize, topo: &Topology) -> Vec<Vec<u32>> {
    let mut router = keddah_netsim::RouteCache::warmed(topo);
    (0..n)
        .map(|i| {
            let rack = i as u32 % 4;
            let slot = (i as u32 / 4) % 8;
            let src = rack * 8 + slot;
            let dst = rack * 8 + (slot + 1) % 8;
            router
                .route(HostId(src), HostId(dst), i as u64)
                .into_iter()
                .map(|l| l.0)
                .collect()
        })
        .collect()
}

/// Per-cell regression diff: every timed cell in `current` whose key
/// exists timed in `baseline` must hold at least `1 - tolerance` of the
/// baseline events/sec. Skipped cells on either side are
/// non-regressions. Returns the failing cell descriptions.
fn diff_cells(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for c in &current.cases {
        let Some(cur_rate) = c.events_per_sec else {
            continue; // skipped now: nothing to hold
        };
        let Some(b) = baseline
            .cases
            .iter()
            .find(|b| b.workload == c.workload && b.allocator == c.allocator && b.flows == c.flows)
        else {
            continue; // new scale point: no baseline yet
        };
        let Some(base_rate) = b.events_per_sec else {
            println!(
                "  gate: {} {} {} was skipped in baseline ({}); timing it now is an \
                 improvement, not a regression",
                c.workload,
                c.allocator,
                c.flows,
                b.reason.as_deref().unwrap_or("no reason recorded")
            );
            continue;
        };
        let floor = (1.0 - tolerance) * base_rate;
        let verdict = if cur_rate < floor { "FAIL" } else { "ok" };
        println!(
            "  gate: {:>6} {:>12} {:>8}: {:>12.0} ev/s vs baseline {:>12.0} (floor {:>12.0}) {}",
            c.workload, c.allocator, c.flows, cur_rate, base_rate, floor, verdict
        );
        if cur_rate < floor {
            failures.push(format!(
                "{} {} {} flows: {:.0} ev/s < floor {:.0} (baseline {:.0})",
                c.workload, c.allocator, c.flows, cur_rate, floor, base_rate
            ));
        }
    }
    failures
}

fn main() {
    let smoke = smoke();
    let mode = if smoke { "smoke" } else { "full" };
    heading(&format!("flow_scaling: allocator scaling sweep ({mode})"));

    let mut criterion = Criterion::default().configure_from_args();
    bench_allocator_churn(&mut criterion);
    criterion.final_summary();

    let topo = fabric();
    let sizes: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };

    println!();
    let mut cases = Vec::new();
    for &n in sizes {
        // Bigger sweeps shrink per-flow payload so simulated time — and
        // event count — stays proportional to the flow count.
        let bytes = (4 << 20) / (n / 1_000).max(1) as u64 + (1 << 20);
        for &(allocator, aggregate, full) in ALLOCATORS {
            for workload in ["open", "closed"] {
                if let Some(reason) = cap_reason(allocator, workload, n) {
                    cases.push(skipped_case(workload, n, allocator, reason));
                    continue;
                }
                cases.push(match workload {
                    "open" => {
                        let flows = pair_local_flows(n, bytes);
                        timed("open", n, allocator, || {
                            simulate(&topo, &flows, options(aggregate, full))
                        })
                    }
                    _ => timed("closed", n, allocator, || {
                        let mut source = ChainSource::new(n, 2, bytes / 2);
                        simulate_source(&topo, &mut source, options(aggregate, full))
                    }),
                });
            }
        }
    }

    let rate = |workload: &str, allocator: &str, flows: usize| {
        cases
            .iter()
            .find(|c| c.workload == workload && c.allocator == allocator && c.flows == flows)
            .and_then(|c| c.events_per_sec)
    };
    let speedup = match (
        rate("open", "incremental", 10_000),
        rate("open", "full", 10_000),
    ) {
        (Some(inc), Some(full)) => inc / full,
        _ => 0.0,
    };
    println!("\nopen-loop 10k speedup (incremental / full): {speedup:.2}x");

    let report = BenchReport {
        bench: "flow_scaling".to_string(),
        mode: mode.to_string(),
        topology: format!("leaf_spine({RACKS}x{PER_RACK}, 4 spines, 2:1)"),
        speedup_open_10k: speedup,
        cases,
    };

    let path = "BENCH_netsim.json";
    let check = std::env::var("KEDDAH_BENCH_CHECK").is_ok_and(|v| v != "0");
    let tolerance = std::env::var("KEDDAH_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(DEFAULT_TOLERANCE);
    let mut failures = Vec::new();
    if check {
        match std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str::<BenchReport>(&s).ok())
        {
            Some(baseline) => {
                println!("\nregression gate (tolerance {:.0}%):", tolerance * 100.0);
                if baseline.speedup_open_10k > 0.0 && speedup > 0.0 {
                    let floor = (1.0 - tolerance) * baseline.speedup_open_10k;
                    println!(
                        "  gate: open-loop 10k speedup {:.2}x vs baseline {:.2}x (floor {:.2}x) {}",
                        speedup,
                        baseline.speedup_open_10k,
                        floor,
                        if speedup < floor { "FAIL" } else { "ok" }
                    );
                    if speedup < floor {
                        failures.push(format!(
                            "open-loop 10k speedup {speedup:.2}x < floor {floor:.2}x"
                        ));
                    }
                }
                failures.extend(diff_cells(&report, &baseline, tolerance));
            }
            None => println!("regression gate: no parseable committed baseline; skipping"),
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, json + "\n").expect("write BENCH_netsim.json");
    println!("wrote {path}");

    if !failures.is_empty() {
        eprintln!(
            "FAIL: {} cell(s) regressed more than {:.0}% vs committed baseline:",
            failures.len(),
            tolerance * 100.0
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
