//! Table 3 \[R\]: model validation — generated vs captured traffic.
//!
//! For every workload: train a Keddah model on 10 runs, hold out 5
//! further runs with different seeds, generate 10 synthetic jobs, and
//! report the per-component two-sample KS distance plus volume and
//! flow-count errors against the held-out captures.

use keddah_bench::{default_config, gib, heading, testbed};
use keddah_core::pipeline::Keddah;
use keddah_core::validate::validate_model;
use keddah_hadoop::{JobSpec, Workload};

fn main() {
    heading("Table 3: model validation against held-out captures (8 GiB)");
    println!(
        "{:<10} {:<11} {:>8} {:>8} {:>10} {:>10}",
        "workload", "component", "KS", "p", "vol err", "count err"
    );
    let cluster = testbed();
    let config = default_config();
    // Paper rows only, in canonical order: `wi` seeds each campaign, so
    // appended workloads must never shift these indices.
    for (wi, &workload) in Workload::PAPER.iter().enumerate() {
        let job = JobSpec::new(workload, gib(8));
        let base = 10_000 * wi as u64;
        let train = Keddah::capture(&cluster, &config, &job, 10, 400 + base);
        let holdout = Keddah::capture(&cluster, &config, &job, 5, 900 + base);
        let model = Keddah::fit(&train).expect("workload models");
        let report = validate_model(&model, &holdout, 10, 7).expect("validation runs");
        for row in &report.components {
            println!(
                "{:<10} {:<11} {:>8.3} {:>8.3} {:>9.1}% {:>9.1}%",
                workload.name(),
                row.component.name(),
                row.ks_statistic,
                row.ks_p_value,
                row.volume_error * 100.0,
                row.count_error * 100.0
            );
        }
    }
    println!(
        "\nPaper shape: generated traffic matches held-out captures with small KS\n\
         distances and volume errors of a few percent across components."
    );
}
