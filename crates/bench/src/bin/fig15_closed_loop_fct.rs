//! Figure 15 \[R\] *(extension)*: open- vs closed-loop replay.
//!
//! Open-loop replay starts every flow at its captured time, so when the
//! replay fabric is slower than the capture fabric the dependency
//! structure of the job is violated: shuffles begin before their map
//! inputs have been delivered, write pipelines race their own upstream
//! hops. Closed-loop replay ([`keddah_core::source::TraceSource`])
//! releases dependent flows only when their parents complete *in the
//! simulation*, so congestion propagates through the job's causal
//! structure — dependent flows start later, the fabric sees lower
//! instantaneous contention, and the makespan stretches the way a real
//! re-run would.
//!
//! This experiment replays the same capture under both disciplines on a
//! heavily oversubscribed fabric and compares per-component FCTs and
//! dependent-flow start shifts.

use keddah_bench::{cdf_rows, default_config, gib, heading, smoke, testbed};
use keddah_core::pipeline::Keddah;
use keddah_core::replay::{replay_trace, replay_trace_closed};
use keddah_core::source::TraceSource;
use keddah_core::validate::compare_replays;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};
use keddah_netsim::{SimOptions, Topology};

const QUANTILES: &[f64] = &[0.1, 0.25, 0.5, 0.75, 0.9, 0.99];

fn main() {
    let input = if smoke() { gib(1) } else { gib(8) };
    heading(&format!(
        "Figure 15: open vs closed loop replay (TeraSort {} GiB, 4:1 leaf-spine)",
        input >> 30
    ));
    let cluster = testbed();
    let config = default_config();
    let job = JobSpec::new(Workload::TeraSort, input);
    let trace = &Keddah::capture(&cluster, &config, &job, 1, 1500)[0];

    // The capture testbed ran at 1 Gb/s non-blocking; replay on a 4x
    // oversubscribed fabric so the disciplines diverge.
    let topo = Topology::leaf_spine(6, 4, 3, 1e9, 4.0);
    let opts = SimOptions {
        mouse_threshold: 10_000,
        ..SimOptions::default()
    };

    let source = TraceSource::new(trace, &topo).expect("trace fits topology");
    println!(
        "{} flows, {} with inferred dependency edges",
        source.flow_count(),
        source.dependent_count()
    );

    let open = replay_trace(trace, &topo, opts).expect("open-loop replay");
    let closed = replay_trace_closed(trace, &topo, opts).expect("closed-loop replay");

    for row in compare_replays(&open, &closed).expect("both replays have flows") {
        println!(
            "\n{:<10} 2-sample KS = {:.3}  mean FCT open {:.4} s, closed {:.4} s",
            row.component.name(),
            row.ks_statistic,
            row.mean_fct_a,
            row.mean_fct_b
        );
        let a = &open.fct_by_component[&row.component];
        let b = &closed.fct_by_component[&row.component];
        println!(
            "  {:>6} {:>14} {:>14}",
            "q", "open FCT (s)", "closed FCT (s)"
        );
        let ra = cdf_rows(a, QUANTILES);
        let rb = cdf_rows(b, QUANTILES);
        for (i, &q) in QUANTILES.iter().enumerate() {
            println!("  {:>6.2} {:>14.4} {:>14.4}", q, ra[i].1, rb[i].1);
        }
    }

    // How far congestion pushed dependent starts: per component, mean
    // start-time shift between the disciplines (flows match by injection
    // order within a component because TraceSource injects in capture
    // order).
    println!();
    for &component in Component::DATA {
        let tag_starts = |report: &keddah_core::replay::ReplayReport| -> Vec<f64> {
            let mut starts: Vec<f64> = report
                .sim
                .results
                .iter()
                .filter(|r| keddah_flowcap::Component::ALL[r.spec.tag as usize] == component)
                .map(|r| r.spec.start.as_secs_f64())
                .collect();
            starts.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
            starts
        };
        let so = tag_starts(&open);
        let sc = tag_starts(&closed);
        if so.is_empty() || so.len() != sc.len() {
            continue;
        }
        let shift: f64 = sc.iter().zip(&so).map(|(c, o)| c - o).sum::<f64>() / so.len() as f64;
        println!(
            "{:<10} mean dependent start shift: {:+.3} s over {} flows",
            component.name(),
            shift,
            so.len()
        );
    }
    println!(
        "\nmakespans: open {:.1} s, closed {:.1} s",
        open.makespan_secs(),
        closed.makespan_secs()
    );
    println!(
        "\nPaper shape: on a fabric slower than the capture testbed, closed-loop\n\
         replay delays dependent flows (shuffle, write pipeline) relative to the\n\
         open-loop schedule, stretching the makespan instead of overloading links."
    );
}
