//! Table 2 \[R\]: fitted distribution families per (workload, component).
//!
//! For every workload at the 4 GiB reference point, 10 pooled runs: the
//! selected family, its parameters, and the KS statistic for both flow
//! sizes and flow arrival times — the model card the paper reports.

use keddah_bench::{default_config, gib, heading, testbed};
use keddah_core::pipeline::Keddah;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};

fn main() {
    heading("Table 2: fitted traffic models (8 GiB, 10 runs per workload)");
    println!(
        "{:<10} {:<11} {:>7} | {:<34} {:>6} | {:<28} {:>6}",
        "workload", "component", "flows", "size distribution", "KS", "arrival distribution", "KS"
    );
    let cluster = testbed();
    let config = default_config();
    // Paper rows only, in canonical order: `wi` seeds each campaign, so
    // appended workloads must never shift these indices.
    for (wi, &workload) in Workload::PAPER.iter().enumerate() {
        let seed = 300 + 10_000 * wi as u64;
        let traces = Keddah::capture(&cluster, &config, &JobSpec::new(workload, gib(8)), 10, seed);
        let model = Keddah::fit(&traces).expect("workload models");
        for &component in Component::ALL {
            let Some(cm) = model.component(component) else {
                continue;
            };
            println!(
                "{:<10} {:<11} {:>7.0} | {:<34} {:>6.3} | {:<28} {:>6.3}",
                workload.name(),
                component.name(),
                cm.count.mean,
                cm.size_dist.to_string(),
                cm.size_fit.ks_statistic,
                cm.start_dist.to_string(),
                cm.start_fit.ks_statistic
            );
        }
    }
    println!(
        "\nPaper shape: every modelled component fits some family with a small KS\n\
         distance; different components prefer different families, which is why\n\
         Keddah models them separately."
    );
}
