//! Figure 7 \[R\]: replay fidelity in the network simulator.
//!
//! The end-to-end check of the toolchain: replay (a) the captured
//! testbed trace and (b) Keddah-model-generated traffic through the same
//! simulated fabric, and compare per-component flow completion time
//! CDFs. If the model is faithful, the two replays load the network the
//! same way.

use keddah_bench::{cdf_rows, default_config, gib, heading, testbed};
use keddah_core::pipeline::Keddah;
use keddah_core::replay::{replay_jobs, replay_trace};
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};
use keddah_netsim::{SimOptions, Topology};
use keddah_stat::ks::ks_two_sample;

const QUANTILES: &[f64] = &[0.1, 0.25, 0.5, 0.75, 0.9, 0.99];

fn main() {
    heading("Figure 7: trace replay vs model replay (TeraSort 8 GiB, leaf-spine)");
    let cluster = testbed();
    let config = default_config();
    let job = JobSpec::new(Workload::TeraSort, gib(8));
    let traces = Keddah::capture(&cluster, &config, &job, 5, 500);
    let model = Keddah::fit(&traces).expect("terasort models");

    // 21 hosts needed (20 workers + master): 6 racks x 4 hosts.
    let topo = Topology::leaf_spine(6, 4, 3, 1e9, 1.0);
    let opts = SimOptions {
        mouse_threshold: 10_000,
        ..SimOptions::default()
    };

    let trace_replay = replay_trace(&traces[0], &topo, opts).expect("trace fits topology");
    let model_replay =
        replay_jobs(&[model.generate_job(1)], &topo, opts).expect("job fits topology");

    for &component in Component::DATA {
        let empty = Vec::new();
        let a = trace_replay
            .fct_by_component
            .get(&component)
            .unwrap_or(&empty);
        let b = model_replay
            .fct_by_component
            .get(&component)
            .unwrap_or(&empty);
        if a.is_empty() || b.is_empty() {
            println!("\n{:<10} (absent in one replay)", component.name());
            continue;
        }
        let ks = ks_two_sample(a, b).expect("non-empty samples");
        println!(
            "\n{:<10} trace n={}  model n={}  2-sample KS = {:.3}",
            component.name(),
            a.len(),
            b.len(),
            ks.statistic
        );
        println!(
            "  {:>6} {:>14} {:>14}",
            "q", "trace FCT (s)", "model FCT (s)"
        );
        let ra = cdf_rows(a, QUANTILES);
        let rb = cdf_rows(b, QUANTILES);
        for (i, &q) in QUANTILES.iter().enumerate() {
            println!("  {:>6.2} {:>14.4} {:>14.4}", q, ra[i].1, rb[i].1);
        }
    }
    println!(
        "\nmakespans: trace replay {:.1} s, model replay {:.1} s",
        trace_replay.makespan_secs(),
        model_replay.makespan_secs()
    );

    // Burstiness: index of dispersion of shuffle flow starts (1 s bins).
    // The i.i.d. generator smooths real fetch storms — quantified here.
    let captured_starts = traces[0].component_starts(Component::Shuffle);
    let generated_starts: Vec<f64> = model
        .generate_job(1)
        .flows
        .iter()
        .filter(|f| f.component == Component::Shuffle)
        .map(|f| f.start)
        .collect();
    let iod = |starts: &[f64]| -> f64 {
        let horizon = starts.iter().cloned().fold(1.0, f64::max) + 1.0;
        keddah_stat::series::bin_counts(starts, 1.0, horizon)
            .and_then(|c| keddah_stat::series::index_of_dispersion(&c))
            .unwrap_or(f64::NAN)
    };
    println!(
        "shuffle arrival burstiness (index of dispersion, 1 s bins): captured {:.1}, generated {:.1}",
        iod(&captured_starts),
        iod(&generated_starts)
    );
    println!(
        "\nPaper shape: per-component FCT CDFs of model-generated traffic track\n\
         the replayed capture closely (small KS distances)."
    );
}
