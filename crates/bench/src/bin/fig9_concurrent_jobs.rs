//! Figure 9 \[R\]: concurrent jobs from the model.
//!
//! Multi-tenancy study impossible on the single-tenant testbed: overlay
//! N model-generated TeraSort jobs on a shared fabric and measure how
//! aggregate offered load and shuffle FCTs scale with N.

use keddah_bench::{default_config, gib, heading, mean, percentile, testbed};
use keddah_core::pipeline::Keddah;
use keddah_core::replay::replay_jobs;
use keddah_flowcap::Component;
use keddah_hadoop::{JobSpec, Workload};
use keddah_netsim::{SimOptions, Topology};

fn main() {
    heading("Figure 9: N concurrent generated jobs on one fabric");
    let cluster = testbed();
    let traces = Keddah::capture(
        &cluster,
        &default_config(),
        &JobSpec::new(Workload::TeraSort, gib(4)),
        5,
        700,
    );
    let model = Keddah::fit(&traces).expect("terasort models");
    let topo = Topology::leaf_spine(6, 4, 3, 1e9, 2.0);
    let opts = SimOptions {
        mouse_threshold: 10_000,
        ..SimOptions::default()
    };

    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "jobs", "flows", "offered GB", "mean FCT", "p95 FCT", "makespan"
    );
    for n in [1u32, 2, 4, 8] {
        let jobs = model.generate_jobs(n, 1000, 15.0);
        let offered: f64 = jobs.iter().map(|j| j.total_bytes() as f64).sum::<f64>() / 1e9;
        let report = replay_jobs(&jobs, &topo, opts).expect("jobs fit fabric");
        let shuffle = report
            .fct_by_component
            .get(&Component::Shuffle)
            .cloned()
            .unwrap_or_default();
        println!(
            "{n:>5} {:>10} {offered:>12.2} {:>11.3}s {:>11.3}s {:>11.1}s",
            report.sim.results.len(),
            mean(&shuffle),
            percentile(&shuffle, 0.95),
            report.makespan_secs()
        );
    }
    println!(
        "\nPaper shape: offered load scales linearly with N while FCTs degrade\n\
         super-linearly once the shared core saturates."
    );
}
