//! Shared experiment harness for the table/figure regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! Keddah evaluation (the experiment index lives in `DESIGN.md`). This
//! library holds what they share: the canonical testbed configuration,
//! small formatting helpers, and percentile/series utilities, so every
//! experiment prints comparable output.

use keddah_core::runner::Runner;
use keddah_hadoop::{ClusterSpec, HadoopConfig};

/// The canonical capture testbed used across experiments: 4 racks x 5
/// workers (20 workers + master), 1 Gb/s NICs — the shape of the paper's
/// measurement cluster.
#[must_use]
pub fn testbed() -> ClusterSpec {
    ClusterSpec::racks(4, 5)
}

/// An experiment [`Runner`] on the canonical testbed.
#[must_use]
pub fn runner() -> Runner {
    Runner::new(testbed())
}

/// Worker threads for experiment matrices: `KEDDAH_JOBS` if set,
/// otherwise one per available core. Results never depend on this — the
/// runner's derived seeds make output identical at any width.
#[must_use]
pub fn jobs_from_env() -> usize {
    std::env::var("KEDDAH_JOBS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// True when `KEDDAH_SMOKE` is set (to anything but `0`): experiments
/// shrink to their minimum input size and repeat count so CI can execute
/// one real matrix cell per figure without the full campaign's runtime.
#[must_use]
pub fn smoke() -> bool {
    std::env::var("KEDDAH_SMOKE").is_ok_and(|v| v != "0")
}

/// The default Hadoop configuration every experiment starts from; sweeps
/// override individual fields.
#[must_use]
pub fn default_config() -> HadoopConfig {
    HadoopConfig::default()
}

/// Gibibytes, for input-size sweeps.
#[must_use]
pub fn gib(n: u64) -> u64 {
    n << 30
}

/// Formats bytes as a human-readable decimal quantity.
#[must_use]
pub fn fmt_bytes(bytes: f64) -> String {
    if bytes >= 1e9 {
        format!("{:.2} GB", bytes / 1e9)
    } else if bytes >= 1e6 {
        format!("{:.2} MB", bytes / 1e6)
    } else if bytes >= 1e3 {
        format!("{:.2} KB", bytes / 1e3)
    } else {
        format!("{bytes:.0} B")
    }
}

/// The `p`-th percentile of an unsorted sample (`p` in `[0, 1]`).
/// Returns NaN for an empty sample.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Mean of a sample; NaN when empty.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Prints a figure/table header.
pub fn heading(title: &str) {
    println!("\n=== {title} ===");
}

/// Renders an ECDF as fixed-quantile rows — the text form of a CDF
/// figure: for each listed quantile, the sample value at it.
#[must_use]
pub fn cdf_rows(values: &[f64], quantiles: &[f64]) -> Vec<(f64, f64)> {
    quantiles
        .iter()
        .map(|&q| (q, percentile(values, q)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn fmt_bytes_ranges() {
        assert_eq!(fmt_bytes(500.0), "500 B");
        assert_eq!(fmt_bytes(2_500.0), "2.50 KB");
        assert_eq!(fmt_bytes(3_000_000.0), "3.00 MB");
        assert_eq!(fmt_bytes(1.5e9), "1.50 GB");
    }

    #[test]
    fn cdf_rows_are_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let rows = cdf_rows(&xs, &[0.1, 0.5, 0.9]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].1 <= rows[1].1 && rows[1].1 <= rows[2].1);
    }

    #[test]
    fn testbed_is_twenty_workers() {
        assert_eq!(testbed().worker_count(), 20);
        assert_eq!(runner().cluster().worker_count(), 20);
        default_config().validate().unwrap();
    }

    #[test]
    fn jobs_from_env_is_positive() {
        assert!(jobs_from_env() >= 1);
    }

    #[test]
    fn mean_and_gib() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert_eq!(gib(2), 2 << 30);
    }
}
