//! Observability for the Keddah toolchain: deterministic event tracing
//! plus a metrics registry, zero-cost when disabled.
//!
//! A replay or capture run is a black box between "CLI invoked" and
//! "report printed" — when a golden pin or a byte-conservation invariant
//! breaks, this crate is what localizes it. Two surfaces:
//!
//! * **Tracing** ([`trace`]) — a ring-buffered stream of structured
//!   [`TraceEvent`]s (`{t_nanos, subsystem, kind, flow_id, detail}`)
//!   hooked into the DES engine dispatch and the simulators' state
//!   transitions, written as JSONL;
//! * **Metrics** ([`metrics`]) — counters, gauges and log2-bucketed
//!   histograms keyed by `(subsystem, name)`, snapshotted to a
//!   serializable, mergeable [`MetricsSnapshot`] (the `metrics.json`
//!   artefact `keddah stats` renders).
//!
//! Both hang off one [`Obs`] handle that simulation entry points take by
//! reference. The handle has a hard contract:
//!
//! * **Determinism** — recording never influences simulation state.
//!   Observed entry points produce byte-identical reports whether `Obs`
//!   is enabled, disabled, or absent (pinned by the golden replay corpus
//!   and the `obs_determinism` tests), and trace/metric content derives
//!   only from seeded simulation state — never wall clocks, thread ids,
//!   or allocation addresses.
//! * **Zero cost when disabled** — [`Obs::disabled`] makes every record
//!   call a branch on a `bool` (plus, for deferred detail strings, a
//!   closure that is never invoked). Hot paths keep their pre-obs
//!   profile.
//!
//! # Examples
//!
//! ```
//! use keddah_obs::Obs;
//!
//! let obs = Obs::enabled();
//! let flows = obs.counter("netsim", "flows_started");
//! flows.inc();
//! obs.trace(1_000, "netsim", "flow_arrive", Some(0), || "src=1 dst=2".into());
//! let snap = obs.metrics();
//! assert_eq!(snap.counter("netsim", "flows_started"), 1);
//! assert_eq!(obs.trace_events().len(), 1);
//!
//! let off = Obs::disabled();
//! off.counter("netsim", "flows_started").inc(); // no-op
//! assert!(off.metrics().is_empty());
//! ```

pub mod diff;
pub mod metrics;
pub mod trace;

pub use diff::{MetricsDiff, SubsystemDiff, SummaryShift, ValueDelta};
pub use metrics::{
    log2_bucket, Bucket, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, SubsystemMetrics,
};
pub use trace::{read_jsonl, TraceEvent, Tracer};

use std::sync::Mutex;

/// Default trace ring capacity: enough for a full smoke-scale replay,
/// bounded for a 100k-flow one (drops are counted, never silent).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The observability handle simulation entry points take.
///
/// See the [crate docs](self) for the determinism and zero-cost
/// contract.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    tracer: Mutex<Tracer>,
    registry: MetricsRegistry,
}

impl Obs {
    /// An inert handle: every record call is a no-op behind one branch.
    #[must_use]
    pub fn disabled() -> Obs {
        Obs {
            enabled: false,
            tracer: Mutex::new(Tracer::new(1)),
            registry: MetricsRegistry::default(),
        }
    }

    /// A recording handle with the default trace ring capacity.
    #[must_use]
    pub fn enabled() -> Obs {
        Obs::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A recording handle whose trace ring holds `capacity` events.
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Obs {
        Obs {
            enabled: true,
            tracer: Mutex::new(Tracer::new(capacity)),
            registry: MetricsRegistry::default(),
        }
    }

    /// True when this handle records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a trace event. `detail` is built lazily, so a disabled
    /// handle never pays for string formatting.
    #[inline]
    pub fn trace(
        &self,
        t_nanos: u64,
        subsystem: &str,
        kind: &str,
        flow_id: Option<u64>,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        if let Ok(mut tracer) = self.tracer.lock() {
            tracer.push(TraceEvent {
                t_nanos,
                subsystem: subsystem.to_string(),
                kind: kind.to_string(),
                flow_id,
                detail: detail(),
            });
        }
    }

    /// Registers (or re-fetches) a counter; inert when disabled.
    pub fn counter(&self, subsystem: &str, name: &str) -> Counter {
        if !self.enabled {
            return Counter::default();
        }
        self.registry.counter(subsystem, name)
    }

    /// Registers (or re-fetches) a gauge; inert when disabled.
    pub fn gauge(&self, subsystem: &str, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::default();
        }
        self.registry.gauge(subsystem, name)
    }

    /// Registers (or re-fetches) a histogram; inert when disabled.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::default();
        }
        self.registry.histogram(subsystem, name)
    }

    /// One-shot counter add (registration + add; prefer holding a
    /// [`Counter`] handle on hot paths).
    pub fn add(&self, subsystem: &str, name: &str, delta: u64) {
        if self.enabled {
            self.registry.counter(subsystem, name).add(delta);
        }
    }

    /// Merges an externally produced snapshot into this handle's
    /// registry (counters add, gauges high-water). Used to fold
    /// per-cell / per-run snapshots into a session-level artefact.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        if !self.enabled {
            return;
        }
        for (sub, metrics) in &snapshot.subsystems {
            for (name, value) in &metrics.counters {
                self.registry.counter(sub, name).add(*value);
            }
            for (name, value) in &metrics.gauges {
                self.registry.gauge(sub, name).set_max(*value);
            }
            for (name, hist) in &metrics.histograms {
                // Histograms merge through their snapshot form.
                let handle = self.registry.histogram(sub, name);
                let mut merged = handle.snapshot();
                merged.merge(hist);
                self.registry.replace_histogram(sub, name, &merged);
            }
        }
    }

    /// Snapshot of every registered metric.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The buffered trace events, oldest first.
    #[must_use]
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        match self.tracer.lock() {
            Ok(tracer) => tracer.events().cloned().collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.lock().map_or(0, |t| t.dropped())
    }

    /// Writes the buffered trace events as JSONL.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_trace_jsonl<W: std::io::Write>(&self, writer: W) -> std::io::Result<()> {
        match self.tracer.lock() {
            Ok(tracer) => tracer.write_jsonl(writer),
            Err(_) => Ok(()),
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let obs = Obs::disabled();
        obs.trace(1, "netsim", "x", None, || unreachable!("lazy detail"));
        obs.counter("a", "b").inc();
        obs.gauge("a", "g").set(4);
        obs.histogram("a", "h").observe(2.0);
        obs.add("a", "c", 5);
        assert!(!obs.is_enabled());
        assert!(obs.metrics().is_empty());
        assert!(obs.trace_events().is_empty());
    }

    #[test]
    fn enabled_records_everything() {
        let obs = Obs::enabled();
        obs.trace(7, "netsim", "flow_arrive", Some(3), || "d".into());
        obs.add("netsim", "flows_started", 2);
        obs.gauge("netsim", "peak_active").set_max(5);
        obs.histogram("netsim", "fct_us").observe(10.0);
        let events = obs.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].flow_id, Some(3));
        let snap = obs.metrics();
        assert_eq!(snap.counter("netsim", "flows_started"), 2);
        assert_eq!(snap.gauge("netsim", "peak_active"), 5);
        assert_eq!(
            snap.subsystems["netsim"].histograms["fct_us"]
                .summary
                .count(),
            1
        );
    }

    #[test]
    fn absorb_folds_snapshots() {
        let cell = Obs::enabled();
        cell.add("runner", "cells", 1);
        cell.gauge("runner", "peak_active").set(4);
        cell.histogram("runner", "duration_secs").observe(2.0);
        let total = Obs::enabled();
        total.add("runner", "cells", 1);
        total.gauge("runner", "peak_active").set(2);
        total.absorb(&cell.metrics());
        let snap = total.metrics();
        assert_eq!(snap.counter("runner", "cells"), 2);
        assert_eq!(snap.gauge("runner", "peak_active"), 4);
        assert_eq!(
            snap.subsystems["runner"].histograms["duration_secs"]
                .summary
                .count(),
            1
        );
    }
}
