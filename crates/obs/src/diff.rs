//! Snapshot diffing: what changed between a baseline run's metrics and a
//! degraded run's.
//!
//! [`MetricsSnapshot::diff`] produces a serializable [`MetricsDiff`] —
//! the raw material for both `keddah stats --diff` (human-readable
//! table) and `keddah diagnose` (counter-delta evidence). The diff keeps
//! every metric present on *either* side, so a counter that only exists
//! in the degraded run (e.g. `faults/lost_bytes`) shows up as a delta
//! from zero rather than silently vanishing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::{MetricsSnapshot, SubsystemMetrics};

/// One scalar metric's values on both sides of a diff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueDelta {
    /// Baseline value (0 when the metric is absent there).
    pub baseline: u64,
    /// Degraded value (0 when the metric is absent there).
    pub degraded: u64,
}

impl ValueDelta {
    /// Signed degraded − baseline, saturating at the i64 range.
    #[must_use]
    pub fn delta(&self) -> i64 {
        if self.degraded >= self.baseline {
            i64::try_from(self.degraded - self.baseline).unwrap_or(i64::MAX)
        } else {
            i64::try_from(self.baseline - self.degraded)
                .map(i64::saturating_neg)
                .unwrap_or(i64::MIN)
        }
    }
}

/// One histogram's moment summary on both sides of a diff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryShift {
    /// Baseline observation count.
    pub n_baseline: u64,
    /// Degraded observation count.
    pub n_degraded: u64,
    /// Baseline mean (0 when empty).
    pub mean_baseline: f64,
    /// Degraded mean (0 when empty).
    pub mean_degraded: f64,
    /// Baseline maximum (0 when empty).
    pub max_baseline: f64,
    /// Degraded maximum (0 when empty).
    pub max_degraded: f64,
}

impl SummaryShift {
    /// Degraded-over-baseline mean ratio; 1.0 when the baseline mean is
    /// zero or either side is empty (no inflation claim possible).
    #[must_use]
    pub fn mean_ratio(&self) -> f64 {
        if self.n_baseline > 0 && self.n_degraded > 0 && self.mean_baseline > 0.0 {
            let r = self.mean_degraded / self.mean_baseline;
            if r.is_finite() {
                return r;
            }
        }
        1.0
    }
}

/// Diff of one subsystem's metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubsystemDiff {
    /// Counter values on both sides, by name.
    pub counters: BTreeMap<String, ValueDelta>,
    /// Gauge values on both sides, by name.
    pub gauges: BTreeMap<String, ValueDelta>,
    /// Histogram summary shifts, by name.
    pub histograms: BTreeMap<String, SummaryShift>,
}

/// A serializable diff of two [`MetricsSnapshot`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsDiff {
    /// Per-subsystem diffs, sorted by subsystem name.
    pub subsystems: BTreeMap<String, SubsystemDiff>,
}

impl MetricsDiff {
    /// Signed counter delta (degraded − baseline), 0 when absent on
    /// both sides.
    #[must_use]
    pub fn counter_delta(&self, subsystem: &str, name: &str) -> i64 {
        self.subsystems
            .get(subsystem)
            .and_then(|s| s.counters.get(name))
            .map_or(0, ValueDelta::delta)
    }

    /// How much a counter *increased* in the degraded run, clamped at 0
    /// — the shape fingerprint rules want (`failed_map_attempts` going
    /// down is not evidence of a fault).
    #[must_use]
    pub fn counter_increase(&self, subsystem: &str, name: &str) -> u64 {
        u64::try_from(self.counter_delta(subsystem, name)).unwrap_or(0)
    }

    /// True when no metric differs between the two sides.
    #[must_use]
    pub fn is_unchanged(&self) -> bool {
        self.subsystems.values().all(|s| {
            s.counters.values().all(|d| d.baseline == d.degraded)
                && s.gauges.values().all(|d| d.baseline == d.degraded)
                && s.histograms.values().all(|h| {
                    h.n_baseline == h.n_degraded
                        && h.mean_baseline == h.mean_degraded
                        && h.max_baseline == h.max_degraded
                })
        })
    }
}

fn union_keys<'a, T>(a: &'a BTreeMap<String, T>, b: &'a BTreeMap<String, T>) -> Vec<&'a String> {
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    keys
}

fn diff_subsystem(base: &SubsystemMetrics, deg: &SubsystemMetrics) -> SubsystemDiff {
    let mut out = SubsystemDiff::default();
    for name in union_keys(&base.counters, &deg.counters) {
        out.counters.insert(
            name.clone(),
            ValueDelta {
                baseline: base.counters.get(name).copied().unwrap_or(0),
                degraded: deg.counters.get(name).copied().unwrap_or(0),
            },
        );
    }
    for name in union_keys(&base.gauges, &deg.gauges) {
        out.gauges.insert(
            name.clone(),
            ValueDelta {
                baseline: base.gauges.get(name).copied().unwrap_or(0),
                degraded: deg.gauges.get(name).copied().unwrap_or(0),
            },
        );
    }
    for name in union_keys(&base.histograms, &deg.histograms) {
        let hb = base.histograms.get(name);
        let hd = deg.histograms.get(name);
        let sb = hb.map(|h| h.summary).unwrap_or_default();
        let sd = hd.map(|h| h.summary).unwrap_or_default();
        out.histograms.insert(
            name.clone(),
            SummaryShift {
                n_baseline: sb.count(),
                n_degraded: sd.count(),
                mean_baseline: if sb.count() > 0 { sb.mean() } else { 0.0 },
                mean_degraded: if sd.count() > 0 { sd.mean() } else { 0.0 },
                max_baseline: sb.max().unwrap_or(0.0),
                max_degraded: sd.max().unwrap_or(0.0),
            },
        );
    }
    out
}

impl MetricsSnapshot {
    /// Diffs this (degraded) snapshot against a baseline.
    ///
    /// Every metric present on either side appears in the result; an
    /// absent side reads as 0 / an empty summary.
    #[must_use]
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsDiff {
        let empty = SubsystemMetrics::default();
        let mut out = MetricsDiff::default();
        for sub in union_keys(&baseline.subsystems, &self.subsystems) {
            let base = baseline.subsystems.get(sub).unwrap_or(&empty);
            let deg = self.subsystems.get(sub).unwrap_or(&empty);
            out.subsystems
                .insert(sub.clone(), diff_subsystem(base, deg));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn snap(counter: u64, hist: &[f64]) -> MetricsSnapshot {
        let obs = Obs::enabled();
        obs.add("netsim", "flows_aborted", counter);
        for &x in hist {
            obs.histogram("netsim", "fct_us").observe(x);
        }
        obs.metrics()
    }

    #[test]
    fn deltas_cover_both_directions_and_absence() {
        let base = snap(2, &[10.0, 20.0]);
        let deg = snap(7, &[30.0, 60.0]);
        let diff = deg.diff(&base);
        assert_eq!(diff.counter_delta("netsim", "flows_aborted"), 5);
        assert_eq!(diff.counter_increase("netsim", "flows_aborted"), 5);
        // The reverse diff is negative, and increase clamps it to 0.
        let rev = base.diff(&deg);
        assert_eq!(rev.counter_delta("netsim", "flows_aborted"), -5);
        assert_eq!(rev.counter_increase("netsim", "flows_aborted"), 0);
        // Absent on both sides reads as 0, not a panic.
        assert_eq!(diff.counter_delta("netsim", "no_such"), 0);
        let shift = &diff.subsystems["netsim"].histograms["fct_us"];
        assert!((shift.mean_ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_sided_metrics_survive_the_diff() {
        let base = MetricsSnapshot::default();
        let deg = snap(4, &[]);
        let diff = deg.diff(&base);
        assert_eq!(diff.counter_delta("netsim", "flows_aborted"), 4);
        assert!(!diff.is_unchanged());
    }

    #[test]
    fn identical_snapshots_diff_unchanged() {
        let a = snap(3, &[1.0, 2.0]);
        let diff = a.diff(&a.clone());
        assert!(diff.is_unchanged());
        assert_eq!(diff.counter_delta("netsim", "flows_aborted"), 0);
    }

    #[test]
    fn mean_ratio_guards_empty_and_zero_baselines() {
        let s = SummaryShift {
            n_baseline: 0,
            n_degraded: 5,
            mean_baseline: 0.0,
            mean_degraded: 9.0,
            max_baseline: 0.0,
            max_degraded: 9.0,
        };
        assert_eq!(s.mean_ratio(), 1.0);
    }

    #[test]
    fn diff_roundtrips_through_json() {
        let base = snap(1, &[5.0]);
        let deg = snap(6, &[50.0]);
        let diff = deg.diff(&base);
        let json = serde::json::write_pretty(&diff.to_value());
        let value = serde::json::parse(&json).expect("parses");
        let back = MetricsDiff::from_value(&value).expect("roundtrips");
        assert_eq!(back, diff);
    }
}
