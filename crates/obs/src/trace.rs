//! Structured event tracing: a deterministic, ring-buffered stream of
//! [`TraceEvent`]s.
//!
//! Every event is derived purely from simulation state (simulated time,
//! flow ids, byte counts), never from wall clocks, thread ids or memory
//! addresses — so two runs under the same seed produce byte-identical
//! streams, and a traced run can be diffed against a golden one.

use std::collections::VecDeque;
use std::io::Write;

use serde::{Deserialize, Serialize};

/// One structured trace event.
///
/// The schema is deliberately flat so the JSONL stream is greppable:
/// one object per line, fixed field order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time of the event, nanoseconds.
    pub t_nanos: u64,
    /// Which subsystem emitted it (`des`, `netsim`, `faults`, `hadoop`,
    /// `runner`, `flowcap`).
    pub subsystem: String,
    /// Event kind within the subsystem (`flow_arrive`, `fault_fire`, ...).
    pub kind: String,
    /// The flow the event concerns, if any (netsim arena index /
    /// [`FlowId`](https://docs.rs) injection order).
    pub flow_id: Option<u64>,
    /// Free-form detail, derived from simulation state only.
    pub detail: String,
}

/// A bounded ring buffer of trace events.
///
/// When full, the oldest event is dropped and counted — tracing a
/// 100k-flow replay never exhausts memory, and the drop count is
/// reported so a truncated stream is never mistaken for a complete one.
///
/// # Examples
///
/// ```
/// use keddah_obs::{TraceEvent, Tracer};
///
/// let mut tracer = Tracer::new(2);
/// for i in 0..3u64 {
///     tracer.push(TraceEvent {
///         t_nanos: i,
///         subsystem: "netsim".into(),
///         kind: "flow_arrive".into(),
///         flow_id: Some(i),
///         detail: String::new(),
///     });
/// }
/// assert_eq!(tracer.len(), 2);
/// assert_eq!(tracer.dropped(), 1);
/// assert_eq!(tracer.events().next().unwrap().t_nanos, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    emitted: u64,
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            emitted: 0,
        }
    }

    /// Records an event, evicting the oldest if the buffer is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
        self.emitted += 1;
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (buffered + dropped).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Writes the buffered events as JSONL, one event per line, oldest
    /// first.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        for event in &self.buf {
            let line = serde::json::write_compact(&event.to_value());
            writeln!(writer, "{line}")?;
        }
        Ok(())
    }
}

/// Parses a JSONL event stream written by [`Tracer::write_jsonl`].
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn read_jsonl(input: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = serde::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let event = TraceEvent::from_value(&value).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: &str) -> TraceEvent {
        TraceEvent {
            t_nanos: t,
            subsystem: "netsim".into(),
            kind: kind.into(),
            flow_id: t.is_multiple_of(2).then_some(t),
            detail: format!("t={t}"),
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut tracer = Tracer::new(3);
        for i in 0..5 {
            tracer.push(ev(i, "x"));
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 2);
        assert_eq!(tracer.emitted(), 5);
        let ts: Vec<u64> = tracer.events().map(|e| e.t_nanos).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let mut tracer = Tracer::new(16);
        tracer.push(ev(1, "flow_arrive"));
        tracer.push(ev(2, "flow_complete"));
        let mut buf = Vec::new();
        tracer.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"kind\":\"flow_arrive\""));
        let back = read_jsonl(&text).unwrap();
        assert_eq!(back, vec![ev(1, "flow_arrive"), ev(2, "flow_complete")]);
    }

    #[test]
    fn read_jsonl_reports_bad_lines() {
        let err = read_jsonl("not json\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut tracer = Tracer::new(0);
        tracer.push(ev(1, "x"));
        tracer.push(ev(2, "x"));
        assert_eq!(tracer.len(), 1);
        assert_eq!(tracer.dropped(), 1);
    }
}
