//! The metrics registry: counters, gauges, and log2-bucketed histograms,
//! keyed by `(subsystem, name)`.
//!
//! Recording is designed for simulation hot paths: counters and gauges
//! are plain atomics once registered (registration takes the registry
//! lock once per metric, not per increment), and histograms take one
//! uncontended mutex per observation. Snapshots are plain serializable
//! data with a [`merge`](MetricsSnapshot::merge) that the matrix runner
//! uses to aggregate per-cell registries deterministically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use keddah_stat::Summary;
use serde::{Deserialize, Serialize};

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying cell. A handle from a disabled
/// registry is inert: every operation is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for an inert handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge handle (u64-valued).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if larger (a high-water mark).
    #[inline]
    pub fn set_max(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current value (0 for an inert handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// The log2 bucket a non-negative value falls into: bucket `b` counts
/// observations in `(2^(b-1), 2^b]`, with bucket 0 holding everything
/// `<= 1` and the last bucket everything above `2^62`.
#[must_use]
pub fn log2_bucket(x: f64) -> u32 {
    if x.is_nan() || x <= 1.0 {
        // NaN and everything <= 1 land in bucket 0.
        return 0;
    }
    let b = x.log2().ceil();
    if b >= 63.0 {
        63
    } else {
        b as u32
    }
}

#[derive(Debug, Default)]
struct HistInner {
    buckets: BTreeMap<u32, u64>,
    summary: Summary,
}

/// A histogram handle: log2-spaced buckets plus a [`Summary`] mirror of
/// the exact moments (count, mean, variance, min, max, sum).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<HistInner>>>);

impl Histogram {
    /// Records one observation. Non-finite values are counted in bucket
    /// 0 of the histogram but excluded from the summary moments, so a
    /// stray NaN can never poison the mean.
    #[inline]
    pub fn observe(&self, x: f64) {
        if let Some(cell) = &self.0 {
            if let Ok(mut inner) = cell.lock() {
                *inner.buckets.entry(log2_bucket(x)).or_insert(0) += 1;
                if x.is_finite() {
                    inner.summary.push(x);
                }
            }
        }
    }

    /// Snapshot of the current state (empty for an inert handle).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(cell) => match cell.lock() {
                Ok(inner) => HistogramSnapshot {
                    buckets: inner
                        .buckets
                        .iter()
                        .map(|(&log2, &count)| Bucket { log2, count })
                        .collect(),
                    summary: inner.summary,
                },
                Err(_) => HistogramSnapshot::default(),
            },
        }
    }
}

/// One occupied log2 bucket of a histogram snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket index: counts observations in `(2^(log2-1), 2^log2]`.
    pub log2: u32,
    /// Observations in the bucket.
    pub count: u64,
}

/// Serializable state of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Occupied buckets, ascending by index.
    pub buckets: Vec<Bucket>,
    /// Exact moments of the finite observations.
    pub summary: Summary,
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one: buckets add, summaries
    /// merge via the parallel Welford rule.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: BTreeMap<u32, u64> =
            self.buckets.iter().map(|b| (b.log2, b.count)).collect();
        for b in &other.buckets {
            *merged.entry(b.log2).or_insert(0) += b.count;
        }
        self.buckets = merged
            .into_iter()
            .map(|(log2, count)| Bucket { log2, count })
            .collect();
        self.summary.merge(&other.summary);
    }
}

/// Metrics of one subsystem in a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SubsystemMetrics {
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl SubsystemMetrics {
    fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A serializable point-in-time view of a registry — the `metrics.json`
/// artefact `keddah stats` renders.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-subsystem metrics, sorted by subsystem name.
    pub subsystems: BTreeMap<String, SubsystemMetrics>,
}

impl MetricsSnapshot {
    /// Merges another snapshot into this one: counters add, gauges take
    /// the maximum (a high-water mark across runs), histograms merge.
    ///
    /// Merging is commutative and associative for counters and gauges;
    /// histogram summaries merge via Welford, so their moments agree
    /// with pooled observation to within float rounding regardless of
    /// merge order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, sub) in &other.subsystems {
            let mine = self.subsystems.entry(name.clone()).or_default();
            for (k, v) in &sub.counters {
                *mine.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &sub.gauges {
                let slot = mine.gauges.entry(k.clone()).or_insert(0);
                *slot = (*slot).max(*v);
            }
            for (k, h) in &sub.histograms {
                mine.histograms.entry(k.clone()).or_default().merge(h);
            }
        }
    }

    /// A counter's value, 0 when absent.
    #[must_use]
    pub fn counter(&self, subsystem: &str, name: &str) -> u64 {
        self.subsystems
            .get(subsystem)
            .and_then(|s| s.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// A gauge's value, 0 when absent.
    #[must_use]
    pub fn gauge(&self, subsystem: &str, name: &str) -> u64 {
        self.subsystems
            .get(subsystem)
            .and_then(|s| s.gauges.get(name).copied())
            .unwrap_or(0)
    }

    /// True when no subsystem recorded anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.subsystems.values().all(SubsystemMetrics::is_empty)
    }

    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::write_pretty(&self.to_value())
    }

    /// Parses a snapshot from JSON.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed input.
    pub fn from_json(input: &str) -> Result<MetricsSnapshot, String> {
        let value = serde::json::parse(input).map_err(|e| e.to_string())?;
        MetricsSnapshot::from_value(&value).map_err(|e| e.to_string())
    }
}

/// Metric cells keyed by `(subsystem, name)`.
type CellMap<T> = Mutex<BTreeMap<(String, String), Arc<T>>>;

/// The live registry: named metric cells handed out as cheap handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: CellMap<AtomicU64>,
    gauges: CellMap<AtomicU64>,
    histograms: CellMap<Mutex<HistInner>>,
}

impl MetricsRegistry {
    /// Registers (or re-fetches) a counter.
    pub fn counter(&self, subsystem: &str, name: &str) -> Counter {
        let key = (subsystem.to_string(), name.to_string());
        match self.counters.lock() {
            Ok(mut map) => Counter(Some(map.entry(key).or_default().clone())),
            Err(_) => Counter(None),
        }
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, subsystem: &str, name: &str) -> Gauge {
        let key = (subsystem.to_string(), name.to_string());
        match self.gauges.lock() {
            Ok(mut map) => Gauge(Some(map.entry(key).or_default().clone())),
            Err(_) => Gauge(None),
        }
    }

    /// Registers (or re-fetches) a histogram.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Histogram {
        let key = (subsystem.to_string(), name.to_string());
        match self.histograms.lock() {
            Ok(mut map) => Histogram(Some(map.entry(key).or_default().clone())),
            Err(_) => Histogram(None),
        }
    }

    /// Overwrites a histogram's state from a snapshot (used when
    /// folding externally merged snapshots back into a live registry).
    pub fn replace_histogram(&self, subsystem: &str, name: &str, snap: &HistogramSnapshot) {
        let key = (subsystem.to_string(), name.to_string());
        if let Ok(mut map) = self.histograms.lock() {
            let cell = map.entry(key).or_default().clone();
            drop(map);
            if let Ok(mut inner) = cell.lock() {
                inner.buckets = snap.buckets.iter().map(|b| (b.log2, b.count)).collect();
                inner.summary = snap.summary;
            };
        }
    }

    /// Snapshots every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Ok(map) = self.counters.lock() {
            for ((sub, name), cell) in map.iter() {
                snap.subsystems
                    .entry(sub.clone())
                    .or_default()
                    .counters
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
        }
        if let Ok(map) = self.gauges.lock() {
            for ((sub, name), cell) in map.iter() {
                snap.subsystems
                    .entry(sub.clone())
                    .or_default()
                    .gauges
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
        }
        if let Ok(map) = self.histograms.lock() {
            for ((sub, name), cell) in map.iter() {
                let h = Histogram(Some(cell.clone())).snapshot();
                snap.subsystems
                    .entry(sub.clone())
                    .or_default()
                    .histograms
                    .insert(name.clone(), h);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_through_handles() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("netsim", "flows_started");
        let b = reg.counter("netsim", "flows_started");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("netsim", "flows_started"), 3);
        assert_eq!(snap.counter("netsim", "absent"), 0);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let reg = MetricsRegistry::default();
        let g = reg.gauge("netsim", "peak_active");
        g.set(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(reg.snapshot().gauge("netsim", "peak_active"), 9);
    }

    #[test]
    fn log2_buckets_cover_the_line() {
        assert_eq!(log2_bucket(f64::NAN), 0);
        assert_eq!(log2_bucket(-3.0), 0);
        assert_eq!(log2_bucket(0.0), 0);
        assert_eq!(log2_bucket(1.0), 0);
        assert_eq!(log2_bucket(1.5), 1);
        assert_eq!(log2_bucket(2.0), 1);
        assert_eq!(log2_bucket(3.0), 2);
        assert_eq!(log2_bucket(1024.0), 10);
        assert_eq!(log2_bucket(f64::INFINITY), 63);
    }

    #[test]
    fn histogram_mirrors_summary() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("netsim", "flow_bytes");
        for x in [1.0, 2.0, 3.0, 1024.0] {
            h.observe(x);
        }
        h.observe(f64::NAN); // counted in buckets, not in moments
        let snap = h.snapshot();
        assert_eq!(snap.summary.count(), 4);
        assert_eq!(snap.summary.sum(), 1030.0);
        let total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn snapshot_merge_matches_pooled_recording() {
        let a = MetricsRegistry::default();
        let b = MetricsRegistry::default();
        let pooled = MetricsRegistry::default();
        for (i, reg) in [&a, &b].into_iter().enumerate() {
            let c = reg.counter("s", "n");
            c.add(i as u64 + 1);
            let h = reg.histogram("s", "h");
            for x in 0..50 {
                let v = (x as f64) * (i as f64 + 1.0);
                h.observe(v);
                pooled.histogram("s", "h").observe(v);
            }
        }
        pooled.counter("s", "n").add(3);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let direct = pooled.snapshot();
        assert_eq!(merged.counter("s", "n"), direct.counter("s", "n"));
        let hm = &merged.subsystems["s"].histograms["h"];
        let hd = &direct.subsystems["s"].histograms["h"];
        assert_eq!(hm.buckets, hd.buckets);
        assert_eq!(hm.summary.count(), hd.summary.count());
        assert!((hm.summary.mean() - hd.summary.mean()).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let reg = MetricsRegistry::default();
        reg.counter("faults", "flows_aborted").add(7);
        reg.gauge("netsim", "peak_active").set(3);
        reg.histogram("netsim", "fct_us").observe(125.0);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("roundtrips");
        assert_eq!(back, snap);
        assert!(MetricsSnapshot::from_json("[oops").is_err());
    }

    #[test]
    fn inert_handles_are_noops() {
        let c = Counter::default();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(9);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.observe(1.0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }
}
