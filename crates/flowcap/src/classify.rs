//! Port/role-based classification of flows into Hadoop traffic components.
//!
//! Keddah decomposes Hadoop traffic into the subsystems that generate it,
//! because each subsystem has distinct flow statistics and scales with
//! different job covariates:
//!
//! * **HDFS read** — clients (map tasks, the job client) pulling block
//!   data from DataNodes;
//! * **HDFS write** — clients pushing block data into DataNodes, *and*
//!   the replication-pipeline hops between DataNodes;
//! * **Shuffle** — reducers fetching map-output segments from the
//!   ShuffleHandler on mapper nodes;
//! * **Control** — everything on RPC/heartbeat ports: NameNode metadata
//!   ops, RM/NM heartbeats, AM umbilicals, job submission.
//!
//! Classification keys on the responder port first (the Hadoop service
//! contacted) and uses byte-direction dominance to split HDFS reads from
//! writes on the shared DataNode transfer port — the same evidence a
//! tcpdump-based classifier has.

use serde::{Deserialize, Serialize};

use crate::flow::FlowRecord;
use crate::ports;

/// The Hadoop traffic components Keddah models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Component {
    /// Block data pulled from a DataNode.
    HdfsRead,
    /// Block data pushed to a DataNode (client writes and replication
    /// pipeline hops).
    HdfsWrite,
    /// Reducer fetches of map output.
    Shuffle,
    /// RPC, heartbeat and job-management traffic.
    Control,
    /// Traffic on no known Hadoop port.
    Other,
    /// Small-side payloads replicated to every consumer task over a DAG
    /// broadcast edge (fragment joins, Pig replicated joins).
    ///
    /// Appended after [`Component::Other`]: replay tags are positional
    /// in [`Component::ALL`], so new variants must only ever be added at
    /// the end or every committed trace pin shifts.
    Broadcast,
}

impl Component {
    /// All components, in the canonical order used by tables and figures.
    ///
    /// Replay tags are this slice's positions — append-only, never
    /// reorder (see [`Component::Broadcast`]).
    pub const ALL: &'static [Component] = &[
        Component::HdfsRead,
        Component::HdfsWrite,
        Component::Shuffle,
        Component::Control,
        Component::Other,
        Component::Broadcast,
    ];

    /// The data-plane components (everything the traffic model fits
    /// distributions for; control traffic is modelled separately as a
    /// periodic process).
    pub const DATA: &'static [Component] = &[
        Component::HdfsRead,
        Component::HdfsWrite,
        Component::Shuffle,
        Component::Broadcast,
    ];

    /// Short snake_case name used in serialized traces and table rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Component::HdfsRead => "hdfs_read",
            Component::HdfsWrite => "hdfs_write",
            Component::Shuffle => "shuffle",
            Component::Control => "control",
            Component::Other => "other",
            Component::Broadcast => "broadcast",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies a flow into its Hadoop traffic component.
///
/// The responder port (`tuple.dst_port`) is the service that was
/// contacted:
///
/// * [`ports::DATANODE_XFER`] — an HDFS transfer; byte-direction
///   dominance decides read vs write;
/// * [`ports::SHUFFLE`] — a shuffle fetch;
/// * any control port — control traffic;
/// * anything else — [`Component::Other`].
///
/// # Examples
///
/// ```
/// use keddah_des::SimTime;
/// use keddah_flowcap::{classify, Component, FiveTuple, FlowRecord, NodeId, ports};
///
/// let read = FlowRecord {
///     tuple: FiveTuple { src: NodeId(1), src_port: 40000, dst: NodeId(2), dst_port: ports::DATANODE_XFER },
///     start: SimTime::ZERO,
///     end: SimTime::from_secs(1),
///     fwd_bytes: 500,          // request
///     rev_bytes: 64 << 20,     // block data coming back
///     packets: 10,
///     component: None,
/// };
/// assert_eq!(classify::classify(&read), Component::HdfsRead);
/// ```
#[must_use]
pub fn classify(flow: &FlowRecord) -> Component {
    let service_port = flow.tuple.dst_port;
    if service_port == ports::DATANODE_XFER {
        if flow.forward_dominant() {
            Component::HdfsWrite
        } else {
            Component::HdfsRead
        }
    } else if service_port == ports::SHUFFLE {
        Component::Shuffle
    } else if service_port == ports::BROADCAST {
        Component::Broadcast
    } else if ports::is_control_port(service_port) {
        Component::Control
    } else if ports::is_control_port(flow.tuple.src_port) {
        // Server-initiated control traffic (e.g. RM responses captured as
        // their own flow by an asymmetric tap).
        Component::Control
    } else {
        Component::Other
    }
}

/// Labels every flow in `flows` in place.
pub fn classify_all(flows: &mut [FlowRecord]) {
    for flow in flows {
        flow.component = Some(classify(flow));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use crate::packet::NodeId;
    use keddah_des::SimTime;

    fn flow(dst_port: u16, fwd: u64, rev: u64) -> FlowRecord {
        FlowRecord {
            tuple: FiveTuple {
                src: NodeId(1),
                src_port: 40_000,
                dst: NodeId(2),
                dst_port,
            },
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            fwd_bytes: fwd,
            rev_bytes: rev,
            packets: 2,
            component: None,
        }
    }

    #[test]
    fn hdfs_direction_split() {
        assert_eq!(
            classify(&flow(ports::DATANODE_XFER, 1 << 26, 100)),
            Component::HdfsWrite
        );
        assert_eq!(
            classify(&flow(ports::DATANODE_XFER, 100, 1 << 26)),
            Component::HdfsRead
        );
    }

    #[test]
    fn shuffle_port() {
        assert_eq!(
            classify(&flow(ports::SHUFFLE, 50, 1 << 20)),
            Component::Shuffle
        );
    }

    #[test]
    fn broadcast_port() {
        assert_eq!(
            classify(&flow(ports::BROADCAST, 50, 1 << 20)),
            Component::Broadcast
        );
    }

    #[test]
    fn control_ports() {
        for p in [
            ports::NAMENODE_RPC,
            ports::RM_TRACKER,
            ports::AM_UMBILICAL,
            ports::NM_CONTAINER,
        ] {
            assert_eq!(classify(&flow(p, 10, 10)), Component::Control);
        }
    }

    #[test]
    fn reverse_control_flow_is_control() {
        let mut f = flow(40_001, 10, 10);
        f.tuple.src_port = ports::RM_SCHEDULER;
        assert_eq!(classify(&f), Component::Control);
    }

    #[test]
    fn unknown_is_other() {
        assert_eq!(classify(&flow(9_999, 10, 10)), Component::Other);
    }

    #[test]
    fn classify_all_labels_everything() {
        let mut flows = vec![flow(ports::SHUFFLE, 1, 2), flow(9_999, 1, 2)];
        classify_all(&mut flows);
        assert_eq!(flows[0].component, Some(Component::Shuffle));
        assert_eq!(flows[1].component, Some(Component::Other));
    }

    #[test]
    fn component_names_are_stable() {
        // These names appear in serialized traces; changing them breaks
        // trace compatibility.
        let names: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "hdfs_read",
                "hdfs_write",
                "shuffle",
                "control",
                "other",
                "broadcast"
            ]
        );
    }
}
