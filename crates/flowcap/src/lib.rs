//! Capture substrate for the Keddah toolchain.
//!
//! The original Keddah captured traffic with `tcpdump` on every node of a
//! Hadoop testbed, reassembled packets into flows, and labelled each flow
//! with the Hadoop subsystem that produced it. This crate is that
//! pipeline's software equivalent, fed by the simulated cluster in
//! `keddah-hadoop` instead of a NIC:
//!
//! * [`PacketRecord`] / [`FlowRecord`] — the capture artefacts;
//! * [`FlowAssembler`] — 5-tuple flow reassembly with FIN/idle-timeout
//!   termination, mirroring what a tcpdump post-processor does;
//! * [`StreamAssembler`] — its bounded-memory streaming counterpart
//!   (fixed-capacity connection table, eager timeout-driven LRU
//!   eviction) for long-running ingestion daemons;
//! * [`classify`] — port/role-based classification into the traffic
//!   [`Component`]s the paper models (HDFS read, HDFS write, shuffle,
//!   control);
//! * [`Trace`] — a labelled flow trace with JSONL persistence, filtering,
//!   and the per-component statistics the modelling step consumes.
//!
//! # Examples
//!
//! Assemble two packets into a flow and classify it:
//!
//! ```
//! use keddah_des::SimTime;
//! use keddah_flowcap::{classify, FlowAssembler, NodeId, PacketRecord, ports};
//!
//! let mut asm = FlowAssembler::new();
//! let a = NodeId(1);
//! let b = NodeId(2);
//! asm.push(PacketRecord::syn(SimTime::ZERO, a, 40_000, b, ports::DATANODE_XFER, 1_000));
//! asm.push(PacketRecord::fin(SimTime::from_millis(5), a, 40_000, b, ports::DATANODE_XFER, 64_000));
//! let flows = asm.finish();
//! assert_eq!(flows.len(), 1);
//! assert_eq!(classify::classify(&flows[0]), keddah_flowcap::Component::HdfsWrite);
//! ```

mod assembler;
pub mod classify;
mod flow;
mod matrix;
mod packet;
pub mod ports;
mod stats;
pub mod stream;
pub mod tcpdump;
mod trace;

pub use assembler::FlowAssembler;
pub use classify::Component;
pub use flow::{FiveTuple, FlowRecord};
pub use matrix::TrafficMatrix;
pub use packet::{NodeId, PacketRecord};
pub use stats::{component_stats, ComponentStats, Timeline, TimelineBin};
pub use stream::{StreamAssembler, StreamConfig, StreamStats};
pub use trace::{Trace, TraceError, TraceMeta};
