//! Communication matrices: who talks to whom, per component.
//!
//! Keddah's analysis of Hadoop traffic includes its *spatial* structure —
//! the all-to-few in-cast of the shuffle, the pipeline chains of HDFS
//! replication, the star of control traffic around the master. A
//! [`TrafficMatrix`] captures that structure from a labelled trace so it
//! can be inspected, compared, and checked against generated traffic.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::classify::Component;
use crate::flow::FlowRecord;
use crate::packet::NodeId;

/// A (src, dst) → bytes matrix for one traffic component.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    /// Bytes exchanged per ordered node pair. The key orientation is
    /// *data direction*: for a flow whose bulk bytes travel from the
    /// responder back to the originator (reads, shuffle fetches), the
    /// data sender is the source.
    pub cells: BTreeMap<(NodeId, NodeId), u64>,
}

impl TrafficMatrix {
    /// Builds per-component matrices from labelled flows.
    #[must_use]
    pub fn per_component(flows: &[FlowRecord]) -> BTreeMap<Component, TrafficMatrix> {
        let mut out: BTreeMap<Component, TrafficMatrix> = BTreeMap::new();
        for f in flows {
            let component = f.component.unwrap_or(Component::Other);
            let matrix = out.entry(component).or_default();
            // Credit each direction's bytes to its actual sender.
            if f.fwd_bytes > 0 {
                *matrix.cells.entry((f.tuple.src, f.tuple.dst)).or_insert(0) += f.fwd_bytes;
            }
            if f.rev_bytes > 0 {
                *matrix.cells.entry((f.tuple.dst, f.tuple.src)).or_insert(0) += f.rev_bytes;
            }
        }
        out
    }

    /// Total bytes in the matrix.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.cells.values().sum()
    }

    /// Bytes sent per node (row sums).
    #[must_use]
    pub fn tx_by_node(&self) -> BTreeMap<NodeId, u64> {
        let mut out = BTreeMap::new();
        for (&(src, _), &bytes) in &self.cells {
            *out.entry(src).or_insert(0) += bytes;
        }
        out
    }

    /// Bytes received per node (column sums).
    #[must_use]
    pub fn rx_by_node(&self) -> BTreeMap<NodeId, u64> {
        let mut out = BTreeMap::new();
        for (&(_, dst), &bytes) in &self.cells {
            *out.entry(dst).or_insert(0) += bytes;
        }
        out
    }

    /// The number of distinct receivers (in-cast width). For shuffle
    /// matrices this approximates the reducer-node count.
    #[must_use]
    pub fn receiver_count(&self) -> usize {
        self.rx_by_node().len()
    }

    /// The number of distinct senders.
    #[must_use]
    pub fn sender_count(&self) -> usize {
        self.tx_by_node().len()
    }

    /// Gini-style concentration of received bytes in `[0, 1)`:
    /// 0 = perfectly even spread across receivers, → 1 = a single hot
    /// receiver. Quantifies the shuffle in-cast vs the control star.
    #[must_use]
    pub fn rx_concentration(&self) -> f64 {
        let rx: Vec<f64> = self.rx_by_node().values().map(|&b| b as f64).collect();
        gini(&rx)
    }
}

/// Gini coefficient of a non-negative sample; 0 for empty/uniform.
fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * v)
        .sum();
    weighted / (n as f64 * total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use keddah_des::SimTime;

    fn flow(src: u32, dst: u32, fwd: u64, rev: u64, c: Component) -> FlowRecord {
        FlowRecord {
            tuple: FiveTuple {
                src: NodeId(src),
                src_port: 40_000,
                dst: NodeId(dst),
                dst_port: 13_562,
            },
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            fwd_bytes: fwd,
            rev_bytes: rev,
            packets: 2,
            component: Some(c),
        }
    }

    #[test]
    fn bytes_credited_to_data_sender() {
        // A shuffle fetch: reducer (1) contacts mapper node (2), data
        // flows 2 -> 1.
        let flows = vec![flow(1, 2, 100, 10_000, Component::Shuffle)];
        let matrices = TrafficMatrix::per_component(&flows);
        let m = &matrices[&Component::Shuffle];
        assert_eq!(m.cells[&(NodeId(2), NodeId(1))], 10_000);
        assert_eq!(m.cells[&(NodeId(1), NodeId(2))], 100);
        assert_eq!(m.total_bytes(), 10_100);
    }

    #[test]
    fn row_and_column_sums() {
        let flows = vec![
            flow(1, 9, 1000, 0, Component::HdfsWrite),
            flow(2, 9, 500, 0, Component::HdfsWrite),
            flow(1, 3, 200, 0, Component::HdfsWrite),
        ];
        let m = &TrafficMatrix::per_component(&flows)[&Component::HdfsWrite];
        assert_eq!(m.tx_by_node()[&NodeId(1)], 1200);
        assert_eq!(m.rx_by_node()[&NodeId(9)], 1500);
        assert_eq!(m.sender_count(), 2);
        assert_eq!(m.receiver_count(), 2);
    }

    #[test]
    fn incast_concentration_exceeds_even_spread() {
        // All traffic into one node vs spread across four.
        let incast: Vec<FlowRecord> = (1..=4)
            .map(|s| flow(s, 9, 1000, 0, Component::Shuffle))
            .collect();
        let spread: Vec<FlowRecord> = (1..=4)
            .map(|s| flow(s, s + 10, 1000, 0, Component::Shuffle))
            .collect();
        let mi = TrafficMatrix::per_component(&incast);
        let ms = TrafficMatrix::per_component(&spread);
        let ci = mi[&Component::Shuffle].rx_concentration();
        let cs = ms[&Component::Shuffle].rx_concentration();
        assert_eq!(cs, 0.0, "even spread has zero concentration");
        assert_eq!(ci, 0.0, "single receiver over its own set is uniform too");
        // The discriminating view: concentration over ALL nodes that
        // appear anywhere. Compare receiver counts instead.
        assert_eq!(mi[&Component::Shuffle].receiver_count(), 1);
        assert_eq!(ms[&Component::Shuffle].receiver_count(), 4);
    }

    #[test]
    fn gini_basics() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);
        let skewed = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(skewed > 0.7, "skewed gini = {skewed}");
    }

    #[test]
    fn unlabelled_flows_grouped_as_other() {
        let mut f = flow(1, 2, 10, 0, Component::Shuffle);
        f.component = None;
        let matrices = TrafficMatrix::per_component(&[f]);
        assert!(matrices.contains_key(&Component::Other));
    }
}
