//! tcpdump-style text packet format.
//!
//! The paper's capture pipeline post-processed `tcpdump` output; this
//! module speaks a compatible one-line-per-packet text dialect so the
//! toolchain can exchange packet traces with text tooling (and so
//! external captures can be massaged into the simulated format):
//!
//! ```text
//! 1.002345 IP node1.40000 > node2.50010: Flags [S], length 128
//! 1.004012 IP node2.50010 > node1.40000: Flags [.], length 65536
//! 1.009871 IP node1.40000 > node2.50010: Flags [F], length 0
//! ```
//!
//! Timestamps are seconds with microsecond precision (tcpdump's default
//! clock display); `node<N>` hostnames carry the simulator's node ids.

use std::io::{BufRead, BufReader, Read, Write};

use keddah_des::SimTime;

use crate::packet::{NodeId, PacketRecord};
use crate::trace::TraceError;

/// Writes packets as tcpdump-style text lines.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_text<W: Write>(packets: &[PacketRecord], mut writer: W) -> Result<(), TraceError> {
    for p in packets {
        let flag = if p.syn {
            'S'
        } else if p.fin {
            'F'
        } else {
            '.'
        };
        let micros = p.ts.as_nanos() / 1_000;
        writeln!(
            writer,
            "{}.{:06} IP node{}.{} > node{}.{}: Flags [{flag}], length {}",
            micros / 1_000_000,
            micros % 1_000_000,
            p.src.0,
            p.src_port,
            p.dst.0,
            p.dst_port,
            p.bytes
        )?;
    }
    Ok(())
}

/// Parses tcpdump-style text lines back into packets. Blank lines are
/// skipped; anything else malformed is an error naming the line.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a 1-based line number on malformed
/// input.
pub fn read_text<R: Read>(reader: R) -> Result<Vec<PacketRecord>, TraceError> {
    let mut packets = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        packets.push(parse_line(trimmed).map_err(|message| TraceError::Parse {
            line: i + 1,
            message,
        })?);
    }
    Ok(packets)
}

/// The outcome of a lenient parse: every line that parsed, plus every
/// line that did not.
#[derive(Debug, Clone, Default)]
pub struct LenientParse {
    /// Packets from the lines that parsed, in input order.
    pub packets: Vec<PacketRecord>,
    /// `(1-based line number, message)` for each malformed line, in
    /// input order.
    pub errors: Vec<(usize, String)>,
}

impl LenientParse {
    /// Number of lines that failed to parse.
    #[must_use]
    pub fn parse_errors(&self) -> u64 {
        self.errors.len() as u64
    }
}

/// Parses tcpdump-style text, keeping every line that parses and
/// collecting — instead of aborting on — the ones that do not.
///
/// Real captures get truncated mid-line by rotation and interleaved with
/// kernel warnings; a single bad line must not discard the other
/// millions. Use [`read_text`] when the input is trusted to be clean
/// (e.g. this module's own output) and any damage should be loud.
///
/// # Errors
///
/// Returns only underlying I/O errors — malformed *content* lands in
/// [`LenientParse::errors`].
pub fn read_text_lenient<R: Read>(reader: R) -> Result<LenientParse, TraceError> {
    let mut out = LenientParse::default();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_line(trimmed) {
            Ok(packet) => out.packets.push(packet),
            Err(message) => out.errors.push((i + 1, message)),
        }
    }
    Ok(out)
}

/// Parses one `ts IP a.p > b.q: Flags [X], length N` line.
fn parse_line(line: &str) -> Result<PacketRecord, String> {
    let mut parts = line.split_whitespace();
    let ts_raw = parts.next().ok_or("missing timestamp")?;
    let ts = parse_ts(ts_raw)?;
    let proto = parts.next().ok_or("missing protocol")?;
    if proto != "IP" {
        return Err(format!("expected IP, found {proto}"));
    }
    let src_raw = parts.next().ok_or("missing source endpoint")?;
    let arrow = parts.next().ok_or("missing direction arrow")?;
    if arrow != ">" {
        return Err(format!("expected >, found {arrow}"));
    }
    let dst_raw = parts.next().ok_or("missing destination endpoint")?;
    let dst_raw = dst_raw.strip_suffix(':').unwrap_or(dst_raw);
    let (src, src_port) = parse_endpoint(src_raw)?;
    let (dst, dst_port) = parse_endpoint(dst_raw)?;

    let flags_kw = parts.next().ok_or("missing Flags keyword")?;
    if flags_kw != "Flags" {
        return Err(format!("expected Flags, found {flags_kw}"));
    }
    let flags_raw = parts.next().ok_or("missing flag set")?;
    let flags = flags_raw
        .trim_start_matches('[')
        .trim_end_matches(',')
        .trim_end_matches(']');
    let (syn, fin) = match flags {
        "S" => (true, false),
        "F" => (false, true),
        "." => (false, false),
        other => return Err(format!("unsupported flag set [{other}]")),
    };
    let length_kw = parts.next().ok_or("missing length keyword")?;
    if length_kw != "length" {
        return Err(format!("expected length, found {length_kw}"));
    }
    let bytes: u64 = parts
        .next()
        .ok_or("missing length value")?
        .parse()
        .map_err(|_| "bad length value".to_string())?;
    Ok(PacketRecord {
        ts,
        src,
        src_port,
        dst,
        dst_port,
        bytes,
        syn,
        fin,
    })
}

/// Parses `S.UUUUUU` seconds.microseconds.
fn parse_ts(raw: &str) -> Result<SimTime, String> {
    let (secs, micros) = raw
        .split_once('.')
        .ok_or_else(|| format!("bad timestamp {raw}"))?;
    let secs: u64 = secs.parse().map_err(|_| format!("bad timestamp {raw}"))?;
    if micros.len() != 6 {
        return Err(format!("timestamp needs 6 fractional digits: {raw}"));
    }
    let micros_val: u64 = micros.parse().map_err(|_| format!("bad timestamp {raw}"))?;
    Ok(SimTime::from_micros(secs * 1_000_000 + micros_val))
}

/// Parses `node<N>.<port>`.
fn parse_endpoint(raw: &str) -> Result<(NodeId, u16), String> {
    let (host, port) = raw
        .rsplit_once('.')
        .ok_or_else(|| format!("bad endpoint {raw}"))?;
    let node = host
        .strip_prefix("node")
        .ok_or_else(|| format!("expected node<N> hostname, found {host}"))?;
    let node: u32 = node.parse().map_err(|_| format!("bad node id in {raw}"))?;
    let port: u16 = port.parse().map_err(|_| format!("bad port in {raw}"))?;
    Ok((NodeId(node), port))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::FlowAssembler;
    use crate::ports;

    fn sample_packets() -> Vec<PacketRecord> {
        vec![
            PacketRecord::syn(
                SimTime::from_micros(1_002_345),
                NodeId(1),
                40_000,
                NodeId(2),
                ports::DATANODE_XFER,
                128,
            ),
            PacketRecord::data(
                SimTime::from_micros(1_004_012),
                NodeId(2),
                ports::DATANODE_XFER,
                NodeId(1),
                40_000,
                65_536,
            ),
            PacketRecord::fin(
                SimTime::from_micros(1_009_871),
                NodeId(1),
                40_000,
                NodeId(2),
                ports::DATANODE_XFER,
                0,
            ),
        ]
    }

    #[test]
    fn roundtrip() {
        let packets = sample_packets();
        let mut buf = Vec::new();
        write_text(&packets, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("1.002345 IP node1.40000 > node2.50010: Flags [S], length 128"));
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(packets, back);
    }

    #[test]
    fn parsed_packets_assemble() {
        let mut buf = Vec::new();
        write_text(&sample_packets(), &mut buf).unwrap();
        let mut asm = FlowAssembler::new();
        asm.extend(read_text(&buf[..]).unwrap());
        let flows = asm.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].rev_bytes, 65_536);
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n1.000000 IP node0.1 > node1.2: Flags [S], length 5\n\n";
        let packets = read_text(text.as_bytes()).unwrap();
        assert_eq!(packets.len(), 1);
        assert!(packets[0].syn);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "1.000000 IP node0.1 > node1.2: Flags [S], length 5\nnot a packet\n";
        match read_text(text.as_bytes()) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_foreign_dialects() {
        for bad in [
            "1.0 IP node0.1 > node1.2: Flags [S], length 5", // short fraction
            "1.000000 TCP node0.1 > node1.2: Flags [S], length 5",
            "1.000000 IP host0.1 > node1.2: Flags [S], length 5",
            "1.000000 IP node0.1 < node1.2: Flags [S], length 5",
            "1.000000 IP node0.1 > node1.2: Flags [SEW], length 5",
            "1.000000 IP node0.1 > node1.2: Flags [S], size 5",
        ] {
            assert!(read_text(bad.as_bytes()).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn lenient_parse_survives_garbage() {
        let text = "garbage\n\
                    1.000000 IP node0.1 > node1.2: Flags [S], length 5\n\
                    \u{0}\u{1}\u{2} binary junk \u{ff}\n\
                    1.000010 IP node1.2 > node0.1: Flags [.], length 9\n";
        let parsed = read_text_lenient(text.as_bytes()).unwrap();
        assert_eq!(parsed.packets.len(), 2);
        assert_eq!(parsed.parse_errors(), 2);
        assert_eq!(parsed.errors[0].0, 1);
        assert_eq!(parsed.errors[1].0, 3);
    }

    #[test]
    fn lenient_parse_of_empty_input_is_empty() {
        let parsed = read_text_lenient("".as_bytes()).unwrap();
        assert!(parsed.packets.is_empty());
        assert_eq!(parsed.parse_errors(), 0);
        let blank = read_text_lenient("\n\n  \n".as_bytes()).unwrap();
        assert!(blank.packets.is_empty());
        assert_eq!(blank.parse_errors(), 0);
    }

    #[test]
    fn lenient_parse_counts_mid_line_truncation() {
        // A capture rotated mid-write: the final line stops inside the
        // destination endpoint.
        let text = "1.000000 IP node0.1 > node1.2: Flags [S], length 5\n\
                    1.000010 IP node0.1 > nod";
        let parsed = read_text_lenient(text.as_bytes()).unwrap();
        assert_eq!(parsed.packets.len(), 1);
        assert_eq!(parsed.parse_errors(), 1);
        assert_eq!(parsed.errors[0].0, 2);
        // The strict reader refuses the same input outright.
        assert!(read_text(text.as_bytes()).is_err());
    }

    #[test]
    fn microsecond_precision_preserved() {
        let p = PacketRecord::data(
            SimTime::from_micros(987_654_321),
            NodeId(3),
            1,
            NodeId(4),
            2,
            9,
        );
        let mut buf = Vec::new();
        write_text(&[p], &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back[0].ts, p.ts);
    }
}
