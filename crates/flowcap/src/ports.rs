//! Well-known Hadoop service ports.
//!
//! These are the default ports of a Hadoop 2.x deployment, which is what
//! the paper's testbed ran and what the port-based classifier keys on.
//! Ephemeral client-side ports are allocated from
//! [`EPHEMERAL_BASE`] upward by the simulator.

/// NameNode client RPC (`fs.defaultFS`, default 8020).
pub const NAMENODE_RPC: u16 = 8020;

/// NameNode HTTP UI (50070) — present for completeness.
pub const NAMENODE_HTTP: u16 = 50070;

/// DataNode data transfer port (`dfs.datanode.address`, default 50010).
/// Both HDFS reads and writes move their bulk bytes over this port.
pub const DATANODE_XFER: u16 = 50010;

/// DataNode IPC port (50020): block-recovery and client metadata calls.
pub const DATANODE_IPC: u16 = 50020;

/// MapReduce ShuffleHandler (`mapreduce.shuffle.port`, default 13562).
/// Reducers fetch map output segments over this port.
pub const SHUFFLE: u16 = 13562;

/// Broadcast-edge distribution port used by the DAG job model for
/// small-side payloads replicated to every consumer task (fragment
/// joins, Pig replicated joins, Spark-style broadcast variables).
/// Keddah pins it next to the shuffle port so the classifier can label
/// the traffic; real deployments serve it from the same ShuffleHandler.
pub const BROADCAST: u16 = 13563;

/// ResourceManager scheduler address (8030): ApplicationMaster ↔ RM.
pub const RM_SCHEDULER: u16 = 8030;

/// ResourceManager resource-tracker address (8031): NodeManager heartbeats.
pub const RM_TRACKER: u16 = 8031;

/// ResourceManager client address (8032): job submission.
pub const RM_CLIENT: u16 = 8032;

/// ResourceManager admin address (8033).
pub const RM_ADMIN: u16 = 8033;

/// NodeManager container-management address (default 0 → conventionally
/// 45454 in distributions that pin it; the AM contacts this to launch
/// containers).
pub const NM_CONTAINER: u16 = 45454;

/// MapReduce ApplicationMaster RPC port used by the simulator for
/// task ↔ AM umbilical traffic (ephemeral in real deployments; pinned here
/// so the classifier can label it as control traffic).
pub const AM_UMBILICAL: u16 = 45455;

/// First ephemeral (client-side) port the simulator hands out.
pub const EPHEMERAL_BASE: u16 = 32768;

/// Returns true if `port` belongs to a Hadoop control-plane service
/// (RPC, heartbeats, job submission, umbilical) rather than a data-plane
/// transfer.
#[must_use]
pub fn is_control_port(port: u16) -> bool {
    matches!(
        port,
        NAMENODE_RPC
            | NAMENODE_HTTP
            | DATANODE_IPC
            | RM_SCHEDULER
            | RM_TRACKER
            | RM_CLIENT
            | RM_ADMIN
            | NM_CONTAINER
            | AM_UMBILICAL
    )
}

/// Returns true if `port` is a well-known (non-ephemeral) Hadoop port.
#[must_use]
pub fn is_hadoop_port(port: u16) -> bool {
    port == DATANODE_XFER || port == SHUFFLE || port == BROADCAST || is_control_port(port)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_ports_are_control() {
        for p in [
            NAMENODE_RPC,
            DATANODE_IPC,
            RM_SCHEDULER,
            RM_TRACKER,
            RM_CLIENT,
            RM_ADMIN,
            NM_CONTAINER,
            AM_UMBILICAL,
        ] {
            assert!(is_control_port(p), "{p} should be control");
            assert!(is_hadoop_port(p));
        }
    }

    #[test]
    fn data_ports_are_not_control() {
        assert!(!is_control_port(DATANODE_XFER));
        assert!(!is_control_port(SHUFFLE));
        assert!(!is_control_port(BROADCAST));
        assert!(is_hadoop_port(DATANODE_XFER));
        assert!(is_hadoop_port(SHUFFLE));
        assert!(is_hadoop_port(BROADCAST));
    }

    #[test]
    fn ephemeral_ports_are_unknown() {
        assert!(!is_hadoop_port(EPHEMERAL_BASE));
        assert!(!is_hadoop_port(EPHEMERAL_BASE + 100));
    }
}
