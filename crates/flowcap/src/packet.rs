//! Packet-level capture records.

use keddah_des::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies a host in the captured cluster.
///
/// A stand-in for an IP address: the simulated testbed numbers its nodes
/// densely from zero. The field is public because `NodeId` is a plain
/// identifier with no invariant.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// One captured packet (or packet aggregate).
///
/// The simulated capture emits one record per transport segment group
/// rather than per MTU-sized frame; `bytes` carries the payload size. The
/// SYN/FIN flags delimit connections exactly as a tcpdump-based flow
/// reassembler would use them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Sending host.
    pub src: NodeId,
    /// Source transport port.
    pub src_port: u16,
    /// Receiving host.
    pub dst: NodeId,
    /// Destination transport port.
    pub dst_port: u16,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Connection-open marker.
    pub syn: bool,
    /// Connection-close marker.
    pub fin: bool,
}

impl PacketRecord {
    /// Creates a mid-connection data packet.
    #[must_use]
    pub fn data(
        ts: SimTime,
        src: NodeId,
        src_port: u16,
        dst: NodeId,
        dst_port: u16,
        bytes: u64,
    ) -> Self {
        PacketRecord {
            ts,
            src,
            src_port,
            dst,
            dst_port,
            bytes,
            syn: false,
            fin: false,
        }
    }

    /// Creates a connection-opening packet.
    #[must_use]
    pub fn syn(
        ts: SimTime,
        src: NodeId,
        src_port: u16,
        dst: NodeId,
        dst_port: u16,
        bytes: u64,
    ) -> Self {
        PacketRecord {
            syn: true,
            ..PacketRecord::data(ts, src, src_port, dst, dst_port, bytes)
        }
    }

    /// Creates a connection-closing packet.
    #[must_use]
    pub fn fin(
        ts: SimTime,
        src: NodeId,
        src_port: u16,
        dst: NodeId,
        dst_port: u16,
        bytes: u64,
    ) -> Self {
        PacketRecord {
            fin: true,
            ..PacketRecord::data(ts, src, src_port, dst, dst_port, bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let t = SimTime::from_millis(1);
        let d = PacketRecord::data(t, NodeId(0), 1, NodeId(1), 2, 100);
        assert!(!d.syn && !d.fin);
        let s = PacketRecord::syn(t, NodeId(0), 1, NodeId(1), 2, 100);
        assert!(s.syn && !s.fin);
        let f = PacketRecord::fin(t, NodeId(0), 1, NodeId(1), 2, 100);
        assert!(!f.syn && f.fin);
        assert_eq!(f.bytes, 100);
    }

    #[test]
    fn node_id_display_and_from() {
        assert_eq!(NodeId::from(3u32).to_string(), "node3");
        assert_eq!(NodeId(3), NodeId::from(3u32));
    }

    #[test]
    fn serde_roundtrip() {
        let p = PacketRecord::syn(SimTime::from_secs(1), NodeId(5), 1024, NodeId(9), 50010, 64);
        let json = serde_json::to_string(&p).unwrap();
        let back: PacketRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
