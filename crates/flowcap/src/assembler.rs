//! Packet-to-flow reassembly.

use std::collections::HashMap;

use keddah_des::{Duration, SimTime};

use crate::flow::{FiveTuple, FlowRecord};
use crate::packet::PacketRecord;

/// Default idle gap after which a connection with no FIN is considered
/// closed (matches the common 60 s tcpdump post-processing convention).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Reassembles a packet stream into [`FlowRecord`]s.
///
/// Packets are grouped by canonical 5-tuple. A flow ends when a FIN-marked
/// packet arrives or when the gap to the next packet of the same tuple
/// exceeds the idle timeout (in which case a new flow on the same tuple
/// begins). Packets must be pushed in non-decreasing timestamp order —
/// the capture produces them that way.
///
/// The originator of a flow is the source of its first observed packet,
/// which for complete captures is the SYN sender.
///
/// # Examples
///
/// ```
/// use keddah_des::SimTime;
/// use keddah_flowcap::{FlowAssembler, NodeId, PacketRecord};
///
/// let mut asm = FlowAssembler::new();
/// asm.push(PacketRecord::syn(SimTime::ZERO, NodeId(0), 1111, NodeId(1), 2222, 10));
/// asm.push(PacketRecord::data(SimTime::from_millis(1), NodeId(1), 2222, NodeId(0), 1111, 990));
/// asm.push(PacketRecord::fin(SimTime::from_millis(2), NodeId(0), 1111, NodeId(1), 2222, 0));
/// let flows = asm.finish();
/// assert_eq!(flows.len(), 1);
/// assert_eq!(flows[0].fwd_bytes, 10);
/// assert_eq!(flows[0].rev_bytes, 990);
/// ```
#[derive(Debug, Clone)]
pub struct FlowAssembler {
    idle_timeout: Duration,
    active: HashMap<FiveTuple, PendingFlow>,
    finished: Vec<FlowRecord>,
    last_ts: SimTime,
}

#[derive(Debug, Clone)]
struct PendingFlow {
    tuple: FiveTuple, // oriented from the originator
    start: SimTime,
    end: SimTime,
    fwd_bytes: u64,
    rev_bytes: u64,
    packets: u64,
}

impl PendingFlow {
    fn into_record(self) -> FlowRecord {
        FlowRecord {
            tuple: self.tuple,
            start: self.start,
            end: self.end,
            fwd_bytes: self.fwd_bytes,
            rev_bytes: self.rev_bytes,
            packets: self.packets,
            component: None,
        }
    }
}

impl FlowAssembler {
    /// Creates an assembler with the default 60 s idle timeout.
    #[must_use]
    pub fn new() -> Self {
        FlowAssembler::with_idle_timeout(DEFAULT_IDLE_TIMEOUT)
    }

    /// Creates an assembler with a custom idle timeout.
    #[must_use]
    pub fn with_idle_timeout(idle_timeout: Duration) -> Self {
        FlowAssembler {
            idle_timeout,
            active: HashMap::new(),
            finished: Vec::new(),
            last_ts: SimTime::ZERO,
        }
    }

    /// The configured idle timeout.
    #[must_use]
    pub fn idle_timeout(&self) -> Duration {
        self.idle_timeout
    }

    /// Ingests one packet.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if packets arrive out of timestamp order.
    pub fn push(&mut self, packet: PacketRecord) {
        debug_assert!(
            packet.ts >= self.last_ts,
            "packets must arrive in timestamp order"
        );
        self.last_ts = packet.ts;
        let oriented = FiveTuple {
            src: packet.src,
            src_port: packet.src_port,
            dst: packet.dst,
            dst_port: packet.dst_port,
        };
        let key = oriented.canonical();

        // Expire an idle predecessor on the same tuple.
        if let Some(pending) = self.active.get(&key) {
            if packet.ts.saturating_since(pending.end) > self.idle_timeout {
                let done = self.active.remove(&key).expect("checked above");
                self.finished.push(done.into_record());
            }
        }

        let entry = self.active.entry(key).or_insert_with(|| PendingFlow {
            tuple: oriented,
            start: packet.ts,
            end: packet.ts,
            fwd_bytes: 0,
            rev_bytes: 0,
            packets: 0,
        });
        entry.end = packet.ts;
        entry.packets += 1;
        if oriented == entry.tuple {
            entry.fwd_bytes += packet.bytes;
        } else {
            entry.rev_bytes += packet.bytes;
        }
        if packet.fin {
            let done = self.active.remove(&key).expect("just inserted");
            self.finished.push(done.into_record());
        }
    }

    /// Number of flows completed so far (FIN or idle-expired).
    #[must_use]
    pub fn completed(&self) -> usize {
        self.finished.len()
    }

    /// Number of connections still open.
    #[must_use]
    pub fn open(&self) -> usize {
        self.active.len()
    }

    /// Flushes all still-open connections and returns every flow, sorted
    /// by start time (ties broken by tuple for determinism).
    #[must_use]
    pub fn finish(mut self) -> Vec<FlowRecord> {
        let mut rest: Vec<FlowRecord> = self.active.drain().map(|(_, p)| p.into_record()).collect();
        self.finished.append(&mut rest);
        self.finished.sort_by_key(|f| {
            (
                f.start,
                f.tuple.src.0,
                f.tuple.src_port,
                f.tuple.dst.0,
                f.tuple.dst_port,
            )
        });
        self.finished
    }
}

impl Default for FlowAssembler {
    fn default() -> Self {
        FlowAssembler::new()
    }
}

impl Extend<PacketRecord> for FlowAssembler {
    fn extend<I: IntoIterator<Item = PacketRecord>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NodeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn single_flow_bidirectional() {
        let mut asm = FlowAssembler::new();
        asm.push(PacketRecord::syn(t(0), NodeId(0), 100, NodeId(1), 200, 10));
        asm.push(PacketRecord::data(
            t(1),
            NodeId(1),
            200,
            NodeId(0),
            100,
            500,
        ));
        asm.push(PacketRecord::data(t(2), NodeId(0), 100, NodeId(1), 200, 20));
        asm.push(PacketRecord::fin(t(3), NodeId(0), 100, NodeId(1), 200, 0));
        let flows = asm.finish();
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert_eq!(f.tuple.src, NodeId(0));
        assert_eq!(f.fwd_bytes, 30);
        assert_eq!(f.rev_bytes, 500);
        assert_eq!(f.packets, 4);
        assert_eq!(f.start, t(0));
        assert_eq!(f.end, t(3));
    }

    #[test]
    fn concurrent_flows_are_kept_apart() {
        let mut asm = FlowAssembler::new();
        for i in 0..10u16 {
            asm.push(PacketRecord::syn(
                t(i as u64),
                NodeId(0),
                1000 + i,
                NodeId(1),
                200,
                100,
            ));
        }
        for i in 0..10u16 {
            asm.push(PacketRecord::fin(
                t(100 + i as u64),
                NodeId(0),
                1000 + i,
                NodeId(1),
                200,
                50,
            ));
        }
        let flows = asm.finish();
        assert_eq!(flows.len(), 10);
        assert!(flows.iter().all(|f| f.fwd_bytes == 150));
    }

    #[test]
    fn idle_timeout_splits_flows() {
        let mut asm = FlowAssembler::with_idle_timeout(Duration::from_secs(1));
        asm.push(PacketRecord::data(t(0), NodeId(0), 100, NodeId(1), 200, 10));
        asm.push(PacketRecord::data(
            t(500),
            NodeId(0),
            100,
            NodeId(1),
            200,
            10,
        ));
        // 2 s gap > 1 s timeout: this starts a new flow.
        asm.push(PacketRecord::data(
            t(2_500),
            NodeId(0),
            100,
            NodeId(1),
            200,
            10,
        ));
        let flows = asm.finish();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].packets, 2);
        assert_eq!(flows[1].packets, 1);
    }

    #[test]
    fn unfinished_flows_flushed_on_finish() {
        let mut asm = FlowAssembler::new();
        asm.push(PacketRecord::syn(t(0), NodeId(3), 1, NodeId(4), 2, 7));
        assert_eq!(asm.open(), 1);
        assert_eq!(asm.completed(), 0);
        let flows = asm.finish();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].fwd_bytes, 7);
    }

    #[test]
    fn orientation_follows_first_packet() {
        // First observed packet is from the "server" side (partial capture):
        // the assembler orients the flow from that side.
        let mut asm = FlowAssembler::new();
        asm.push(PacketRecord::data(
            t(0),
            NodeId(9),
            200,
            NodeId(8),
            100,
            1000,
        ));
        asm.push(PacketRecord::data(t(1), NodeId(8), 100, NodeId(9), 200, 10));
        let flows = asm.finish();
        assert_eq!(flows[0].tuple.src, NodeId(9));
        assert_eq!(flows[0].fwd_bytes, 1000);
        assert_eq!(flows[0].rev_bytes, 10);
    }

    #[test]
    fn results_sorted_by_start() {
        let mut asm = FlowAssembler::new();
        asm.push(PacketRecord::syn(t(5), NodeId(0), 1, NodeId(1), 2, 1));
        asm.push(PacketRecord::syn(t(6), NodeId(2), 3, NodeId(3), 4, 1));
        asm.push(PacketRecord::fin(t(7), NodeId(2), 3, NodeId(3), 4, 1));
        asm.push(PacketRecord::fin(t(8), NodeId(0), 1, NodeId(1), 2, 1));
        let flows = asm.finish();
        assert!(flows[0].start <= flows[1].start);
        assert_eq!(flows[0].tuple.src, NodeId(0));
    }

    #[test]
    fn extend_ingests_packets() {
        let mut asm = FlowAssembler::new();
        asm.extend(vec![
            PacketRecord::syn(t(0), NodeId(0), 1, NodeId(1), 2, 5),
            PacketRecord::fin(t(1), NodeId(0), 1, NodeId(1), 2, 5),
        ]);
        assert_eq!(asm.completed(), 1);
    }
}
