//! Labelled flow traces with JSONL persistence.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use serde::{Deserialize, Serialize};

use crate::classify::{self, Component};
use crate::flow::FlowRecord;
use crate::stats::{component_stats, ComponentStats, Timeline};
use keddah_des::{Duration, SimTime};

/// Metadata describing how a trace was captured: the covariates Keddah's
/// models condition on.
#[derive(Debug, Clone, PartialEq, Default, Deserialize)]
pub struct TraceMeta {
    /// Workload name (e.g. `"terasort"`).
    pub workload: String,
    /// Job input size in bytes.
    pub input_bytes: u64,
    /// Number of reduce tasks configured.
    pub reducers: u32,
    /// HDFS replication factor.
    pub replication: u16,
    /// HDFS block size in bytes.
    pub block_bytes: u64,
    /// Number of worker nodes in the capturing cluster.
    pub nodes: u32,
    /// Seed the capture run used (for reproducibility bookkeeping).
    pub seed: u64,
    /// Simulator ground-truth counters for the run (name → value), when
    /// the capturing driver recorded them — faulted captures carry their
    /// failure/re-replication counters here. Absent in older traces and
    /// fault-free captures; the field serializes only when present, so
    /// clean traces keep their historical byte layout.
    pub counters: Option<std::collections::BTreeMap<String, u64>>,
}

// Manual impl rather than derive: `counters` must vanish from the JSON
// when `None` (the vendored serde derive has no `skip_serializing_if`),
// keeping fault-free captures byte-identical to pre-fault-subsystem
// traces.
impl Serialize for TraceMeta {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("workload".to_string(), self.workload.to_value()),
            ("input_bytes".to_string(), self.input_bytes.to_value()),
            ("reducers".to_string(), self.reducers.to_value()),
            ("replication".to_string(), self.replication.to_value()),
            ("block_bytes".to_string(), self.block_bytes.to_value()),
            ("nodes".to_string(), self.nodes.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if let Some(counters) = &self.counters {
            entries.push(("counters".to_string(), counters.to_value()));
        }
        serde::Value::Object(entries)
    }
}

/// A capture artefact: labelled flows plus capture metadata.
///
/// Persisted as JSONL — the first line is the [`TraceMeta`], each further
/// line one [`FlowRecord`] — so traces stream, diff, and `grep` well.
///
/// # Examples
///
/// ```
/// use keddah_flowcap::{Trace, TraceMeta};
///
/// let trace = Trace::new(TraceMeta { workload: "wordcount".into(), ..Default::default() }, vec![]);
/// let mut buf = Vec::new();
/// trace.write_jsonl(&mut buf).unwrap();
/// let back = Trace::read_jsonl(&buf[..]).unwrap();
/// assert_eq!(back.meta().workload, "wordcount");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    meta: TraceMeta,
    flows: Vec<FlowRecord>,
}

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The parser's message.
        message: String,
    },
    /// The stream had no metadata header line.
    MissingHeader,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::MissingHeader => write!(f, "trace has no metadata header line"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl Trace {
    /// Creates a trace from metadata and flows.
    #[must_use]
    pub fn new(meta: TraceMeta, flows: Vec<FlowRecord>) -> Self {
        Trace { meta, flows }
    }

    /// The capture metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The flows, in start-time order as produced by the assembler.
    #[must_use]
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    /// Consumes the trace, returning its flows.
    #[must_use]
    pub fn into_flows(self) -> Vec<FlowRecord> {
        self.flows
    }

    /// Number of flows in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if the trace has no flows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Runs the port classifier over every flow, labelling in place.
    pub fn classify(&mut self) {
        classify::classify_all(&mut self.flows);
    }

    /// Flows belonging to `component` (unlabelled flows match `Other`).
    pub fn component_flows(&self, component: Component) -> impl Iterator<Item = &FlowRecord> {
        self.flows
            .iter()
            .filter(move |f| f.component.unwrap_or(Component::Other) == component)
    }

    /// Flow sizes (total bytes, as f64) for one component — the sample the
    /// model-fitting step consumes.
    #[must_use]
    pub fn component_sizes(&self, component: Component) -> Vec<f64> {
        self.component_flows(component)
            .map(|f| f.total_bytes() as f64)
            .collect()
    }

    /// Flow start times (seconds from trace start) for one component.
    #[must_use]
    pub fn component_starts(&self, component: Component) -> Vec<f64> {
        let t0 = self
            .flows
            .iter()
            .map(|f| f.start)
            .min()
            .unwrap_or(SimTime::ZERO);
        self.component_flows(component)
            .map(|f| f.start.saturating_since(t0).as_secs_f64())
            .collect()
    }

    /// Per-component aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> Vec<ComponentStats> {
        component_stats(&self.flows)
    }

    /// Binned traffic timeline.
    #[must_use]
    pub fn timeline(&self, bin_width: Duration) -> Timeline {
        Timeline::build(&self.flows, bin_width)
    }

    /// Total bytes across all flows.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.total_bytes()).sum()
    }

    /// Job makespan: the span from first flow start to last flow end.
    #[must_use]
    pub fn makespan(&self) -> Duration {
        let start = self.flows.iter().map(|f| f.start).min();
        let end = self.flows.iter().map(|f| f.end).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => Duration::ZERO,
        }
    }

    /// Merges several traces (e.g. repeated runs of the same job) into one
    /// pooled trace carrying the first trace's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn pooled(traces: &[Trace]) -> Trace {
        assert!(!traces.is_empty(), "cannot pool zero traces");
        let mut flows = Vec::with_capacity(traces.iter().map(Trace::len).sum());
        for t in traces {
            flows.extend_from_slice(&t.flows);
        }
        Trace {
            meta: traces[0].meta.clone(),
            flows,
        }
    }

    /// Writes the trace as JSONL: one metadata header line, then one line
    /// per flow.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> Result<(), TraceError> {
        let meta = serde_json::to_string(&self.meta).expect("meta serializes");
        writeln!(writer, "{meta}")?;
        for flow in &self.flows {
            let line = serde_json::to_string(flow).expect("flow serializes");
            writeln!(writer, "{line}")?;
        }
        Ok(())
    }

    /// Reads a trace written by [`write_jsonl`](Self::write_jsonl).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::MissingHeader`] on an empty stream and
    /// [`TraceError::Parse`] on malformed lines.
    pub fn read_jsonl<R: Read>(reader: R) -> Result<Trace, TraceError> {
        let mut lines = BufReader::new(reader).lines();
        let header = lines.next().ok_or(TraceError::MissingHeader)??;
        let meta: TraceMeta = serde_json::from_str(&header).map_err(|e| TraceError::Parse {
            line: 1,
            message: e.to_string(),
        })?;
        let mut flows = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let flow: FlowRecord = serde_json::from_str(&line).map_err(|e| TraceError::Parse {
                line: i + 2,
                message: e.to_string(),
            })?;
            flows.push(flow);
        }
        Ok(Trace { meta, flows })
    }

    /// Reads a JSONL trace, tolerating malformed flow lines: good lines
    /// are kept, bad ones are returned as `(line, message)` rejects
    /// alongside the trace. This is the reader for live-rotated capture
    /// files, where the tail of the file may be a half-written record —
    /// the daemon must ingest the intact prefix and count the damage,
    /// not die.
    ///
    /// # Errors
    ///
    /// Returns an error only when the stream is unreadable or the
    /// *header* is missing or malformed: without valid metadata none of
    /// the flows can be attributed, so there is nothing to salvage.
    pub fn read_jsonl_lenient<R: Read>(
        reader: R,
    ) -> Result<(Trace, Vec<(usize, String)>), TraceError> {
        let mut lines = BufReader::new(reader).lines();
        let header = lines.next().ok_or(TraceError::MissingHeader)??;
        let meta: TraceMeta = serde_json::from_str(&header).map_err(|e| TraceError::Parse {
            line: 1,
            message: e.to_string(),
        })?;
        let mut flows = Vec::new();
        let mut rejects = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<FlowRecord>(&line) {
                Ok(flow) => flows.push(flow),
                Err(e) => rejects.push((i + 2, e.to_string())),
            }
        }
        Ok((Trace { meta, flows }, rejects))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use crate::packet::NodeId;
    use crate::ports;

    fn flow(start_s: u64, dst_port: u16, fwd: u64, rev: u64) -> FlowRecord {
        FlowRecord {
            tuple: FiveTuple {
                src: NodeId(0),
                src_port: 40_000,
                dst: NodeId(1),
                dst_port,
            },
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(start_s + 1),
            fwd_bytes: fwd,
            rev_bytes: rev,
            packets: 2,
            component: None,
        }
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new(
            TraceMeta {
                workload: "terasort".into(),
                input_bytes: 1 << 30,
                reducers: 8,
                replication: 3,
                block_bytes: 128 << 20,
                nodes: 16,
                seed: 1,
                counters: None,
            },
            vec![
                flow(0, ports::DATANODE_XFER, 100, 1 << 20), // read
                flow(1, ports::DATANODE_XFER, 1 << 20, 100), // write
                flow(2, ports::SHUFFLE, 50, 1 << 19),
                flow(3, ports::NAMENODE_RPC, 10, 10),
            ],
        );
        t.classify();
        t
    }

    #[test]
    fn classify_then_filter() {
        let t = sample_trace();
        assert_eq!(t.component_flows(Component::HdfsRead).count(), 1);
        assert_eq!(t.component_flows(Component::HdfsWrite).count(), 1);
        assert_eq!(t.component_flows(Component::Shuffle).count(), 1);
        assert_eq!(t.component_flows(Component::Control).count(), 1);
        assert_eq!(t.component_flows(Component::Other).count(), 0);
    }

    #[test]
    fn component_sizes_extract_bytes() {
        let t = sample_trace();
        let sizes = t.component_sizes(Component::Shuffle);
        assert_eq!(sizes, vec![(50u64 + (1 << 19)) as f64]);
    }

    #[test]
    fn component_starts_relative_to_trace_start() {
        let t = sample_trace();
        assert_eq!(t.component_starts(Component::HdfsWrite), vec![1.0]);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn read_rejects_empty_and_garbage() {
        assert!(matches!(
            Trace::read_jsonl(&b""[..]),
            Err(TraceError::MissingHeader)
        ));
        let bad = b"{\"workload\":\"x\",\"input_bytes\":0,\"reducers\":0,\"replication\":0,\"block_bytes\":0,\"nodes\":0,\"seed\":0}\nnot json\n";
        match Trace::read_jsonl(&bad[..]) {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    /// Half-written rotations: a truncated trailing record must not cost
    /// the intact prefix.
    #[test]
    fn lenient_read_salvages_good_prefix() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        // Simulate a writer caught mid-record: chop the last line.
        let cut = buf.len() - 20;
        let (back, rejects) = Trace::read_jsonl_lenient(&buf[..cut]).unwrap();
        assert_eq!(back.len(), t.len() - 1, "intact flows survive");
        assert_eq!(rejects.len(), 1);
        assert_eq!(rejects[0].0, 5, "the chopped line is reported");
        // A clean trace round-trips with no rejects.
        let (clean, none) = Trace::read_jsonl_lenient(&buf[..]).unwrap();
        assert_eq!(clean, t);
        assert!(none.is_empty());
    }

    /// Without a parseable header nothing can be attributed; lenient
    /// reading still refuses.
    #[test]
    fn lenient_read_requires_a_header() {
        assert!(matches!(
            Trace::read_jsonl_lenient(&b""[..]),
            Err(TraceError::MissingHeader)
        ));
        assert!(matches!(
            Trace::read_jsonl_lenient(&b"not json\n"[..]),
            Err(TraceError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn pooled_concatenates() {
        let t = sample_trace();
        let pooled = Trace::pooled(&[t.clone(), t.clone()]);
        assert_eq!(pooled.len(), 8);
        assert_eq!(pooled.meta().workload, "terasort");
        assert_eq!(pooled.total_bytes(), 2 * t.total_bytes());
    }

    #[test]
    fn makespan_spans_flows() {
        let t = sample_trace();
        assert_eq!(t.makespan(), Duration::from_secs(4));
        let empty = Trace::new(TraceMeta::default(), vec![]);
        assert_eq!(empty.makespan(), Duration::ZERO);
        assert!(empty.is_empty());
    }
}
