//! Flow-level capture records.

use keddah_des::{Duration, SimTime};
use serde::{Deserialize, Serialize};

use crate::classify::Component;
use crate::packet::NodeId;

/// A transport 5-tuple identifying a connection (protocol is implicitly
/// TCP: all Hadoop data-plane traffic is TCP).
///
/// The *originator* of the connection is `(src, src_port)` — the side that
/// sent the SYN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Connection originator host.
    pub src: NodeId,
    /// Originator port.
    pub src_port: u16,
    /// Responder host.
    pub dst: NodeId,
    /// Responder port (the service port for Hadoop traffic).
    pub dst_port: u16,
}

impl FiveTuple {
    /// The tuple with source and destination swapped — the reverse
    /// direction of the same connection.
    #[must_use]
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
        }
    }

    /// A canonical key identifying the connection regardless of direction:
    /// the lexicographically smaller orientation.
    #[must_use]
    pub fn canonical(self) -> FiveTuple {
        let rev = self.reversed();
        if (self.src, self.src_port, self.dst, self.dst_port)
            <= (rev.src, rev.src_port, rev.dst, rev.dst_port)
        {
            self
        } else {
            rev
        }
    }
}

impl std::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// One reassembled flow: a connection observed from first to last packet.
///
/// Byte counts are kept per direction. `fwd_bytes` flows from the
/// originator to the responder; `rev_bytes` the other way. The split is
/// what lets the classifier tell an HDFS *read* (bulk bytes from the
/// DataNode back to the client) from an HDFS *write* (bulk bytes toward
/// the DataNode) on the same service port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The connection 5-tuple, oriented from the originator.
    pub tuple: FiveTuple,
    /// Timestamp of the first packet.
    pub start: SimTime,
    /// Timestamp of the last packet.
    pub end: SimTime,
    /// Payload bytes originator → responder.
    pub fwd_bytes: u64,
    /// Payload bytes responder → originator.
    pub rev_bytes: u64,
    /// Packets in both directions.
    pub packets: u64,
    /// Component label assigned by the classifier, if any.
    pub component: Option<Component>,
}

impl FlowRecord {
    /// Total payload bytes in both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.fwd_bytes + self.rev_bytes
    }

    /// Flow duration (zero for single-packet flows).
    #[must_use]
    pub fn duration(&self) -> Duration {
        self.end.saturating_since(self.start)
    }

    /// The direction carrying the majority of the bytes: `true` if the
    /// originator sent more than it received.
    #[must_use]
    pub fn forward_dominant(&self) -> bool {
        self.fwd_bytes >= self.rev_bytes
    }

    /// Returns a copy labelled with `component`.
    #[must_use]
    pub fn with_component(mut self, component: Component) -> FlowRecord {
        self.component = Some(component);
        self
    }
}

impl std::fmt::Display for FlowRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} .. {}] fwd={}B rev={}B {}",
            self.tuple,
            self.start,
            self.end,
            self.fwd_bytes,
            self.rev_bytes,
            self.component
                .map_or("unlabelled".to_string(), |c| c.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src: NodeId(1),
            src_port: 40_000,
            dst: NodeId(2),
            dst_port: 50_010,
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = tuple();
        let r = t.reversed();
        assert_eq!(r.src, NodeId(2));
        assert_eq!(r.dst_port, 40_000);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn canonical_is_direction_independent() {
        let t = tuple();
        assert_eq!(t.canonical(), t.reversed().canonical());
    }

    #[test]
    fn flow_accessors() {
        let f = FlowRecord {
            tuple: tuple(),
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(3),
            fwd_bytes: 100,
            rev_bytes: 900,
            packets: 4,
            component: None,
        };
        assert_eq!(f.total_bytes(), 1000);
        assert_eq!(f.duration(), Duration::from_secs(2));
        assert!(!f.forward_dominant());
        let labelled = f.with_component(Component::HdfsRead);
        assert_eq!(labelled.component, Some(Component::HdfsRead));
        assert!(labelled.to_string().contains("hdfs_read"));
    }
}
