//! Bounded-memory incremental flow reassembly.
//!
//! [`FlowAssembler`](crate::FlowAssembler) is a batch device: it holds every
//! open connection in an unbounded map and only resolves idle expiry when
//! the *next* packet of the same tuple arrives (or at [`finish`]). That is
//! fine for a finished capture file but not for a long-running daemon
//! tailing rotating captures, where the connection table must stay bounded
//! no matter what the stream does.
//!
//! [`StreamAssembler`] is the streaming counterpart:
//!
//! * connection state lives in a **fixed-capacity slot slab** threaded
//!   onto an intrusive least-recently-touched ring, so memory is
//!   `O(max_active)` regardless of stream length;
//! * a **stream clock** (the maximum timestamp observed so far) drives
//!   eager idle eviction: on every push, flows whose last activity is
//!   older than `clock − idle_timeout` are emitted from the cold end of
//!   the ring. This is exact — no flow is evicted early and none linger —
//!   because the ring is ordered by last-touch time;
//! * when the slab is full, the **least recently touched** flow is
//!   evicted to make room (the explicit eviction policy: LRU-by-activity,
//!   counted separately from idle expiry so operators can tell table
//!   pressure from natural connection churn).
//!
//! # Equivalence with the batch assembler
//!
//! For an in-timestamp-order packet stream that never hits the capacity
//! limit, the multiset of records emitted by [`StreamAssembler`] (drained
//! plus flushed) is **identical** to [`FlowAssembler::finish`](crate::FlowAssembler::finish) modulo
//! ordering: both split a tuple when the packet gap exceeds the idle
//! timeout, both complete on FIN, and the eager idle sweep only fires at
//! stream-clock instants where the batch assembler would have split (a
//! later same-tuple packet necessarily arrives at `ts ≥ clock`, so its gap
//! also exceeds the timeout) or would have flushed the identical record at
//! `finish`. Out-of-order input is additionally tolerated (no panic):
//! flow `start`/`end` are tracked as min/max timestamps and byte totals
//! are conserved exactly, though record *boundaries* may differ from a
//! batch pass over the sorted stream.
//!
//! [`finish`]: crate::FlowAssembler::finish

use std::collections::HashMap;

use keddah_des::{Duration, SimTime};

use crate::assembler::DEFAULT_IDLE_TIMEOUT;
use crate::flow::{FiveTuple, FlowRecord};
use crate::packet::PacketRecord;

/// Sentinel index terminating the intrusive LRU ring.
const NIL: usize = usize::MAX;

/// Default connection-table capacity for the streaming assembler.
pub const DEFAULT_MAX_ACTIVE: usize = 65_536;

/// Configuration for [`StreamAssembler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Idle gap after which a connection with no FIN is considered closed.
    pub idle_timeout: Duration,
    /// Maximum simultaneously open connections. When full, the least
    /// recently touched connection is evicted to make room. Values below
    /// one are treated as one.
    pub max_active: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            max_active: DEFAULT_MAX_ACTIVE,
        }
    }
}

/// Counters describing what the streaming assembler has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Packets ingested.
    pub packets: u64,
    /// Flows completed by an explicit FIN.
    pub completed_fin: u64,
    /// Flows evicted because they idled past the timeout (includes
    /// same-tuple idle splits, which the batch assembler also performs).
    pub evicted_idle: u64,
    /// Flows evicted to make room when the connection table was full.
    pub evicted_capacity: u64,
    /// Flows force-emitted by [`StreamAssembler::flush`].
    pub flushed: u64,
}

impl StreamStats {
    /// Total flows emitted for any reason.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.completed_fin + self.evicted_idle + self.evicted_capacity + self.flushed
    }

    /// Flows evicted rather than naturally completed (idle + capacity).
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted_idle + self.evicted_capacity
    }
}

#[derive(Debug, Clone)]
struct PendingFlow {
    tuple: FiveTuple, // oriented from the originator
    start: SimTime,
    end: SimTime,
    /// Stream-clock instant of the last packet (≥ `end` under reordering).
    touched: SimTime,
    fwd_bytes: u64,
    rev_bytes: u64,
    packets: u64,
}

impl PendingFlow {
    fn into_record(self) -> FlowRecord {
        FlowRecord {
            tuple: self.tuple,
            start: self.start,
            end: self.end,
            fwd_bytes: self.fwd_bytes,
            rev_bytes: self.rev_bytes,
            packets: self.packets,
            component: None,
        }
    }
}

/// Why a slot is being emitted; selects the stats counter.
#[derive(Clone, Copy)]
enum Emit {
    Fin,
    Idle,
    Capacity,
    Flush,
}

/// Incremental 5-tuple flow reassembly with bounded memory.
///
/// See the [module docs](self) for the eviction policy and the equivalence
/// argument against [`FlowAssembler`](crate::FlowAssembler).
///
/// # Examples
///
/// ```
/// use keddah_des::SimTime;
/// use keddah_flowcap::{NodeId, PacketRecord, StreamAssembler};
///
/// let mut asm = StreamAssembler::new();
/// asm.push(PacketRecord::syn(SimTime::ZERO, NodeId(0), 1111, NodeId(1), 2222, 10));
/// asm.push(PacketRecord::fin(SimTime::from_millis(2), NodeId(0), 1111, NodeId(1), 2222, 990));
/// let done = asm.drain();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].fwd_bytes, 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct StreamAssembler {
    config: StreamConfig,
    /// Maximum timestamp observed so far; drives idle eviction.
    clock: SimTime,
    /// Slot slab: `None` entries are free and listed in `free`.
    slots: Vec<Option<PendingFlow>>,
    /// Intrusive LRU links (`NIL`-terminated, parallel to `slots`).
    prev: Vec<usize>,
    next: Vec<usize>,
    free: Vec<usize>,
    /// Cold end of the ring (least recently touched).
    head: usize,
    /// Hot end of the ring (most recently touched).
    tail: usize,
    index: HashMap<FiveTuple, usize>,
    done: Vec<FlowRecord>,
    stats: StreamStats,
}

impl StreamAssembler {
    /// Creates a streaming assembler with the default configuration
    /// (60 s idle timeout, 65 536-connection table).
    #[must_use]
    pub fn new() -> Self {
        StreamAssembler::with_config(StreamConfig::default())
    }

    /// Creates a streaming assembler with an explicit configuration.
    #[must_use]
    pub fn with_config(config: StreamConfig) -> Self {
        let config = StreamConfig {
            max_active: config.max_active.max(1),
            ..config
        };
        StreamAssembler {
            config,
            clock: SimTime::ZERO,
            slots: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            index: HashMap::new(),
            done: Vec::new(),
            stats: StreamStats::default(),
        }
    }

    /// The effective configuration.
    #[must_use]
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// The stream clock: the maximum packet timestamp observed so far.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of connections currently open.
    #[must_use]
    pub fn open(&self) -> usize {
        self.index.len()
    }

    /// Number of completed records waiting in [`drain`](Self::drain).
    #[must_use]
    pub fn ready(&self) -> usize {
        self.done.len()
    }

    /// Counters accumulated since construction.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Ingests one packet. Out-of-order timestamps are tolerated.
    pub fn push(&mut self, packet: PacketRecord) {
        self.stats.packets += 1;
        if packet.ts > self.clock {
            self.clock = packet.ts;
        }
        self.sweep_idle();

        let oriented = FiveTuple {
            src: packet.src,
            src_port: packet.src_port,
            dst: packet.dst,
            dst_port: packet.dst_port,
        };
        let key = oriented.canonical();

        if let Some(&slot) = self.index.get(&key) {
            let pending = self.slots[slot].as_ref().expect("indexed slot occupied");
            // Expire an idle predecessor on the same tuple, exactly as the
            // batch assembler does; fall through to open a fresh flow.
            if packet.ts.saturating_since(pending.end) > self.config.idle_timeout {
                self.emit(slot, Emit::Idle);
            } else {
                let pending = self.slots[slot].as_mut().expect("indexed slot occupied");
                pending.start = pending.start.min(packet.ts);
                pending.end = pending.end.max(packet.ts);
                pending.packets += 1;
                if oriented == pending.tuple {
                    pending.fwd_bytes += packet.bytes;
                } else {
                    pending.rev_bytes += packet.bytes;
                }
                pending.touched = self.clock;
                if packet.fin {
                    self.emit(slot, Emit::Fin);
                } else {
                    self.touch(slot);
                }
                return;
            }
        }

        // New flow: make room first so the table never exceeds capacity.
        if self.index.len() >= self.config.max_active {
            let coldest = self.head;
            debug_assert_ne!(coldest, NIL, "full table implies non-empty ring");
            self.emit(coldest, Emit::Capacity);
        }
        let flow = PendingFlow {
            tuple: oriented,
            start: packet.ts,
            end: packet.ts,
            touched: self.clock,
            fwd_bytes: packet.bytes,
            rev_bytes: 0,
            packets: 1,
        };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(flow);
                i
            }
            None => {
                self.slots.push(Some(flow));
                self.prev.push(NIL);
                self.next.push(NIL);
                self.slots.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.attach_tail(slot);
        if packet.fin {
            self.emit(slot, Emit::Fin);
        }
    }

    /// Takes every record completed since the last drain, in completion
    /// order (deterministic for a given packet sequence).
    #[must_use]
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.done)
    }

    /// Force-emits every still-open connection (coldest first) and returns
    /// all pending records. The assembler stays usable afterwards.
    #[must_use]
    pub fn flush(&mut self) -> Vec<FlowRecord> {
        while self.head != NIL {
            self.emit(self.head, Emit::Flush);
        }
        self.drain()
    }

    /// Advances the stream clock to `now` (if later than anything seen)
    /// and evicts connections that have idled past the timeout. Lets a
    /// daemon expire flows during quiet periods with no packet arrivals.
    pub fn advance_clock(&mut self, now: SimTime) {
        if now > self.clock {
            self.clock = now;
        }
        self.sweep_idle();
    }

    /// Evicts from the cold end while the last-touch gap exceeds the idle
    /// timeout. The ring is ordered by `touched`, so stopping at the first
    /// warm entry is exact.
    fn sweep_idle(&mut self) {
        while self.head != NIL {
            let touched = self.slots[self.head]
                .as_ref()
                .expect("ring slot occupied")
                .touched;
            if self.clock.saturating_since(touched) > self.config.idle_timeout {
                self.emit(self.head, Emit::Idle);
            } else {
                break;
            }
        }
    }

    fn emit(&mut self, slot: usize, why: Emit) {
        self.detach(slot);
        let pending = self.slots[slot].take().expect("emitting occupied slot");
        self.index.remove(&pending.tuple.canonical());
        self.free.push(slot);
        self.done.push(pending.into_record());
        match why {
            Emit::Fin => self.stats.completed_fin += 1,
            Emit::Idle => self.stats.evicted_idle += 1,
            Emit::Capacity => self.stats.evicted_capacity += 1,
            Emit::Flush => self.stats.flushed += 1,
        }
    }

    fn detach(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n] = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
    }

    fn attach_tail(&mut self, slot: usize) {
        self.prev[slot] = self.tail;
        self.next[slot] = NIL;
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.next[self.tail] = slot;
        }
        self.tail = slot;
    }

    /// Moves a slot to the hot end of the ring.
    fn touch(&mut self, slot: usize) {
        if self.tail != slot {
            self.detach(slot);
            self.attach_tail(slot);
        }
    }
}

impl Default for StreamAssembler {
    fn default() -> Self {
        StreamAssembler::new()
    }
}

impl Extend<PacketRecord> for StreamAssembler {
    fn extend<I: IntoIterator<Item = PacketRecord>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::FlowAssembler;
    use crate::packet::NodeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn sort_key(f: &FlowRecord) -> (SimTime, u32, u16, u32, u16, SimTime, u64, u64) {
        (
            f.start,
            f.tuple.src.0,
            f.tuple.src_port,
            f.tuple.dst.0,
            f.tuple.dst_port,
            f.end,
            f.fwd_bytes,
            f.rev_bytes,
        )
    }

    /// Tiny deterministic generator (splitmix64) so these tests need no
    /// external RNG dependency.
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn single_flow_bidirectional() {
        let mut asm = StreamAssembler::new();
        asm.push(PacketRecord::syn(t(0), NodeId(0), 100, NodeId(1), 200, 10));
        asm.push(PacketRecord::data(
            t(1),
            NodeId(1),
            200,
            NodeId(0),
            100,
            500,
        ));
        asm.push(PacketRecord::fin(t(3), NodeId(0), 100, NodeId(1), 200, 20));
        let flows = asm.drain();
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert_eq!(f.tuple.src, NodeId(0));
        assert_eq!(f.fwd_bytes, 30);
        assert_eq!(f.rev_bytes, 500);
        assert_eq!(f.packets, 3);
        assert_eq!((f.start, f.end), (t(0), t(3)));
        assert_eq!(asm.stats().completed_fin, 1);
        assert_eq!(asm.open(), 0);
    }

    #[test]
    fn idle_sweep_evicts_without_same_tuple_traffic() {
        let cfg = StreamConfig {
            idle_timeout: Duration::from_secs(1),
            max_active: 16,
        };
        let mut asm = StreamAssembler::with_config(cfg);
        asm.push(PacketRecord::data(t(0), NodeId(0), 100, NodeId(1), 200, 10));
        asm.push(PacketRecord::data(
            t(500),
            NodeId(0),
            100,
            NodeId(1),
            200,
            10,
        ));
        // A packet on a *different* tuple advances the clock past the
        // timeout: the batch assembler would keep the idle flow open until
        // finish(); the stream assembler emits the identical record now.
        asm.push(PacketRecord::data(
            t(2_000),
            NodeId(2),
            300,
            NodeId(3),
            400,
            7,
        ));
        let flows = asm.drain();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].fwd_bytes, 20);
        assert_eq!((flows[0].start, flows[0].end), (t(0), t(500)));
        assert_eq!(asm.stats().evicted_idle, 1);
        assert_eq!(asm.open(), 1);
    }

    #[test]
    fn idle_timeout_splits_same_tuple() {
        let cfg = StreamConfig {
            idle_timeout: Duration::from_secs(1),
            max_active: 16,
        };
        let mut asm = StreamAssembler::with_config(cfg);
        asm.push(PacketRecord::data(t(0), NodeId(0), 100, NodeId(1), 200, 10));
        // 2.5 s gap > 1 s timeout: the idle sweep fires first (same clock
        // advance), so this must still produce exactly two flows.
        asm.push(PacketRecord::data(
            t(2_500),
            NodeId(0),
            100,
            NodeId(1),
            200,
            10,
        ));
        let mut flows = asm.flush();
        flows.sort_by_key(sort_key);
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].packets, 1);
        assert_eq!(flows[1].packets, 1);
        assert_eq!(flows[0].fwd_bytes + flows[1].fwd_bytes, 20);
    }

    #[test]
    fn straddling_flow_emitted_once_with_exact_bytes() {
        // Packets on one tuple straddle the eviction instant: the flow is
        // split into two records whose byte totals sum exactly — nothing
        // double-counted, nothing lost.
        let cfg = StreamConfig {
            idle_timeout: Duration::from_secs(1),
            max_active: 4,
        };
        let mut asm = StreamAssembler::with_config(cfg);
        for (ms, bytes) in [(0u64, 100u64), (400, 200), (900, 300)] {
            asm.push(PacketRecord::data(
                t(ms),
                NodeId(0),
                100,
                NodeId(1),
                200,
                bytes,
            ));
        }
        // Clock jumps far past the timeout, evicting the first segment...
        asm.push(PacketRecord::data(
            t(10_000),
            NodeId(0),
            100,
            NodeId(1),
            200,
            1_000,
        ));
        // ...and the tuple continues as a fresh flow.
        asm.push(PacketRecord::fin(
            t(10_050),
            NodeId(0),
            100,
            NodeId(1),
            200,
            2_000,
        ));
        let flows = asm.drain();
        assert_eq!(flows.len(), 2);
        let total: u64 = flows.iter().map(|f| f.fwd_bytes + f.rev_bytes).sum();
        assert_eq!(total, 3_600);
        assert_eq!(flows[0].fwd_bytes, 600);
        assert_eq!(flows[1].fwd_bytes, 3_000);
        assert_eq!(asm.stats().evicted_idle, 1);
        assert_eq!(asm.stats().completed_fin, 1);
        assert_eq!(asm.open(), 0);
    }

    #[test]
    fn capacity_eviction_is_lru_and_conserves_bytes() {
        let cfg = StreamConfig {
            idle_timeout: Duration::from_secs(3_600),
            max_active: 2,
        };
        let mut asm = StreamAssembler::with_config(cfg);
        asm.push(PacketRecord::data(t(0), NodeId(0), 1, NodeId(9), 2, 11));
        asm.push(PacketRecord::data(t(1), NodeId(1), 1, NodeId(9), 2, 22));
        // Touch the first flow so the second becomes the LRU victim.
        asm.push(PacketRecord::data(t(2), NodeId(0), 1, NodeId(9), 2, 11));
        asm.push(PacketRecord::data(t(3), NodeId(2), 1, NodeId(9), 2, 33));
        assert_eq!(asm.open(), 2);
        assert_eq!(asm.stats().evicted_capacity, 1);
        let evicted = asm.drain();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].tuple.src, NodeId(1));
        assert_eq!(evicted[0].fwd_bytes, 22);
        let mut rest = asm.flush();
        rest.sort_by_key(sort_key);
        let total: u64 = rest.iter().chain(evicted.iter()).map(|f| f.fwd_bytes).sum();
        assert_eq!(total, 11 + 22 + 11 + 33);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cfg = StreamConfig {
            idle_timeout: Duration::from_secs(60),
            max_active: 0,
        };
        let mut asm = StreamAssembler::with_config(cfg);
        assert_eq!(asm.config().max_active, 1);
        asm.push(PacketRecord::data(t(0), NodeId(0), 1, NodeId(1), 2, 5));
        asm.push(PacketRecord::data(t(1), NodeId(2), 1, NodeId(3), 2, 6));
        assert_eq!(asm.open(), 1);
        assert_eq!(asm.stats().evicted_capacity, 1);
    }

    #[test]
    fn out_of_order_packets_conserve_bytes_and_span() {
        let mut asm = StreamAssembler::new();
        asm.push(PacketRecord::data(t(10), NodeId(0), 1, NodeId(1), 2, 100));
        asm.push(PacketRecord::data(t(4), NodeId(0), 1, NodeId(1), 2, 50));
        asm.push(PacketRecord::data(t(7), NodeId(1), 2, NodeId(0), 1, 25));
        let flows = asm.flush();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].fwd_bytes, 150);
        assert_eq!(flows[0].rev_bytes, 25);
        assert_eq!((flows[0].start, flows[0].end), (t(4), t(10)));
    }

    #[test]
    fn advance_clock_expires_quiet_flows() {
        let cfg = StreamConfig {
            idle_timeout: Duration::from_secs(1),
            max_active: 8,
        };
        let mut asm = StreamAssembler::with_config(cfg);
        asm.push(PacketRecord::data(t(0), NodeId(0), 1, NodeId(1), 2, 9));
        assert_eq!(asm.open(), 1);
        asm.advance_clock(t(5_000));
        assert_eq!(asm.open(), 0);
        let flows = asm.drain();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].fwd_bytes, 9);
        assert_eq!(asm.stats().evicted_idle, 1);
    }

    #[test]
    fn matches_batch_assembler_on_in_order_stream() {
        // Pseudo-random in-order stream over a small tuple space with
        // idle gaps and FINs: the streaming assembler must emit exactly
        // the records the batch assembler produces.
        let mut mix = Mix(42);
        let mut packets = Vec::new();
        let mut now = 0u64;
        for _ in 0..4_000 {
            now += mix.next() % 400; // 0–0.4 s steps; some gaps beat 1 s cumulatively
            let a = (mix.next() % 4) as u32;
            let b = 4 + (mix.next() % 4) as u32;
            let port = 1_000 + (mix.next() % 8) as u16;
            let bytes = 1 + mix.next() % 10_000;
            let fin = mix.next().is_multiple_of(23);
            let (src, dst) = if mix.next().is_multiple_of(2) {
                (NodeId(a), NodeId(b))
            } else {
                (NodeId(b), NodeId(a))
            };
            let p = if fin {
                PacketRecord::fin(t(now), src, port, dst, 7_000, bytes)
            } else {
                PacketRecord::data(t(now), src, port, dst, 7_000, bytes)
            };
            packets.push(p);
        }

        let idle = Duration::from_secs(1);
        let mut batch = FlowAssembler::with_idle_timeout(idle);
        let mut stream = StreamAssembler::with_config(StreamConfig {
            idle_timeout: idle,
            max_active: 1_024,
        });
        for p in &packets {
            batch.push(*p);
            stream.push(*p);
        }
        let mut expect = batch.finish();
        let mut got = stream.flush();
        expect.sort_by_key(sort_key);
        got.sort_by_key(sort_key);
        assert_eq!(expect.len(), got.len());
        assert_eq!(expect, got);
        assert!(got.len() > 50, "stream too degenerate to be meaningful");
    }

    #[test]
    fn stats_counters_add_up() {
        let cfg = StreamConfig {
            idle_timeout: Duration::from_secs(1),
            max_active: 2,
        };
        let mut asm = StreamAssembler::with_config(cfg);
        asm.push(PacketRecord::fin(t(0), NodeId(0), 1, NodeId(1), 2, 1));
        asm.push(PacketRecord::data(t(1), NodeId(2), 1, NodeId(3), 2, 1));
        asm.push(PacketRecord::data(t(2), NodeId(4), 1, NodeId(5), 2, 1));
        asm.push(PacketRecord::data(t(3), NodeId(6), 1, NodeId(7), 2, 1)); // capacity evicts
        asm.push(PacketRecord::data(t(5_000), NodeId(8), 1, NodeId(9), 2, 1)); // idles out the rest
        let _ = asm.flush();
        let s = asm.stats();
        assert_eq!(s.packets, 5);
        assert_eq!(s.completed_fin, 1);
        assert_eq!(s.evicted_capacity, 1);
        assert_eq!(s.evicted_idle, 2);
        assert_eq!(s.flushed, 1);
        assert_eq!(s.emitted(), 5);
        assert_eq!(s.evicted(), 3);
    }
}
