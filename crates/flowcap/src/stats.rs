//! Per-component statistics over labelled flow traces.

use std::collections::BTreeMap;

use keddah_des::{Duration, SimTime};
use serde::{Deserialize, Serialize};

use crate::classify::Component;
use crate::flow::FlowRecord;

/// Aggregate statistics for one traffic component within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentStats {
    /// The component these statistics describe.
    pub component: Component,
    /// Number of flows.
    pub flow_count: u64,
    /// Total payload bytes across all flows (both directions).
    pub total_bytes: u64,
    /// Mean flow size in bytes.
    pub mean_flow_bytes: f64,
    /// Largest flow in bytes.
    pub max_flow_bytes: u64,
    /// Mean flow duration in seconds.
    pub mean_duration_secs: f64,
}

/// Computes per-component statistics for `flows`, returning entries only
/// for components that appear. Unlabelled flows count as
/// [`Component::Other`].
///
/// # Examples
///
/// ```
/// use keddah_flowcap::{component_stats, Component, FiveTuple, FlowRecord, NodeId};
/// use keddah_des::SimTime;
///
/// let f = FlowRecord {
///     tuple: FiveTuple { src: NodeId(0), src_port: 1, dst: NodeId(1), dst_port: 2 },
///     start: SimTime::ZERO,
///     end: SimTime::from_secs(2),
///     fwd_bytes: 10,
///     rev_bytes: 0,
///     packets: 1,
///     component: Some(Component::Shuffle),
/// };
/// let stats = component_stats(&[f]);
/// assert_eq!(stats.len(), 1);
/// assert_eq!(stats[0].component, Component::Shuffle);
/// assert_eq!(stats[0].total_bytes, 10);
/// ```
#[must_use]
pub fn component_stats(flows: &[FlowRecord]) -> Vec<ComponentStats> {
    #[derive(Default)]
    struct Acc {
        count: u64,
        bytes: u64,
        max: u64,
        dur: f64,
    }
    let mut by_component: BTreeMap<Component, Acc> = BTreeMap::new();
    for f in flows {
        let c = f.component.unwrap_or(Component::Other);
        let acc = by_component.entry(c).or_default();
        acc.count += 1;
        acc.bytes += f.total_bytes();
        acc.max = acc.max.max(f.total_bytes());
        acc.dur += f.duration().as_secs_f64();
    }
    by_component
        .into_iter()
        .map(|(component, acc)| ComponentStats {
            component,
            flow_count: acc.count,
            total_bytes: acc.bytes,
            mean_flow_bytes: acc.bytes as f64 / acc.count as f64,
            max_flow_bytes: acc.max,
            mean_duration_secs: acc.dur / acc.count as f64,
        })
        .collect()
}

/// One bin of a traffic timeline: bytes transferred per component during
/// `[start, start + width)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineBin {
    /// Bin start time.
    pub start: SimTime,
    /// Bytes per component active in this bin.
    pub bytes: BTreeMap<Component, u64>,
}

/// A binned per-component traffic timeline — the data behind the paper's
/// "anatomy of a job" figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Width of each bin.
    pub bin_width: Duration,
    /// The bins, in time order, covering the full trace span.
    pub bins: Vec<TimelineBin>,
}

impl Timeline {
    /// Builds a timeline by spreading each flow's bytes uniformly over its
    /// lifetime (instantaneous flows contribute wholly to their start
    /// bin).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    #[must_use]
    pub fn build(flows: &[FlowRecord], bin_width: Duration) -> Timeline {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        if flows.is_empty() {
            return Timeline {
                bin_width,
                bins: Vec::new(),
            };
        }
        let t0 = flows.iter().map(|f| f.start).min().expect("non-empty");
        let t1 = flows.iter().map(|f| f.end).max().expect("non-empty");
        let width_ns = bin_width.as_nanos();
        let span = t1.saturating_since(t0).as_nanos();
        let nbins = (span / width_ns + 1) as usize;
        let mut bins: Vec<TimelineBin> = (0..nbins)
            .map(|i| TimelineBin {
                start: SimTime::from_nanos(t0.as_nanos() + i as u64 * width_ns),
                bytes: BTreeMap::new(),
            })
            .collect();
        for f in flows {
            let c = f.component.unwrap_or(Component::Other);
            let first = ((f.start.saturating_since(t0)).as_nanos() / width_ns) as usize;
            let last = ((f.end.saturating_since(t0)).as_nanos() / width_ns) as usize;
            let total = f.total_bytes();
            let nb = (last - first + 1) as u64;
            let per_bin = total / nb;
            let remainder = total % nb;
            for (k, bin) in bins[first..=last].iter_mut().enumerate() {
                let mut share = per_bin;
                if (k as u64) < remainder {
                    share += 1;
                }
                *bin.bytes.entry(c).or_insert(0) += share;
            }
        }
        Timeline { bin_width, bins }
    }

    /// Total bytes across all bins and components.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bins.iter().flat_map(|b| b.bytes.values()).sum()
    }

    /// The byte series for one component, one value per bin.
    #[must_use]
    pub fn series(&self, component: Component) -> Vec<u64> {
        self.bins
            .iter()
            .map(|b| b.bytes.get(&component).copied().unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FiveTuple;
    use crate::packet::NodeId;

    fn flow(start_s: u64, end_s: u64, bytes: u64, c: Component) -> FlowRecord {
        FlowRecord {
            tuple: FiveTuple {
                src: NodeId(0),
                src_port: 1,
                dst: NodeId(1),
                dst_port: 2,
            },
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(end_s),
            fwd_bytes: bytes,
            rev_bytes: 0,
            packets: 1,
            component: Some(c),
        }
    }

    #[test]
    fn stats_aggregate_per_component() {
        let flows = vec![
            flow(0, 1, 100, Component::Shuffle),
            flow(0, 3, 300, Component::Shuffle),
            flow(0, 2, 50, Component::Control),
        ];
        let stats = component_stats(&flows);
        assert_eq!(stats.len(), 2);
        let shuffle = stats
            .iter()
            .find(|s| s.component == Component::Shuffle)
            .unwrap();
        assert_eq!(shuffle.flow_count, 2);
        assert_eq!(shuffle.total_bytes, 400);
        assert_eq!(shuffle.mean_flow_bytes, 200.0);
        assert_eq!(shuffle.max_flow_bytes, 300);
        assert_eq!(shuffle.mean_duration_secs, 2.0);
    }

    #[test]
    fn unlabelled_flows_count_as_other() {
        let mut f = flow(0, 1, 10, Component::Shuffle);
        f.component = None;
        let stats = component_stats(&[f]);
        assert_eq!(stats[0].component, Component::Other);
    }

    #[test]
    fn empty_flows_empty_stats() {
        assert!(component_stats(&[]).is_empty());
        let tl = Timeline::build(&[], Duration::from_secs(1));
        assert!(tl.bins.is_empty());
        assert_eq!(tl.total_bytes(), 0);
    }

    #[test]
    fn timeline_conserves_bytes() {
        let flows = vec![
            flow(0, 10, 1000, Component::HdfsRead),
            flow(3, 4, 777, Component::Shuffle),
            flow(9, 9, 13, Component::Control), // instantaneous
        ];
        let tl = Timeline::build(&flows, Duration::from_secs(1));
        assert_eq!(tl.total_bytes(), 1790);
        // 11 one-second bins cover [0, 10].
        assert_eq!(tl.bins.len(), 11);
        // The instantaneous flow lands entirely in its start bin.
        assert_eq!(tl.series(Component::Control)[9], 13);
    }

    #[test]
    fn timeline_spreads_long_flows() {
        let flows = vec![flow(0, 9, 1000, Component::HdfsWrite)];
        let tl = Timeline::build(&flows, Duration::from_secs(1));
        let series = tl.series(Component::HdfsWrite);
        assert_eq!(series.len(), 10);
        assert!(series.iter().all(|&b| b == 100));
    }
}
