//! Deterministic fault schedules for Keddah's simulators.
//!
//! Real Hadoop clusters lose DataNodes, NICs and switch uplinks, and the
//! traffic that failure recovery generates (NameNode-driven block
//! re-replication, shuffle re-fetches, task re-execution) is a
//! first-order part of the network behaviour Keddah models. This crate
//! provides the *schedule* half of that story: a serializable
//! [`FaultSpec`] listing timed [`FaultKind`] events, validated against a
//! target cluster/topology and compiled into a time-sorted
//! [`FaultSchedule`] that the simulators (`keddah-netsim`,
//! `keddah-hadoop`) consume as discrete events on their shared
//! `keddah_des::Engine`.
//!
//! Schedules are either hand-written JSON or derived deterministically
//! from a seed via [`generate`] — the same `(profile, seed)` pair always
//! yields the same schedule, so faulted experiments stay reproducible
//! across machines and runner widths. The wire format is JSON only: the
//! offline build vendors no TOML parser, and every other Keddah artefact
//! (models, traces, comparisons) is already JSON.
//!
//! # Examples
//!
//! ```
//! use keddah_faults::{generate, FaultGen, FaultKind, FaultSpec, TimedFault};
//!
//! // Hand-written: one DataNode dies two seconds in, recovers at ten.
//! let spec = FaultSpec {
//!     faults: vec![
//!         TimedFault { at_nanos: 2_000_000_000, kind: FaultKind::NodeCrash { node: 3 } },
//!         TimedFault { at_nanos: 10_000_000_000, kind: FaultKind::NodeRecover { node: 3 } },
//!     ],
//! };
//! spec.validate(8, 0).unwrap();
//! let schedule = spec.schedule();
//! assert_eq!(schedule.events().len(), 2);
//!
//! // Seed-derived: same seed, same schedule.
//! let gen = FaultGen { hosts: 8, node_crashes: 2, ..FaultGen::default() };
//! assert_eq!(generate(&gen, 7), generate(&gen, 7));
//! ```

use keddah_des::SimTime;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One kind of infrastructure fault.
///
/// Node indices refer to simulator hosts (`NodeId` in `keddah-hadoop`,
/// `HostId` in `keddah-netsim`); link indices refer to `LinkId` in the
/// replay topology. Which indices are meaningful depends on the layer a
/// schedule is applied to: the Hadoop capture side consumes node events
/// (crash/recover of workers), the network replay side consumes all
/// five.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultKind {
    /// A host drops off the network; its in-flight traffic is lost.
    NodeCrash {
        /// The crashed host.
        node: u32,
    },
    /// A previously crashed host rejoins with empty state.
    NodeRecover {
        /// The recovering host.
        node: u32,
    },
    /// A directed link fails permanently; flows crossing it re-route or
    /// abort.
    LinkDown {
        /// The failed link.
        link: u32,
    },
    /// A directed link's capacity is multiplied by `factor` (a flapping
    /// optic, a duplex fallback); `factor == 1.0` restores it.
    LinkDegraded {
        /// The degraded link.
        link: u32,
        /// Multiplier on the link's base capacity, in `(0, 1]`.
        factor: f64,
    },
    /// A reachability cut: hosts inside `cut` can no longer exchange
    /// traffic with hosts outside it. Permanent (no heal event).
    Partition {
        /// Host indices on one side of the cut.
        cut: Vec<u32>,
    },
}

impl FaultKind {
    /// Short human label, used in CLI summaries.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::NodeRecover { .. } => "node_recover",
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::LinkDegraded { .. } => "link_degraded",
            FaultKind::Partition { .. } => "partition",
        }
    }

    /// The scenario class this fault belongs to. Recoveries classify
    /// with the crash they undo — a crash-plus-recover schedule is one
    /// `node_crash` scenario, not two.
    #[must_use]
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::NodeCrash { .. } | FaultKind::NodeRecover { .. } => FaultClass::NodeCrash,
            FaultKind::LinkDown { .. } => FaultClass::LinkDown,
            FaultKind::LinkDegraded { .. } => FaultClass::LinkDegraded,
            FaultKind::Partition { .. } => FaultClass::Partition,
        }
    }
}

/// The coarse scenario label a diagnosis predicts: which family of
/// fault (if any) a degraded run suffered.
///
/// This is `FaultKind` with parameters erased, recoveries folded into
/// crashes, and an explicit [`FaultClass::None`] for the healthy case.
/// The derived `Ord` follows the declared order, which is the canonical
/// tie-break order for ranked verdicts — keep it stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultClass {
    /// No fault: the run was healthy.
    None,
    /// A host crashed (possibly recovering later).
    NodeCrash,
    /// A link failed permanently.
    LinkDown,
    /// A link ran below its base capacity.
    LinkDegraded,
    /// A reachability cut split the cluster.
    Partition,
}

impl FaultClass {
    /// Every class, in canonical (tie-break) order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::None,
        FaultClass::NodeCrash,
        FaultClass::LinkDown,
        FaultClass::LinkDegraded,
        FaultClass::Partition,
    ];

    /// Stable wire/CLI label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::NodeCrash => "node_crash",
            FaultClass::LinkDown => "link_down",
            FaultClass::LinkDegraded => "link_degraded",
            FaultClass::Partition => "partition",
        }
    }

    /// Parses a label produced by [`FaultClass::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fault pinned to a simulation timestamp (nanoseconds, matching
/// `keddah_des::SimTime` resolution — integral nanos keep the JSON wire
/// format exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// When the fault fires, in nanoseconds of simulation time.
    pub at_nanos: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl TimedFault {
    /// The fault's firing time as a [`SimTime`].
    #[must_use]
    pub fn at(&self) -> SimTime {
        SimTime::from_nanos(self.at_nanos)
    }

    /// One-line description (`"node_crash node=2 @ 0.500000s"`), used by
    /// CLI summaries and trace event details. Derived purely from the
    /// fault itself, so traced runs stay deterministic.
    #[must_use]
    pub fn describe(&self) -> String {
        let what = match &self.kind {
            FaultKind::NodeCrash { node } | FaultKind::NodeRecover { node } => {
                format!("node={node}")
            }
            FaultKind::LinkDown { link } => format!("link={link}"),
            FaultKind::LinkDegraded { link, factor } => format!("link={link} factor={factor}"),
            FaultKind::Partition { cut } => format!("cut={cut:?}"),
        };
        format!(
            "{} {what} @ {:.6}s",
            self.kind.label(),
            self.at().as_secs_f64()
        )
    }
}

/// A serializable fault scenario: an unordered list of timed faults.
///
/// An empty spec is the explicit "no faults" scenario: every consumer
/// must treat it as arithmetically identical to not passing a spec at
/// all (the golden replay corpus pins this).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The scenario's faults, in any order.
    pub faults: Vec<TimedFault>,
}

impl FaultSpec {
    /// The empty (fault-free) scenario.
    #[must_use]
    pub fn empty() -> FaultSpec {
        FaultSpec::default()
    }

    /// True when the scenario contains no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Checks every fault against a target of `hosts` hosts and `links`
    /// directed links.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Invalid`] naming the first out-of-range
    /// node/link index, non-finite or out-of-range degradation factor,
    /// or degenerate partition cut.
    pub fn validate(&self, hosts: u32, links: u32) -> Result<(), FaultError> {
        let invalid = |what: String| Err(FaultError::Invalid { what });
        for (i, fault) in self.faults.iter().enumerate() {
            match &fault.kind {
                FaultKind::NodeCrash { node } | FaultKind::NodeRecover { node } => {
                    if *node >= hosts {
                        return invalid(format!(
                            "fault {i}: node {node} out of range (hosts = {hosts})"
                        ));
                    }
                }
                FaultKind::LinkDown { link } => {
                    if *link >= links {
                        return invalid(format!(
                            "fault {i}: link {link} out of range (links = {links})"
                        ));
                    }
                }
                FaultKind::LinkDegraded { link, factor } => {
                    if *link >= links {
                        return invalid(format!(
                            "fault {i}: link {link} out of range (links = {links})"
                        ));
                    }
                    if !factor.is_finite() || *factor <= 0.0 || *factor > 1.0 {
                        return invalid(format!(
                            "fault {i}: degradation factor {factor} outside (0, 1]"
                        ));
                    }
                }
                FaultKind::Partition { cut } => {
                    if cut.is_empty() {
                        return invalid(format!("fault {i}: empty partition cut"));
                    }
                    if let Some(node) = cut.iter().find(|n| **n >= hosts) {
                        return invalid(format!(
                            "fault {i}: partition member {node} out of range (hosts = {hosts})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The scenario class this spec represents: the class with the most
    /// events (recoveries counting with their crash), ties broken by
    /// canonical [`FaultClass`] order; [`FaultClass::None`] when empty.
    ///
    /// This is the ground-truth label the diagnose corpus attaches to a
    /// generated cell.
    #[must_use]
    pub fn dominant_class(&self) -> FaultClass {
        let mut counts = [0usize; FaultClass::ALL.len()];
        for fault in &self.faults {
            counts[fault.kind.class() as usize] += 1;
        }
        FaultClass::ALL
            .into_iter()
            .skip(1) // None never competes: any fault outranks it.
            // max_by_key keeps the *last* max, so reverse the class in
            // the key: ties go to the earliest class in canonical order.
            .max_by_key(|c| (counts[*c as usize], std::cmp::Reverse(*c)))
            .filter(|c| counts[*c as usize] > 0)
            .unwrap_or(FaultClass::None)
    }

    /// Compiles the spec into a time-sorted [`FaultSchedule`]. Ties keep
    /// spec order (stable sort), so equal-time faults apply in the order
    /// they were written.
    #[must_use]
    pub fn schedule(&self) -> FaultSchedule {
        let mut events = self.faults.clone();
        events.sort_by_key(|f| f.at_nanos);
        FaultSchedule { events }
    }

    /// Parses a spec from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Json`] on malformed input.
    pub fn from_json(input: &str) -> Result<FaultSpec, FaultError> {
        serde_json::from_str(input).map_err(|e| FaultError::Json(e.to_string()))
    }

    /// Serializes the spec as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault spec serializes")
    }

    /// Reads a spec from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Io`] on read failure and
    /// [`FaultError::Json`] on malformed content.
    pub fn load(path: &str) -> Result<FaultSpec, FaultError> {
        let data = std::fs::read_to_string(path).map_err(FaultError::Io)?;
        FaultSpec::from_json(&data)
    }

    /// Writes the spec to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Io`] on write failure.
    pub fn save(&self, path: &str) -> Result<(), FaultError> {
        std::fs::write(path, self.to_json()).map_err(FaultError::Io)
    }
}

/// A validated, time-sorted fault schedule ready for a simulator to
/// turn into DES events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// The empty schedule — consumers must treat it exactly like "no
    /// faults requested".
    #[must_use]
    pub fn empty() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// True when no faults are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The faults in firing order.
    #[must_use]
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }
}

/// Parameters for seed-derived schedule generation (see [`generate`]).
///
/// Counts of each fault kind are drawn uniformly over `[0, horizon)`.
/// Host 0 is conventionally the Hadoop master/NameNode, so generated
/// node faults target hosts `1..hosts` when more than one host exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultGen {
    /// Hosts in the target cluster/topology.
    pub hosts: u32,
    /// Directed links in the target topology (0 disables link faults).
    pub links: u32,
    /// Schedule horizon in nanoseconds; all fault times fall below it.
    pub horizon_nanos: u64,
    /// Node crashes to schedule.
    pub node_crashes: u32,
    /// When set, every crash is followed by a recovery this many
    /// nanoseconds later.
    pub recover_after_nanos: Option<u64>,
    /// Permanent link failures to schedule.
    pub link_downs: u32,
    /// Link degradations to schedule (factor drawn from `[0.1, 0.9)`).
    pub link_degrades: u32,
    /// Partitions to schedule (cut = random non-empty proper host
    /// subset).
    pub partitions: u32,
}

impl Default for FaultGen {
    fn default() -> FaultGen {
        FaultGen {
            hosts: 0,
            links: 0,
            horizon_nanos: 60_000_000_000, // 60 s
            node_crashes: 0,
            recover_after_nanos: None,
            link_downs: 0,
            link_degrades: 0,
            partitions: 0,
        }
    }
}

/// Derives a fault schedule deterministically from `(gen, seed)`.
///
/// The draw order is fixed (crashes, then link downs, degradations,
/// partitions), so the same inputs always produce the same spec — the
/// property `keddah faults gen` and the determinism tests rely on.
/// Returned faults are sorted by time.
///
/// # Panics
///
/// Panics if a fault kind is requested for a target with no
/// corresponding elements (node faults with `hosts == 0`, link faults
/// with `links == 0`, partitions with `hosts < 2`).
#[must_use]
pub fn generate(gen: &FaultGen, seed: u64) -> FaultSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut faults = Vec::new();
    let horizon = gen.horizon_nanos.max(1);

    if gen.node_crashes > 0 {
        assert!(gen.hosts > 0, "node faults need at least one host");
        // Skip the conventional master (host 0) when workers exist.
        let first = u32::from(gen.hosts > 1);
        for _ in 0..gen.node_crashes {
            let node = rng.random_range(first..gen.hosts);
            let at_nanos = rng.random_range(0..horizon);
            faults.push(TimedFault {
                at_nanos,
                kind: FaultKind::NodeCrash { node },
            });
            if let Some(mttr) = gen.recover_after_nanos {
                faults.push(TimedFault {
                    at_nanos: at_nanos.saturating_add(mttr.max(1)),
                    kind: FaultKind::NodeRecover { node },
                });
            }
        }
    }
    if gen.link_downs > 0 {
        assert!(gen.links > 0, "link faults need at least one link");
        for _ in 0..gen.link_downs {
            faults.push(TimedFault {
                at_nanos: rng.random_range(0..horizon),
                kind: FaultKind::LinkDown {
                    link: rng.random_range(0..gen.links),
                },
            });
        }
    }
    if gen.link_degrades > 0 {
        assert!(gen.links > 0, "link faults need at least one link");
        for _ in 0..gen.link_degrades {
            faults.push(TimedFault {
                at_nanos: rng.random_range(0..horizon),
                kind: FaultKind::LinkDegraded {
                    link: rng.random_range(0..gen.links),
                    factor: rng.random_range(0.1..0.9),
                },
            });
        }
    }
    if gen.partitions > 0 {
        assert!(gen.hosts >= 2, "partitions need at least two hosts");
        for _ in 0..gen.partitions {
            let mut hosts: Vec<u32> = (0..gen.hosts).collect();
            hosts.shuffle(&mut rng);
            let cut_size = rng.random_range(1..gen.hosts) as usize;
            let mut cut: Vec<u32> = hosts[..cut_size].to_vec();
            cut.sort_unstable();
            faults.push(TimedFault {
                at_nanos: rng.random_range(0..horizon),
                kind: FaultKind::Partition { cut },
            });
        }
    }

    faults.sort_by_key(|f| f.at_nanos);
    FaultSpec { faults }
}

/// Errors produced when loading or validating fault schedules.
#[derive(Debug)]
pub enum FaultError {
    /// The spec file could not be read or written.
    Io(std::io::Error),
    /// The spec JSON was malformed.
    Json(String),
    /// A fault referenced an element outside the target cluster or used
    /// an out-of-range parameter.
    Invalid {
        /// Human-readable description of the offending fault.
        what: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Io(e) => write!(f, "fault spec I/O error: {e}"),
            FaultError::Json(msg) => write!(f, "fault spec parse error: {msg}"),
            FaultError::Invalid { what } => write!(f, "invalid fault spec: {what}"),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(at_nanos: u64, node: u32) -> TimedFault {
        TimedFault {
            at_nanos,
            kind: FaultKind::NodeCrash { node },
        }
    }

    #[test]
    fn json_round_trip_preserves_every_kind() {
        let spec = FaultSpec {
            faults: vec![
                crash(5, 2),
                TimedFault {
                    at_nanos: 7,
                    kind: FaultKind::NodeRecover { node: 2 },
                },
                TimedFault {
                    at_nanos: 9,
                    kind: FaultKind::LinkDown { link: 4 },
                },
                TimedFault {
                    at_nanos: 11,
                    kind: FaultKind::LinkDegraded {
                        link: 1,
                        factor: 0.25,
                    },
                },
                TimedFault {
                    at_nanos: 13,
                    kind: FaultKind::Partition { cut: vec![1, 3] },
                },
            ],
        };
        let json = spec.to_json();
        assert_eq!(FaultSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn schedule_sorts_stably_by_time() {
        let spec = FaultSpec {
            faults: vec![crash(10, 3), crash(5, 1), crash(10, 2)],
        };
        let sched = spec.schedule();
        let nodes: Vec<u32> = sched
            .events()
            .iter()
            .map(|f| match f.kind {
                FaultKind::NodeCrash { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(nodes, vec![1, 3, 2]);
    }

    #[test]
    fn validate_rejects_out_of_range_and_degenerate_faults() {
        let bad_node = FaultSpec {
            faults: vec![crash(0, 9)],
        };
        assert!(bad_node.validate(9, 0).is_err());
        assert!(bad_node.validate(10, 0).is_ok());

        let bad_factor = FaultSpec {
            faults: vec![TimedFault {
                at_nanos: 0,
                kind: FaultKind::LinkDegraded {
                    link: 0,
                    factor: 0.0,
                },
            }],
        };
        assert!(bad_factor.validate(4, 2).is_err());

        let empty_cut = FaultSpec {
            faults: vec![TimedFault {
                at_nanos: 0,
                kind: FaultKind::Partition { cut: vec![] },
            }],
        };
        assert!(empty_cut.validate(4, 2).is_err());
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let gen = FaultGen {
            hosts: 9,
            links: 24,
            node_crashes: 2,
            recover_after_nanos: Some(5_000_000_000),
            link_downs: 1,
            link_degrades: 1,
            partitions: 1,
            ..FaultGen::default()
        };
        let a = generate(&gen, 42);
        let b = generate(&gen, 42);
        assert_eq!(a, b);
        assert_ne!(a, generate(&gen, 43));
        a.validate(9, 24).unwrap();
        // crashes + recoveries + link down + degrade + partition
        assert_eq!(a.faults.len(), 2 + 2 + 1 + 1 + 1);
        // Generated node faults avoid the conventional master.
        for f in &a.faults {
            if let FaultKind::NodeCrash { node } | FaultKind::NodeRecover { node } = f.kind {
                assert!(node >= 1);
            }
        }
    }

    #[test]
    fn classes_round_trip_and_order_canonically() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_label(class.label()), Some(class));
        }
        assert_eq!(FaultClass::from_label("gremlins"), None);
        let mut sorted = FaultClass::ALL;
        sorted.sort();
        assert_eq!(sorted, FaultClass::ALL, "ALL is the canonical order");
        // Recoveries classify with the crash they undo.
        assert_eq!(
            FaultKind::NodeRecover { node: 1 }.class(),
            FaultClass::NodeCrash
        );
    }

    #[test]
    fn dominant_class_counts_and_breaks_ties_canonically() {
        assert_eq!(FaultSpec::empty().dominant_class(), FaultClass::None);
        let crash_with_recovery = FaultSpec {
            faults: vec![
                crash(5, 2),
                TimedFault {
                    at_nanos: 9,
                    kind: FaultKind::NodeRecover { node: 2 },
                },
            ],
        };
        assert_eq!(crash_with_recovery.dominant_class(), FaultClass::NodeCrash);
        // One of each: the tie goes to the earliest class in ALL.
        let tie = FaultSpec {
            faults: vec![
                TimedFault {
                    at_nanos: 3,
                    kind: FaultKind::Partition { cut: vec![1] },
                },
                TimedFault {
                    at_nanos: 1,
                    kind: FaultKind::LinkDown { link: 0 },
                },
            ],
        };
        assert_eq!(tie.dominant_class(), FaultClass::LinkDown);
    }

    #[test]
    fn empty_spec_round_trips_and_schedules_empty() {
        let spec = FaultSpec::empty();
        assert!(spec.is_empty());
        assert!(spec.schedule().is_empty());
        assert_eq!(FaultSpec::from_json(&spec.to_json()).unwrap(), spec);
    }
}
