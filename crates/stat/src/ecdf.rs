//! Empirical cumulative distribution functions.

use crate::{Result, StatError};

/// An empirical CDF built from a sample.
///
/// Stores the sorted sample and answers `F_n(x)` queries, empirical
/// quantiles, and produces plot-ready `(x, F(x))` step points — which is
/// exactly what the Keddah figures (flow-size CDFs, FCT CDFs) are drawn
/// from.
///
/// # Examples
///
/// ```
/// use keddah_stat::Ecdf;
///
/// let ecdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
/// assert_eq!(ecdf.eval(0.5), 0.0);
/// assert_eq!(ecdf.eval(2.0), 0.75);
/// assert_eq!(ecdf.eval(10.0), 1.0);
/// assert_eq!(ecdf.quantile(0.5), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, taking ownership and sorting it.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::EmptySample`] for an empty sample and
    /// [`StatError::InvalidParameter`] if any value is non-finite.
    pub fn new(mut samples: Vec<f64>) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatError::EmptySample);
        }
        for &x in &samples {
            if !x.is_finite() {
                return Err(StatError::InvalidParameter {
                    name: "sample",
                    value: x,
                });
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Ecdf { sorted: samples })
    }

    /// The number of underlying samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates `F_n(x)`: the fraction of samples `<= x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: the smallest sample value `v` with
    /// `F_n(v) >= p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1]");
        if p <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[idx - 1]
    }

    /// Minimum sample value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample value.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Produces `(x, F(x))` points for plotting, downsampled to at most
    /// `max_points` steps (always keeping the first and last).
    #[must_use]
    pub fn step_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let max_points = max_points.max(2);
        let stride = (n as f64 / max_points as f64).ceil().max(1.0) as usize;
        let mut pts = Vec::with_capacity(n / stride + 2);
        let mut i = 0;
        while i < n {
            pts.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += stride;
        }
        if pts.last().map(|&(x, _)| x) != Some(self.sorted[n - 1]) {
            pts.push((self.sorted[n - 1], 1.0));
        }
        pts
    }

    /// Builds a histogram with `bins` equal-width bins over `[min, max]`,
    /// returning `(bin_left_edge, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    #[must_use]
    pub fn histogram(&self, bins: usize) -> Vec<(f64, usize)> {
        assert!(bins > 0, "histogram requires at least one bin");
        let lo = self.min();
        let hi = self.max();
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &x in &self.sorted {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + i as f64 * width, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(Ecdf::new(vec![]), Err(StatError::EmptySample)));
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn eval_steps() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.21), 20.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
    }

    #[test]
    fn quantile_eval_consistency() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect()).unwrap();
        for i in 1..=100 {
            let p = i as f64 / 100.0;
            assert!(e.eval(e.quantile(p)) >= p - 1e-12);
        }
    }

    #[test]
    fn step_points_cover_range() {
        let e = Ecdf::new((1..=1000).map(|i| i as f64).collect()).unwrap();
        let pts = e.step_points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts[0].0, 1.0);
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Monotone in both coordinates.
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_counts_everything() {
        let e = Ecdf::new(vec![1.0, 1.5, 2.0, 2.5, 3.0]).unwrap();
        let h = e.histogram(2);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn min_max_mean() {
        let e = Ecdf::new(vec![4.0, 2.0, 6.0]).unwrap();
        assert_eq!(e.min(), 2.0);
        assert_eq!(e.max(), 6.0);
        assert_eq!(e.mean(), 4.0);
        assert_eq!(e.len(), 3);
    }
}
