//! Log-normal distribution.

use serde::{Deserialize, Serialize};

use super::{check_positive_sample, require_finite, require_positive, Distribution};
use crate::special::{std_normal_cdf, std_normal_quantile};
use crate::{Result, StatError};

/// Log-normal distribution: `ln X ~ Normal(mu, sigma)`.
///
/// Support: `x > 0`. One of the workhorse families for flow sizes in
/// traffic measurement studies; Keddah fits it to HDFS and shuffle flow
/// sizes, where multiplicative effects (records per block x record size x
/// compression) make log-normality natural.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, LogNormal};
///
/// let d = LogNormal::new(0.0, 1.0).unwrap();
/// assert!((d.cdf(1.0) - 0.5).abs() < 1e-12); // median = exp(mu)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-mean `mu` and log-sd
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error if `mu` is non-finite or `sigma` is not finite and
    /// positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(LogNormal {
            mu: require_finite("mu", mu)?,
            sigma: require_positive("sigma", sigma)?,
        })
    }

    /// The log-scale location parameter.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The log-scale spread parameter.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Maximum-likelihood fit: mean and sd of `ln x`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty, contains non-positive
    /// values, or is degenerate in log-space.
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_positive_sample(samples)?;
        let n = samples.len() as f64;
        let logs: Vec<f64> = samples.iter().map(|&x| x.ln()).collect();
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|&l| (l - mu) * (l - mu)).sum::<f64>() / n;
        if var <= 0.0 {
            return Err(StatError::DegenerateSample("zero variance in log-space"));
        }
        LogNormal::new(mu, var.sqrt())
    }
}

impl Distribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.ln_pdf(x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

impl std::fmt::Display for LogNormal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogNormal(mu={}, sigma={})", self.mu, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
    }

    #[test]
    fn consistency() {
        let d = LogNormal::new(1.0, 0.6).unwrap();
        testutil::check_quantile_roundtrip(&d, 1e-8);
        testutil::check_cdf_monotone(&d);
        testutil::check_ln_pdf(&d);
        testutil::check_sample_mean(&d, 50_000, 0.05);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(2.3, 0.9).unwrap();
        assert!((d.quantile(0.5) - 2.3f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn mle_recovers_params() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let truth = LogNormal::new(1.5, 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = LogNormal::fit_mle(&xs).unwrap();
        assert!((fit.mu() - 1.5).abs() < 0.02);
        assert!((fit.sigma() - 0.4).abs() < 0.02);
    }

    #[test]
    fn mle_rejects_nonpositive() {
        assert!(LogNormal::fit_mle(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn outside_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.ln_pdf(-1.0), f64::NEG_INFINITY);
    }
}
