//! Exponential distribution.

use serde::{Deserialize, Serialize};

use super::{check_positive_sample, require_positive, Distribution};
use crate::Result;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Support: `x >= 0`. The classic memoryless model for inter-arrival times;
/// in Keddah it is a candidate for flow inter-arrival gaps and control
/// (heartbeat-adjacent) flow sizes.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, Exponential};
///
/// let d = Exponential::new(2.0).unwrap();
/// assert!((d.mean() - 0.5).abs() < 1e-12);
/// assert!((d.cdf(d.quantile(0.3)) - 0.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::InvalidParameter`](crate::StatError) if `rate`
    /// is not finite and positive.
    pub fn new(rate: f64) -> Result<Self> {
        Ok(Exponential {
            rate: require_positive("rate", rate)?,
        })
    }

    /// The rate parameter `lambda`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Maximum-likelihood fit: `lambda = 1 / mean(x)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty, non-finite, or contains a
    /// non-positive value.
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_positive_sample(samples)?;
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

impl std::fmt::Display for Exponential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Exp(rate={})", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;
    use crate::StatError;

    #[test]
    fn rejects_bad_rate() {
        assert!(matches!(
            Exponential::new(0.0),
            Err(StatError::InvalidParameter { name: "rate", .. })
        ));
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pdf_cdf_quantile_consistent() {
        let d = Exponential::new(0.7).unwrap();
        testutil::check_quantile_roundtrip(&d, 1e-10);
        testutil::check_cdf_monotone(&d);
        testutil::check_ln_pdf(&d);
    }

    #[test]
    fn moments() {
        let d = Exponential::new(4.0).unwrap();
        assert!((d.mean() - 0.25).abs() < 1e-12);
        assert!((d.variance() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_mean() {
        let d = Exponential::new(0.5).unwrap();
        testutil::check_sample_mean(&d, 20_000, 0.05);
    }

    #[test]
    fn mle_recovers_rate() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let truth = Exponential::new(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = Exponential::fit_mle(&xs).unwrap();
        assert!((fit.rate() - 3.0).abs() < 0.1, "rate={}", fit.rate());
    }

    #[test]
    fn mle_rejects_bad_samples() {
        assert!(matches!(
            Exponential::fit_mle(&[]),
            Err(StatError::EmptySample)
        ));
        assert!(matches!(
            Exponential::fit_mle(&[1.0, -2.0]),
            Err(StatError::NonPositiveSample(_))
        ));
    }

    #[test]
    fn outside_support() {
        let d = Exponential::new(1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.ln_pdf(-1.0), f64::NEG_INFINITY);
    }
}
