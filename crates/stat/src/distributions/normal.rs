//! Normal (Gaussian) distribution.

use serde::{Deserialize, Serialize};

use super::{check_sample, require_finite, require_positive, Distribution};
use crate::special::{std_normal_cdf, std_normal_quantile};
use crate::{Result, StatError};

/// Normal distribution with mean `mu` and standard deviation `sigma`.
///
/// In Keddah this family is a candidate for aggregate per-task transfer
/// sizes, which are sums of many block-level transfers and hence
/// near-Gaussian by the CLT.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, Normal};
///
/// let d = Normal::new(10.0, 2.0).unwrap();
/// assert!((d.cdf(10.0) - 0.5).abs() < 1e-12);
/// assert!((d.quantile(0.975) - 13.92).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `mu` is non-finite or `sigma` is not finite and
    /// positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Normal {
            mu: require_finite("mu", mu)?,
            sigma: require_positive("sigma", sigma)?,
        })
    }

    /// The location parameter `mu`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter `sigma`.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Maximum-likelihood fit: sample mean and (biased) sample standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty, non-finite, or has zero
    /// variance.
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_sample(samples)?;
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        if var <= 0.0 {
            return Err(StatError::DegenerateSample("zero variance"));
        }
        Normal::new(mean, var.sqrt())
    }
}

impl Distribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        self.mu + self.sigma * std_normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

impl std::fmt::Display for Normal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Normal(mu={}, sigma={})", self.mu, self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn consistency() {
        let d = Normal::new(3.0, 1.5).unwrap();
        testutil::check_quantile_roundtrip(&d, 1e-8);
        testutil::check_cdf_monotone(&d);
        testutil::check_ln_pdf(&d);
        testutil::check_sample_mean(&d, 20_000, 0.05);
    }

    #[test]
    fn known_density() {
        let d = Normal::new(0.0, 1.0).unwrap();
        // phi(0) = 1/sqrt(2 pi)
        let expect = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((d.pdf(0.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn mle_recovers_params() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let truth = Normal::new(-2.0, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = Normal::fit_mle(&xs).unwrap();
        assert!((fit.mu() + 2.0).abs() < 0.05);
        assert!((fit.sigma() - 0.8).abs() < 0.05);
    }

    #[test]
    fn mle_rejects_constant_sample() {
        assert!(Normal::fit_mle(&[5.0; 10]).is_err());
    }
}
