//! Weibull distribution.

use serde::{Deserialize, Serialize};

use super::{check_positive_sample, require_positive, Distribution};
use crate::special::ln_gamma;
use crate::{Result, StatError};

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// Support: `x >= 0`. With `k < 1` it is heavy-tailed-ish (stretched
/// exponential), with `k = 1` it degenerates to the exponential, and with
/// `k > 1` it is unimodal with light tails. Traffic studies (including
/// Keddah) commonly fit Weibulls to shuffle flow sizes and task durations.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, Weibull};
///
/// let d = Weibull::new(2.0, 1.0).unwrap();
/// // Median of Weibull(k, lambda) is lambda * ln(2)^(1/k).
/// assert!((d.quantile(0.5) - 2f64.ln().sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with the given shape `k` and scale
    /// `lambda`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        Ok(Weibull {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// The shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `lambda`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maximum-likelihood fit via Newton iteration on the shape.
    ///
    /// Solves the profile-likelihood equation
    /// `sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0`
    /// for `k`, then sets `lambda = (mean(x^k))^(1/k)`.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/non-positive samples, degenerate samples,
    /// or if the iteration fails to converge (pathological inputs).
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_positive_sample(samples)?;
        let n = samples.len() as f64;
        let mean_ln = samples.iter().map(|&x| x.ln()).sum::<f64>() / n;
        let var_ln = samples
            .iter()
            .map(|&x| {
                let d = x.ln() - mean_ln;
                d * d
            })
            .sum::<f64>()
            / n;
        if var_ln <= 0.0 {
            return Err(StatError::DegenerateSample("zero variance in log-space"));
        }
        // Moment-based initial guess: for Weibull, sd(ln X) = pi/(k sqrt(6)).
        let mut k = std::f64::consts::PI / (6.0f64.sqrt() * var_ln.sqrt());
        k = k.clamp(0.02, 500.0);

        const MAX_ITER: usize = 200;
        const TOL: f64 = 1e-10;
        for _ in 0..MAX_ITER {
            let mut s0 = 0.0; // sum x^k
            let mut s1 = 0.0; // sum x^k ln x
            let mut s2 = 0.0; // sum x^k (ln x)^2
            for &x in samples {
                let lx = x.ln();
                let xk = (k * lx).exp();
                s0 += xk;
                s1 += xk * lx;
                s2 += xk * lx * lx;
            }
            if !s0.is_finite() || s0 <= 0.0 {
                return Err(StatError::NoConvergence("weibull shape overflow"));
            }
            let g = s1 / s0 - 1.0 / k - mean_ln;
            let dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
            if dg <= 0.0 {
                return Err(StatError::NoConvergence("weibull non-positive derivative"));
            }
            let step = g / dg;
            let next = (k - step).clamp(k * 0.2, k * 5.0).max(1e-6);
            if (next - k).abs() < TOL * k.max(1.0) {
                k = next;
                break;
            }
            k = next;
        }
        let scale = (samples.iter().map(|&x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
        Weibull::new(k, scale)
    }
}

impl Distribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else if x == 0.0 {
            // k < 1: density diverges at 0; k = 1: lambda; k > 1: 0.
            match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Less) => f64::INFINITY,
                Some(std::cmp::Ordering::Equal) => 1.0 / self.scale,
                _ => 0.0,
            }
        } else {
            self.ln_pdf(x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = x / self.scale;
        self.shape.ln() - self.scale.ln() + (self.shape - 1.0) * z.ln() - z.powf(self.shape)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }
}

impl std::fmt::Display for Weibull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Weibull(shape={}, scale={})", self.shape, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        use crate::distributions::Exponential;
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn consistency() {
        for &(k, lambda) in &[(0.7, 2.0), (1.5, 1.0), (3.0, 5.0)] {
            let d = Weibull::new(k, lambda).unwrap();
            testutil::check_quantile_roundtrip(&d, 1e-10);
            testutil::check_cdf_monotone(&d);
            testutil::check_ln_pdf(&d);
        }
    }

    #[test]
    fn sampling_matches_mean() {
        let d = Weibull::new(2.0, 3.0).unwrap();
        testutil::check_sample_mean(&d, 30_000, 0.05);
    }

    #[test]
    fn mle_recovers_params() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for &(k, lambda) in &[(0.8, 1.0), (1.7, 4.0), (3.2, 0.5)] {
            let truth = Weibull::new(k, lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(3);
            let xs: Vec<f64> = (0..30_000).map(|_| truth.sample(&mut rng)).collect();
            let fit = Weibull::fit_mle(&xs).unwrap();
            assert!(
                (fit.shape() - k).abs() / k < 0.05,
                "shape: fit={} truth={k}",
                fit.shape()
            );
            assert!(
                (fit.scale() - lambda).abs() / lambda < 0.05,
                "scale: fit={} truth={lambda}",
                fit.scale()
            );
        }
    }

    #[test]
    fn pdf_boundary_behaviour() {
        assert_eq!(Weibull::new(0.5, 1.0).unwrap().pdf(0.0), f64::INFINITY);
        assert_eq!(Weibull::new(1.0, 2.0).unwrap().pdf(0.0), 0.5);
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(-1.0), 0.0);
    }
}
