//! Continuous distribution families used by the Keddah traffic models.
//!
//! Each family implements the [`Distribution`] trait (density, CDF,
//! quantile, moments, sampling) and provides a `fit_mle` constructor that
//! estimates parameters from data by maximum likelihood. The families were
//! chosen to match what flow-level traffic modelling literature (including
//! Keddah) fits against: heavy-tailed ([`Pareto`], [`LogNormal`],
//! [`Weibull`]), light-tailed ([`Exponential`], [`Gamma`], [`Normal`]) and
//! bounded ([`Uniform`]).

mod empirical;
mod exponential;
mod gamma;
mod loglogistic;
mod lognormal;
mod normal;
mod pareto;
mod uniform;
mod weibull;

pub use empirical::Empirical;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use loglogistic::LogLogistic;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use pareto::Pareto;
pub use uniform::Uniform;
pub use weibull::Weibull;

use rand::Rng;

/// The clamp applied to uniform variates before inverse-transform sampling,
/// keeping quantile arguments strictly inside (0, 1).
pub(crate) const UNIT_EPS: f64 = 1e-12;

/// A continuous probability distribution.
///
/// All seven Keddah families implement this trait. The default
/// [`sample`](Distribution::sample) uses inverse-transform sampling via
/// [`quantile`](Distribution::quantile); families with cheaper samplers
/// (e.g. [`Gamma`]) override it.
pub trait Distribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of the density at `x`; `-inf` outside the support.
    fn ln_pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean. May be `+inf` (e.g. Pareto with `alpha <= 1`).
    fn mean(&self) -> f64;

    /// Distribution variance. May be `+inf`.
    fn variance(&self) -> f64;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64
    where
        Self: Sized,
    {
        let u: f64 = rng.random::<f64>().clamp(UNIT_EPS, 1.0 - UNIT_EPS);
        self.quantile(u)
    }

    /// Total log-likelihood of `samples` under this distribution.
    fn log_likelihood(&self, samples: &[f64]) -> f64 {
        samples.iter().map(|&x| self.ln_pdf(x)).sum()
    }
}

/// Validates that a parameter is finite and strictly positive.
pub(crate) fn require_positive(name: &'static str, value: f64) -> crate::Result<f64> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(crate::StatError::InvalidParameter { name, value })
    }
}

/// Validates that a parameter is finite.
pub(crate) fn require_finite(name: &'static str, value: f64) -> crate::Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(crate::StatError::InvalidParameter { name, value })
    }
}

/// Checks a sample for MLE fitting: non-empty and all finite.
pub(crate) fn check_sample(samples: &[f64]) -> crate::Result<()> {
    if samples.is_empty() {
        return Err(crate::StatError::EmptySample);
    }
    for &x in samples {
        if !x.is_finite() {
            return Err(crate::StatError::InvalidParameter {
                name: "sample",
                value: x,
            });
        }
    }
    Ok(())
}

/// Checks a sample for positive-support MLE fitting.
pub(crate) fn check_positive_sample(samples: &[f64]) -> crate::Result<()> {
    check_sample(samples)?;
    for &x in samples {
        if x <= 0.0 {
            return Err(crate::StatError::NonPositiveSample(x));
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared checks applied to every distribution implementation.
    use super::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Verifies pdf/cdf/quantile consistency on a grid of probabilities.
    pub fn check_quantile_roundtrip<D: Distribution>(d: &D, tol: f64) {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            let x = d.quantile(p);
            let back = d.cdf(x);
            assert!(
                (back - p).abs() < tol,
                "quantile/cdf roundtrip failed: p={p} x={x} cdf={back}"
            );
        }
    }

    /// Verifies the CDF is monotone over sampled support points.
    pub fn check_cdf_monotone<D: Distribution>(d: &D) {
        let mut prev = -1.0;
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let x = d.quantile(p);
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12, "cdf not monotone at x={x}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    /// Seed used by the shared sampling checks.
    const SEED: u64 = 0x6b65_6464_6168;

    /// Verifies the sample mean of many draws approaches the stated mean.
    pub fn check_sample_mean<D: Distribution>(d: &D, n: usize, rel_tol: f64) {
        let mut rng = StdRng::seed_from_u64(SEED);
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        let expect = d.mean();
        assert!(
            (mean - expect).abs() <= rel_tol * (1.0 + expect.abs()),
            "sample mean {mean} far from {expect}"
        );
    }

    /// Verifies ln_pdf agrees with pdf where pdf > 0.
    pub fn check_ln_pdf<D: Distribution>(d: &D) {
        for i in 1..50 {
            let p = i as f64 / 50.0;
            let x = d.quantile(p);
            let pdf = d.pdf(x);
            if pdf > 0.0 {
                assert!(
                    (d.ln_pdf(x) - pdf.ln()).abs() < 1e-9,
                    "ln_pdf mismatch at x={x}"
                );
            }
        }
    }
}
