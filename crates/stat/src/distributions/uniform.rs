//! Continuous uniform distribution.

use serde::{Deserialize, Serialize};

use super::{check_sample, require_finite, Distribution};
use crate::{Result, StatError};

/// Continuous uniform distribution on `[low, high]`.
///
/// In Keddah this family models bounded quantities such as fixed-size
/// control exchanges with jitter.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, Uniform};
///
/// let d = Uniform::new(1.0, 3.0).unwrap();
/// assert_eq!(d.mean(), 2.0);
/// assert_eq!(d.cdf(2.0), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high]`.
    ///
    /// # Errors
    ///
    /// Returns an error if either bound is non-finite or `low >= high`.
    pub fn new(low: f64, high: f64) -> Result<Self> {
        let low = require_finite("low", low)?;
        let high = require_finite("high", high)?;
        if low >= high {
            return Err(StatError::InvalidParameter {
                name: "high",
                value: high,
            });
        }
        Ok(Uniform { low, high })
    }

    /// Lower bound of the support.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the support.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.high
    }

    /// Maximum-likelihood fit: the sample min/max.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty, non-finite, or degenerate
    /// (all values identical, so the support would be empty).
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_sample(samples)?;
        let low = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let high = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if low == high {
            return Err(StatError::DegenerateSample("all values identical"));
        }
        Uniform::new(low, high)
    }
}

impl Distribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.low || x > self.high {
            0.0
        } else {
            1.0 / (self.high - self.low)
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.low || x > self.high {
            f64::NEG_INFINITY
        } else {
            -(self.high - self.low).ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (x - self.low) / (self.high - self.low)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        self.low + p * (self.high - self.low)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }
}

impl std::fmt::Display for Uniform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Uniform({}, {})", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_inverted_bounds() {
        assert!(Uniform::new(3.0, 1.0).is_err());
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn consistency() {
        let d = Uniform::new(-2.0, 5.0).unwrap();
        testutil::check_quantile_roundtrip(&d, 1e-12);
        testutil::check_cdf_monotone(&d);
        testutil::check_ln_pdf(&d);
        testutil::check_sample_mean(&d, 20_000, 0.05);
    }

    #[test]
    fn mle_covers_sample() {
        let xs = [3.0, 1.0, 2.5, 1.7];
        let d = Uniform::fit_mle(&xs).unwrap();
        assert_eq!(d.low(), 1.0);
        assert_eq!(d.high(), 3.0);
    }

    #[test]
    fn mle_rejects_degenerate() {
        assert!(matches!(
            Uniform::fit_mle(&[2.0, 2.0, 2.0]),
            Err(crate::StatError::DegenerateSample(_))
        ));
    }

    #[test]
    fn outside_support() {
        let d = Uniform::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-0.5), 0.0);
        assert_eq!(d.pdf(1.5), 0.0);
        assert_eq!(d.cdf(-0.5), 0.0);
        assert_eq!(d.cdf(1.5), 1.0);
    }
}
