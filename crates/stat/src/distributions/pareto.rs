//! Pareto (type I) distribution.

use serde::{Deserialize, Serialize};

use super::{check_positive_sample, require_positive, Distribution};
use crate::{Result, StatError};

/// Pareto type-I distribution with scale `xm` (minimum) and shape `alpha`.
///
/// Support: `x >= xm`. The canonical heavy-tail model; in traffic
/// measurement it captures elephant-flow size distributions. Keddah fits it
/// to HDFS bulk-transfer sizes where a block-size floor plus a long tail is
/// exactly the Pareto shape.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, Pareto};
///
/// let d = Pareto::new(1.0, 2.0).unwrap();
/// assert_eq!(d.cdf(1.0), 0.0);
/// assert!((d.cdf(2.0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with minimum `xm` and tail index
    /// `alpha`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not finite and positive.
    pub fn new(xm: f64, alpha: f64) -> Result<Self> {
        Ok(Pareto {
            xm: require_positive("xm", xm)?,
            alpha: require_positive("alpha", alpha)?,
        })
    }

    /// The scale (minimum value) parameter.
    #[must_use]
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// The tail index.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Maximum-likelihood fit: `xm = min(x)`,
    /// `alpha = n / sum(ln(x / xm))`.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/non-positive samples or if all samples
    /// are identical (the tail index would be infinite).
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_positive_sample(samples)?;
        let xm = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let log_sum: f64 = samples.iter().map(|&x| (x / xm).ln()).sum();
        if log_sum <= 0.0 {
            return Err(StatError::DegenerateSample("all values identical"));
        }
        Pareto::new(xm, samples.len() as f64 / log_sum)
    }
}

impl Distribution for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            self.alpha * self.xm.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            f64::NEG_INFINITY
        } else {
            self.alpha.ln() + self.alpha * self.xm.ln() - (self.alpha + 1.0) * x.ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        self.xm / (1.0 - p).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
}

impl std::fmt::Display for Pareto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pareto(xm={}, alpha={})", self.xm, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
    }

    #[test]
    fn consistency() {
        let d = Pareto::new(2.0, 2.5).unwrap();
        testutil::check_quantile_roundtrip(&d, 1e-10);
        testutil::check_cdf_monotone(&d);
        testutil::check_ln_pdf(&d);
        testutil::check_sample_mean(&d, 50_000, 0.1);
    }

    #[test]
    fn infinite_moments() {
        assert_eq!(Pareto::new(1.0, 0.9).unwrap().mean(), f64::INFINITY);
        assert_eq!(Pareto::new(1.0, 1.5).unwrap().variance(), f64::INFINITY);
        assert!(Pareto::new(1.0, 3.0).unwrap().variance().is_finite());
    }

    #[test]
    fn mle_recovers_params() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let truth = Pareto::new(3.0, 2.2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = Pareto::fit_mle(&xs).unwrap();
        assert!((fit.xm() - 3.0).abs() < 0.01, "xm={}", fit.xm());
        assert!((fit.alpha() - 2.2).abs() < 0.05, "alpha={}", fit.alpha());
    }

    #[test]
    fn mle_rejects_degenerate() {
        assert!(Pareto::fit_mle(&[2.0; 5]).is_err());
    }

    #[test]
    fn outside_support() {
        let d = Pareto::new(5.0, 1.0).unwrap();
        assert_eq!(d.pdf(4.0), 0.0);
        assert_eq!(d.cdf(5.0), 0.0);
    }
}
