//! Log-logistic (Fisk) distribution.

use serde::{Deserialize, Serialize};

use super::{check_positive_sample, require_positive, Distribution};
use crate::{Result, StatError};

/// Log-logistic distribution with scale `alpha` (the median) and shape
/// `beta`.
///
/// Support: `x > 0`. A heavy-tailed family with a closed-form CDF
/// `F(x) = 1 / (1 + (x/alpha)^-beta)`, popular in traffic modelling for
/// flow sizes and durations because its tail is Pareto-like while its
/// body stays unimodal. Completes the candidate set the measurement
/// literature typically sweeps.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, LogLogistic};
///
/// let d = LogLogistic::new(10.0, 2.0).unwrap();
/// assert!((d.quantile(0.5) - 10.0).abs() < 1e-9); // alpha is the median
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogLogistic {
    alpha: f64,
    beta: f64,
}

impl LogLogistic {
    /// Creates a log-logistic distribution with median `alpha` and shape
    /// `beta`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not finite and positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        Ok(LogLogistic {
            alpha: require_positive("alpha", alpha)?,
            beta: require_positive("beta", beta)?,
        })
    }

    /// The scale (median) parameter.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The shape (tail) parameter.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Maximum-likelihood fit.
    ///
    /// `ln X` follows a logistic distribution with location `ln alpha`
    /// and scale `1/beta`; the fit runs Newton iterations on the logistic
    /// log-likelihood in log-space, seeded by the method of moments
    /// (logistic sd = pi / (beta sqrt(3))).
    ///
    /// # Errors
    ///
    /// Returns an error for empty/non-positive/degenerate samples or if
    /// the iteration diverges.
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_positive_sample(samples)?;
        let logs: Vec<f64> = samples.iter().map(|&x| x.ln()).collect();
        let n = logs.len() as f64;
        let mean = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|&l| (l - mean) * (l - mean)).sum::<f64>() / n;
        if var <= 0.0 {
            return Err(StatError::DegenerateSample("zero variance in log-space"));
        }
        // Moment start: logistic variance = (pi * s)^2 / 3.
        let mut mu = mean;
        let mut s = (3.0 * var).sqrt() / std::f64::consts::PI;
        // Newton on (mu, s) via the logistic score equations; a few fixed
        // steps converge fast because the start is close.
        for _ in 0..60 {
            let mut sum_tanh = 0.0; // d/dmu terms: sum tanh(z/2)
            let mut sum_zt = 0.0; // d/ds terms: sum z*tanh(z/2)
            for &l in &logs {
                let z = (l - mu) / s;
                let t = (z / 2.0).tanh();
                sum_tanh += t;
                sum_zt += z * t;
            }
            // Score equations: sum tanh(z/2) = 0; sum z tanh(z/2) = n.
            let g1 = sum_tanh / n;
            let g2 = sum_zt / n - 1.0;
            // Quasi-Newton with fixed curvature (logistic Fisher info:
            // I_mu = 1/(3 s^2), I_s = (3 + pi^2)/(9 s^2)).
            let step_mu = 3.0 * s * g1;
            let step_s = s * g2 * 9.0 / (3.0 + std::f64::consts::PI.powi(2));
            mu += step_mu;
            s = (s + step_s).clamp(s * 0.5, s * 2.0).max(1e-12);
            if step_mu.abs() < 1e-12 * (1.0 + mu.abs()) && step_s.abs() < 1e-12 * s {
                break;
            }
        }
        if !(mu.is_finite() && s.is_finite() && s > 0.0) {
            return Err(StatError::NoConvergence("log-logistic fit diverged"));
        }
        LogLogistic::new(mu.exp(), 1.0 / s)
    }
}

impl Distribution for LogLogistic {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x / self.alpha).powf(self.beta);
        (self.beta / x) * z / ((1.0 + z) * (1.0 + z))
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let lr = self.beta * (x / self.alpha).ln();
        // ln f = ln(beta/x) + lr - 2 ln(1 + e^lr), computed stably.
        let log1p_exp = if lr > 0.0 {
            lr + (-lr).exp().ln_1p()
        } else {
            lr.exp().ln_1p()
        };
        (self.beta / x).ln() + lr - 2.0 * log1p_exp
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            let z = (x / self.alpha).powf(-self.beta);
            1.0 / (1.0 + z)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        self.alpha * (p / (1.0 - p)).powf(1.0 / self.beta)
    }

    fn mean(&self) -> f64 {
        if self.beta <= 1.0 {
            return f64::INFINITY;
        }
        // alpha * (pi/beta) / sin(pi/beta)
        let b = std::f64::consts::PI / self.beta;
        self.alpha * b / b.sin()
    }

    fn variance(&self) -> f64 {
        if self.beta <= 2.0 {
            return f64::INFINITY;
        }
        let b = std::f64::consts::PI / self.beta;
        let m1 = b / b.sin();
        let m2 = 2.0 * b / (2.0 * b).sin();
        self.alpha * self.alpha * (m2 - m1 * m1)
    }
}

impl std::fmt::Display for LogLogistic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogLogistic(alpha={}, beta={})", self.alpha, self.beta)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(LogLogistic::new(0.0, 1.0).is_err());
        assert!(LogLogistic::new(1.0, -1.0).is_err());
        assert!(LogLogistic::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn consistency() {
        for &(a, b) in &[(1.0, 1.5), (10.0, 3.0), (0.5, 0.8)] {
            let d = LogLogistic::new(a, b).unwrap();
            testutil::check_quantile_roundtrip(&d, 1e-10);
            testutil::check_cdf_monotone(&d);
            testutil::check_ln_pdf(&d);
        }
    }

    #[test]
    fn median_is_alpha() {
        let d = LogLogistic::new(42.0, 2.7).unwrap();
        assert!((d.quantile(0.5) - 42.0).abs() < 1e-9);
        assert!((d.cdf(42.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn moments() {
        // beta = 2: mean = alpha * (pi/2) / sin(pi/2) = alpha * pi/2.
        let d = LogLogistic::new(4.0, 2.0).unwrap();
        assert!((d.mean() - 4.0 * std::f64::consts::PI / 2.0).abs() < 1e-9);
        assert_eq!(d.variance(), f64::INFINITY);
        assert_eq!(LogLogistic::new(1.0, 0.9).unwrap().mean(), f64::INFINITY);
        assert!(LogLogistic::new(1.0, 3.0).unwrap().variance().is_finite());
    }

    #[test]
    fn sampling_matches_median() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = LogLogistic::new(7.0, 2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[10_000];
        assert!((median - 7.0).abs() / 7.0 < 0.05, "median = {median}");
    }

    #[test]
    fn mle_recovers_params() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for &(a, b) in &[(5.0, 2.0), (100.0, 4.0), (1.0, 1.2)] {
            let truth = LogLogistic::new(a, b).unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            let xs: Vec<f64> = (0..30_000).map(|_| truth.sample(&mut rng)).collect();
            let fit = LogLogistic::fit_mle(&xs).unwrap();
            assert!(
                (fit.alpha() - a).abs() / a < 0.05,
                "alpha {} vs {a}",
                fit.alpha()
            );
            assert!(
                (fit.beta() - b).abs() / b < 0.05,
                "beta {} vs {b}",
                fit.beta()
            );
        }
    }

    #[test]
    fn mle_rejects_bad_samples() {
        assert!(LogLogistic::fit_mle(&[]).is_err());
        assert!(LogLogistic::fit_mle(&[1.0, -1.0]).is_err());
        assert!(LogLogistic::fit_mle(&[2.0; 8]).is_err());
    }

    #[test]
    fn outside_support() {
        let d = LogLogistic::new(1.0, 2.0).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.ln_pdf(0.0), f64::NEG_INFINITY);
    }
}
