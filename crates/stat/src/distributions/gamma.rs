//! Gamma distribution.

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{check_positive_sample, require_positive, Distribution};
use crate::special::{digamma, gamma_p, ln_gamma};
use crate::{Result, StatError};

/// Gamma distribution with shape `k` and scale `theta` (mean `k * theta`).
///
/// Support: `x > 0`. A flexible light-tailed family; in Keddah it is a
/// candidate for per-wave shuffle volumes and task service times.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, Gamma};
///
/// let d = Gamma::new(2.0, 3.0).unwrap();
/// assert!((d.mean() - 6.0).abs() < 1e-12);
/// assert!((d.cdf(d.quantile(0.8)) - 0.8).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        Ok(Gamma {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// The shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `theta`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Maximum-likelihood fit.
    ///
    /// Starts from the Minka closed-form approximation
    /// `k ≈ (3 - s + sqrt((s-3)^2 + 24 s)) / (12 s)` with
    /// `s = ln(mean) - mean(ln x)`, then refines with Newton steps on the
    /// profile log-likelihood `ln k - ψ(k) = s`.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/non-positive or degenerate samples.
    pub fn fit_mle(samples: &[f64]) -> Result<Self> {
        check_positive_sample(samples)?;
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let mean_ln = samples.iter().map(|&x| x.ln()).sum::<f64>() / n;
        let s = mean.ln() - mean_ln;
        if s <= 0.0 {
            return Err(StatError::DegenerateSample(
                "ln(mean) <= mean(ln), sample has no spread",
            ));
        }
        let mut k = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
        // Newton refinement of f(k) = ln k - psi(k) - s = 0.
        for _ in 0..50 {
            let f = k.ln() - digamma(k) - s;
            // f'(k) = 1/k - psi'(k); approximate psi' numerically.
            let h = (k * 1e-6).max(1e-9);
            let dpsi = (digamma(k + h) - digamma(k - h)) / (2.0 * h);
            let df = 1.0 / k - dpsi;
            if df == 0.0 {
                break;
            }
            let next = (k - f / df).max(1e-8);
            if (next - k).abs() < 1e-12 * k.max(1.0) {
                k = next;
                break;
            }
            k = next;
        }
        Gamma::new(k, mean / k)
    }
}

impl Distribution for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            // Shape < 1 diverges at 0; treat x = 0 as outside support.
            0.0
        } else {
            self.ln_pdf(x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - self.shape * self.scale.ln()
            - ln_gamma(self.shape)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        // Wilson–Hilferty initial guess, then bisection-safeguarded Newton
        // on the CDF.
        let k = self.shape;
        let g = crate::special::std_normal_quantile(p);
        let c = 1.0 - 1.0 / (9.0 * k) + g / (3.0 * k.sqrt());
        let mut x = (k * c * c * c).max(1e-12);
        let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
        for _ in 0..100 {
            let f = gamma_p(k, x) - p;
            if f.abs() < 1e-12 {
                break;
            }
            if f > 0.0 {
                hi = hi.min(x);
            } else {
                lo = lo.max(x);
            }
            let pdf = ((k - 1.0) * x.ln() - x - ln_gamma(k)).exp();
            let mut next = if pdf > 0.0 { x - f / pdf } else { x };
            if !(next > lo && (hi.is_infinite() || next < hi)) {
                // Newton left the bracket: bisect.
                next = if hi.is_finite() {
                    0.5 * (lo + hi)
                } else {
                    lo * 2.0 + 1.0
                };
            }
            if (next - x).abs() < 1e-14 * x.max(1.0) {
                x = next;
                break;
            }
            x = next;
        }
        x * self.scale
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Marsaglia–Tsang squeeze sampler (much faster than inverting the CDF).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        fn next_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
                .clamp(super::UNIT_EPS, 1.0 - super::UNIT_EPS)
        }
        fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            crate::special::std_normal_quantile(next_unit(rng))
        }
        let k = self.shape;
        if k < 1.0 {
            // Boost: X_k = X_{k+1} * U^(1/k).
            let boosted = Gamma {
                shape: k + 1.0,
                scale: 1.0,
            };
            let u = next_unit(rng);
            return boosted.sample(rng) * u.powf(1.0 / k) * self.scale;
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = std_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = next_unit(rng);
            if u < 1.0 - 0.0331 * x * x * x * x || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * self.scale;
            }
        }
    }
}

impl std::fmt::Display for Gamma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gamma(shape={}, scale={})", self.shape, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        use crate::distributions::Exponential;
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &x in &[0.1, 1.0, 4.0] {
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn consistency() {
        for &(k, theta) in &[(0.5, 1.0), (2.0, 3.0), (9.0, 0.5)] {
            let d = Gamma::new(k, theta).unwrap();
            testutil::check_quantile_roundtrip(&d, 1e-7);
            testutil::check_cdf_monotone(&d);
            testutil::check_ln_pdf(&d);
        }
    }

    #[test]
    fn sampler_matches_moments() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        for &(k, theta) in &[(0.5, 2.0), (3.0, 1.0)] {
            let d = Gamma::new(k, theta).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            let n = 50_000;
            let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            assert!(
                (mean - d.mean()).abs() / d.mean() < 0.05,
                "k={k} mean={mean} expect={}",
                d.mean()
            );
            assert!(xs.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn mle_recovers_params() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let truth = Gamma::new(2.5, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let xs: Vec<f64> = (0..50_000).map(|_| truth.sample(&mut rng)).collect();
        let fit = Gamma::fit_mle(&xs).unwrap();
        assert!((fit.shape() - 2.5).abs() < 0.1, "shape={}", fit.shape());
        assert!((fit.scale() - 1.5).abs() < 0.1, "scale={}", fit.scale());
    }

    #[test]
    fn mle_rejects_degenerate() {
        assert!(Gamma::fit_mle(&[1.0; 8]).is_err());
    }
}
