//! Empirical (quantile-table) distribution.

use serde::{Deserialize, Serialize};

use super::{check_sample, Distribution};
use crate::{Result, StatError};

/// Default number of quantile knots stored by [`Empirical::fit`].
pub const DEFAULT_KNOTS: usize = 256;

/// A distribution defined directly by a sample's quantile table.
///
/// Parametric families cannot describe every Hadoop traffic component:
/// HDFS transfer sizes, for instance, are near-deterministic (a point
/// mass at the block size plus a small remainder mode) and defeat any
/// smooth two-parameter family. Keddah therefore falls back to the
/// *empirical* model the paper's title promises: a compressed quantile
/// table with linear interpolation, which is also a proper continuous
/// distribution (piecewise-uniform density between knots), so it plugs
/// into the same [`Distribution`] machinery as the parametric families.
///
/// # Examples
///
/// ```
/// use keddah_stat::distributions::{Distribution, Empirical};
///
/// let sample: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
/// let d = Empirical::fit(&sample).unwrap();
/// assert!((d.quantile(0.5) - 500.0).abs() < 5.0);
/// assert!((d.cdf(250.0) - 0.25).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical {
    /// Quantile knots: `knots[i]` is the sample quantile at probability
    /// `i / (knots.len() - 1)`. Non-decreasing.
    knots: Vec<f64>,
    /// Size of the sample the table was built from.
    n: u64,
}

impl Empirical {
    /// Builds an empirical distribution from a sample with the default
    /// knot count.
    ///
    /// # Errors
    ///
    /// Returns an error for empty or non-finite samples.
    pub fn fit(samples: &[f64]) -> Result<Self> {
        Empirical::fit_with_knots(samples, DEFAULT_KNOTS)
    }

    /// Builds an empirical distribution storing `knots` quantile points
    /// (at least 2).
    ///
    /// # Errors
    ///
    /// Returns an error for empty/non-finite samples or `knots < 2`.
    pub fn fit_with_knots(samples: &[f64], knots: usize) -> Result<Self> {
        check_sample(samples)?;
        if knots < 2 {
            return Err(StatError::InvalidParameter {
                name: "knots",
                value: knots as f64,
            });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let k = knots.min(sorted.len().max(2));
        let table: Vec<f64> = (0..k)
            .map(|i| {
                let pos = i as f64 / (k - 1) as f64 * (sorted.len() - 1) as f64;
                // Linear interpolation between order statistics.
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            })
            .collect();
        Ok(Empirical {
            knots: table,
            n: samples.len() as u64,
        })
    }

    /// The stored quantile knots.
    #[must_use]
    pub fn knots(&self) -> &[f64] {
        &self.knots
    }

    /// The size of the originating sample.
    #[must_use]
    pub fn sample_size(&self) -> u64 {
        self.n
    }

    /// Smallest representable value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.knots[0]
    }

    /// Largest representable value.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.knots.last().expect("table has >= 2 knots")
    }

    /// Returns a copy with every knot multiplied by `factor` — the
    /// distribution of `factor * X`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `factor` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Empirical {
        debug_assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Empirical {
            knots: self.knots.iter().map(|&k| k * factor).collect(),
            n: self.n,
        }
    }
}

impl Distribution for Empirical {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.min() || x > self.max() {
            return 0.0;
        }
        // Piecewise-uniform density: mass 1/(k-1) spread over each knot
        // interval. Degenerate (zero-width) intervals act as point
        // masses; report a large finite density there.
        let k = self.knots.len();
        let dp = 1.0 / (k - 1) as f64;
        // Find the interval containing x.
        let idx = match self
            .knots
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => i.min(k - 2),
            Err(i) => i.saturating_sub(1).min(k - 2),
        };
        let width = self.knots[idx + 1] - self.knots[idx];
        if width <= 0.0 {
            1e12 // point mass
        } else {
            dp / width
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let p = self.pdf(x);
        if p <= 0.0 {
            f64::NEG_INFINITY
        } else {
            p.ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < self.min() {
            return 0.0;
        }
        if x >= self.max() {
            return 1.0;
        }
        let k = self.knots.len();
        let idx = match self
            .knots
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => {
                // Step onto the last equal knot so ties report the full
                // accumulated probability.
                let mut j = i;
                while j + 1 < k && self.knots[j + 1] == x {
                    j += 1;
                }
                return j as f64 / (k - 1) as f64;
            }
            Err(i) => i - 1,
        };
        let width = self.knots[idx + 1] - self.knots[idx];
        let frac = if width <= 0.0 {
            0.0
        } else {
            (x - self.knots[idx]) / width
        };
        (idx as f64 + frac) / (k - 1) as f64
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
        let k = self.knots.len();
        let pos = p * (k - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(k - 1);
        let frac = pos - lo as f64;
        self.knots[lo] * (1.0 - frac) + self.knots[hi] * frac
    }

    fn mean(&self) -> f64 {
        // Mean of the piecewise-uniform density: average of interval
        // midpoints.
        let k = self.knots.len();
        self.knots
            .windows(2)
            .map(|w| 0.5 * (w[0] + w[1]))
            .sum::<f64>()
            / (k - 1) as f64
    }

    fn variance(&self) -> f64 {
        // E[X^2] for piecewise-uniform: (a^2 + ab + b^2)/3 per interval.
        let k = self.knots.len();
        let m = self.mean();
        let ex2 = self
            .knots
            .windows(2)
            .map(|w| (w[0] * w[0] + w[0] * w[1] + w[1] * w[1]) / 3.0)
            .sum::<f64>()
            / (k - 1) as f64;
        (ex2 - m * m).max(0.0)
    }
}

impl std::fmt::Display for Empirical {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Empirical(n={}, {} knots, [{:.3e}, {:.3e}])",
            self.n,
            self.knots.len(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(Empirical::fit(&[]).is_err());
        assert!(Empirical::fit(&[1.0, f64::NAN]).is_err());
        assert!(Empirical::fit_with_knots(&[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn reproduces_uniform_sample() {
        let sample: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let d = Empirical::fit(&sample).unwrap();
        testutil::check_quantile_roundtrip(&d, 0.01);
        testutil::check_cdf_monotone(&d);
        assert!((d.mean() - 0.5).abs() < 0.01);
        assert!((d.variance() - 1.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn point_mass_sample() {
        // 90% of mass at exactly 128.0 (the "block size" case), 10%
        // spread below.
        let mut sample = vec![128.0; 900];
        sample.extend((0..100).map(|i| 1.0 + i as f64 / 100.0));
        let d = Empirical::fit(&sample).unwrap();
        // The quantile table must reproduce the point mass.
        assert_eq!(d.quantile(0.5), 128.0);
        assert_eq!(d.quantile(0.95), 128.0);
        assert!(d.cdf(127.9) <= 0.12);
        assert!(d.cdf(128.0) > 0.98);
    }

    #[test]
    fn sampling_matches_source() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let source: Vec<f64> = (0..5_000)
            .map(|i| (i as f64 * 0.7).sin() * 10.0 + 20.0)
            .collect();
        let d = Empirical::fit(&source).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let drawn: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let r = crate::ks::ks_two_sample(&source, &drawn).unwrap();
        assert!(r.statistic < 0.05, "KS = {}", r.statistic);
    }

    #[test]
    fn outside_support() {
        let d = Empirical::fit(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(10.0), 1.0);
        assert_eq!(d.ln_pdf(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn knot_compression_bounds_size() {
        let sample: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        let d = Empirical::fit(&sample).unwrap();
        assert_eq!(d.knots().len(), DEFAULT_KNOTS);
        assert_eq!(d.sample_size(), 100_000);
        assert_eq!(d.min(), 0.0);
        assert_eq!(d.max(), 99_999.0);
    }

    #[test]
    fn tiny_samples_work() {
        let d = Empirical::fit(&[5.0, 7.0]).unwrap();
        assert_eq!(d.min(), 5.0);
        assert_eq!(d.max(), 7.0);
        assert!((d.quantile(0.5) - 6.0).abs() < 1e-12);
    }
}
