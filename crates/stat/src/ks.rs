//! Kolmogorov–Smirnov goodness-of-fit tests.
//!
//! Keddah judges candidate distribution families by the KS statistic
//! against the empirical sample (one-sample test) and validates generated
//! traffic against captured traffic with the two-sample test.

use crate::{Result, StatError};

/// The outcome of a KS test: the supremum distance and an asymptotic
/// p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F1 - F2|`.
    pub statistic: f64,
    /// Asymptotic p-value from the Kolmogorov distribution; small values
    /// reject the hypothesis that the sample follows the reference.
    pub p_value: f64,
}

/// One-sample KS test of `samples` against a reference CDF.
///
/// `cdf` must be a valid CDF (monotone, into `[0, 1]`).
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] if `samples` is empty or
/// [`StatError::InvalidParameter`] if a sample is non-finite.
///
/// # Examples
///
/// ```
/// use keddah_stat::ks::ks_one_sample;
///
/// // A uniform grid on (0,1) against the uniform CDF: tiny distance.
/// let xs: Vec<f64> = (1..100).map(|i| i as f64 / 100.0).collect();
/// let r = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0)).unwrap();
/// assert!(r.statistic < 0.02);
/// ```
pub fn ks_one_sample<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Result<KsResult> {
    if samples.is_empty() {
        return Err(StatError::EmptySample);
    }
    let mut sorted = samples.to_vec();
    for &x in &sorted {
        if !x.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "sample",
                value: x,
            });
        }
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    // Group tied sample values so reference distributions with point
    // masses (e.g. the empirical quantile-table model on block-sized
    // flows) are compared correctly: at a distinct value v, the lower
    // comparison uses F(v^-), the upper uses F(v).
    let mut i = 0;
    while i < sorted.len() {
        let v = sorted[i];
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == v {
            j += 1;
        }
        let lo = i as f64 / n;
        let hi = j as f64 / n;
        let f_at = cdf(v);
        let delta = (v.abs() * 1e-12).max(f64::MIN_POSITIVE);
        let f_before = cdf(v - delta);
        d = d.max((f_before - lo).abs()).max((hi - f_at).abs());
        i = j;
    }
    let p_value = kolmogorov_sf(d * (n.sqrt() + 0.12 + 0.11 / n.sqrt()));
    Ok(KsResult {
        statistic: d,
        p_value,
    })
}

/// Two-sample KS test.
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] if either sample is empty, or
/// [`StatError::InvalidParameter`] on non-finite values.
///
/// # Examples
///
/// ```
/// use keddah_stat::ks::ks_two_sample;
///
/// let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
/// let r = ks_two_sample(&a, &b).unwrap();
/// assert!(r.statistic < 0.05);
/// ```
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<KsResult> {
    if a.is_empty() || b.is_empty() {
        return Err(StatError::EmptySample);
    }
    for &x in a.iter().chain(b.iter()) {
        if !x.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "sample",
                value: x,
            });
        }
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let xa = sa[i];
        let xb = sb[j];
        let x = xa.min(xb);
        while i < na && sa[i] <= x {
            i += 1;
        }
        while j < nb && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let p_value = kolmogorov_sf(d * (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()));
    Ok(KsResult {
        statistic: d,
        p_value,
    })
}

/// Kolmogorov distribution survival function
/// `Q(t) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 t^2)`.
#[must_use]
pub fn kolmogorov_sf(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    if t > 8.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * t * t).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Distribution, Exponential, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_sample_accepts_true_model() {
        let d = Exponential::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_one_sample(&xs, |x| d.cdf(x)).unwrap();
        assert!(r.statistic < 0.04, "D={}", r.statistic);
        assert!(r.p_value > 0.01, "p={}", r.p_value);
    }

    #[test]
    fn one_sample_rejects_wrong_model() {
        let d = Exponential::new(1.0).unwrap();
        let wrong = Normal::new(5.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let xs: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_one_sample(&xs, |x| wrong.cdf(x)).unwrap();
        assert!(r.statistic > 0.5, "D={}", r.statistic);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn two_sample_same_distribution() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let a: Vec<f64> = (0..3000).map(|_| d.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..3000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic < 0.05, "D={}", r.statistic);
        assert!(r.p_value > 0.01);
    }

    #[test]
    fn two_sample_shifted_distribution() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let a: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let b: Vec<f64> = a.iter().map(|&x| x + 1.0).collect();
        let r = ks_two_sample(&a, &b).unwrap();
        assert!(r.statistic > 0.3, "D={}", r.statistic);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn two_sample_is_symmetric() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.5, 2.5, 3.5, 4.5];
        let r1 = ks_two_sample(&a, &b).unwrap();
        let r2 = ks_two_sample(&b, &a).unwrap();
        assert!((r1.statistic - r2.statistic).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_error_not_panic() {
        assert!(matches!(
            ks_one_sample(&[1.0, f64::NAN], |x| x),
            Err(StatError::InvalidParameter { .. })
        ));
        assert!(ks_two_sample(&[1.0], &[f64::INFINITY]).is_err());
    }

    #[test]
    fn empty_inputs_error() {
        assert!(ks_one_sample(&[], |x| x).is_err());
        assert!(ks_two_sample(&[], &[1.0]).is_err());
        assert!(ks_two_sample(&[1.0], &[]).is_err());
    }

    #[test]
    fn one_sample_handles_atomic_reference() {
        use crate::distributions::Empirical;
        // 80% point mass at 128, 20% spread: the empirical model of its
        // own sample must score a near-zero KS distance.
        let mut xs = vec![128.0; 800];
        xs.extend((0..200).map(|i| 1.0 + i as f64 * 0.1));
        let d = Empirical::fit(&xs).unwrap();
        let r = ks_one_sample(&xs, |x| d.cdf(x)).unwrap();
        assert!(r.statistic < 0.05, "D = {}", r.statistic);
    }

    #[test]
    fn two_tiny_samples_stay_finite() {
        // Degenerate sample sizes (one or two points per side, the
        // smallest a user-supplied trace can produce) exercise the
        // effective-n correction where `ne < 1`; the statistic and
        // p-value must stay finite and in range, never NaN.
        let disjoint = ks_two_sample(&[1.0], &[2.0]).unwrap();
        assert_eq!(disjoint.statistic, 1.0);
        assert!((0.0..=1.0).contains(&disjoint.p_value), "{disjoint:?}");
        let identical = ks_two_sample(&[1.0, 1.0], &[1.0]).unwrap();
        assert_eq!(identical.statistic, 0.0);
        assert!((identical.p_value - 1.0).abs() < 1e-12);
        let two_each = ks_two_sample(&[1.0, 2.0], &[1.5, 2.5]).unwrap();
        assert!(two_each.statistic.is_finite() && two_each.p_value.is_finite());
    }

    #[test]
    fn kolmogorov_sf_bounds() {
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert_eq!(kolmogorov_sf(-1.0), 1.0);
        assert_eq!(kolmogorov_sf(100.0), 0.0);
        // Known value: Q(1.0) ~ 0.27.
        assert!((kolmogorov_sf(1.0) - 0.27).abs() < 0.01);
        // Monotone decreasing.
        let mut prev = 1.0;
        for i in 1..80 {
            let q = kolmogorov_sf(i as f64 * 0.1);
            assert!(q <= prev + 1e-15);
            prev = q;
        }
    }
}
