//! Time-series summaries: burstiness and autocorrelation.
//!
//! Marginal distributions do not capture *when* flows arrive relative to
//! each other; these helpers quantify that second-order structure so the
//! toolchain can report how bursty captured traffic is and how much of
//! that burstiness generated traffic retains (the fig7 tail discussion
//! in EXPERIMENTS.md).

use crate::{Result, StatError};

/// Bins event timestamps into equal-width windows and returns per-bin
/// counts covering `[0, horizon)`.
///
/// # Errors
///
/// Returns [`StatError::InvalidParameter`] if `bin_width` or `horizon`
/// is not positive/finite, or a timestamp is not finite.
///
/// # Examples
///
/// ```
/// use keddah_stat::series::bin_counts;
///
/// let counts = bin_counts(&[0.1, 0.2, 1.5, 2.9], 1.0, 3.0).unwrap();
/// assert_eq!(counts, vec![2.0, 1.0, 1.0]);
/// ```
pub fn bin_counts(timestamps: &[f64], bin_width: f64, horizon: f64) -> Result<Vec<f64>> {
    if !(bin_width > 0.0 && bin_width.is_finite()) {
        return Err(StatError::InvalidParameter {
            name: "bin_width",
            value: bin_width,
        });
    }
    if !(horizon > 0.0 && horizon.is_finite()) {
        return Err(StatError::InvalidParameter {
            name: "horizon",
            value: horizon,
        });
    }
    let n_bins = (horizon / bin_width).ceil() as usize;
    let mut counts = vec![0.0; n_bins.max(1)];
    for &t in timestamps {
        if !t.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "timestamp",
                value: t,
            });
        }
        if t < 0.0 || t >= horizon {
            continue;
        }
        counts[(t / bin_width) as usize] += 1.0;
    }
    Ok(counts)
}

/// Index of dispersion (variance-to-mean ratio) of a count series.
///
/// 1.0 for a Poisson process; > 1 indicates burstiness (clustered
/// arrivals), < 1 indicates regularity (e.g. heartbeats).
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] for an empty series and
/// [`StatError::DegenerateSample`] if the mean is zero.
pub fn index_of_dispersion(counts: &[f64]) -> Result<f64> {
    if counts.is_empty() {
        return Err(StatError::EmptySample);
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return Err(StatError::DegenerateSample("count series sums to zero"));
    }
    let var = counts.iter().map(|&c| (c - mean) * (c - mean)).sum::<f64>() / n;
    Ok(var / mean)
}

/// Lag-`k` autocorrelation of a series, in `[-1, 1]`.
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] if the series is shorter than
/// `lag + 2`, and [`StatError::DegenerateSample`] for constant series.
pub fn autocorrelation(series: &[f64], lag: usize) -> Result<f64> {
    if series.len() < lag + 2 {
        return Err(StatError::EmptySample);
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    let var: f64 = series.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(StatError::DegenerateSample("constant series"));
    }
    let cov: f64 = series
        .windows(lag + 1)
        .map(|w| (w[0] - mean) * (w[lag] - mean))
        .sum::<f64>()
        / n;
    Ok(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bin_counts_basics() {
        let c = bin_counts(&[0.0, 0.5, 2.0, 5.0, -1.0], 1.0, 3.0).unwrap();
        assert_eq!(c, vec![2.0, 0.0, 1.0]); // 5.0 beyond horizon, -1 dropped
        assert!(bin_counts(&[0.0], 0.0, 1.0).is_err());
        assert!(bin_counts(&[f64::NAN], 1.0, 1.0).is_err());
    }

    #[test]
    fn poisson_has_unit_dispersion() {
        // Uniform arrivals over [0, 1000) at rate 5/bin: counts are
        // ~Poisson(5).
        let mut rng = StdRng::seed_from_u64(4);
        let arrivals: Vec<f64> = (0..5_000).map(|_| rng.random::<f64>() * 1_000.0).collect();
        let counts = bin_counts(&arrivals, 1.0, 1_000.0).unwrap();
        let iod = index_of_dispersion(&counts).unwrap();
        assert!((0.8..1.25).contains(&iod), "IoD = {iod}");
    }

    #[test]
    fn bursty_arrivals_have_high_dispersion() {
        // All 500 arrivals packed into 10 of 1000 bins.
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals: Vec<f64> = (0..500)
            .map(|_| {
                let burst = (rng.random::<f64>() * 10.0).floor() * 100.0;
                burst + rng.random::<f64>()
            })
            .collect();
        let counts = bin_counts(&arrivals, 1.0, 1_000.0).unwrap();
        let iod = index_of_dispersion(&counts).unwrap();
        assert!(iod > 10.0, "IoD = {iod}");
    }

    #[test]
    fn regular_arrivals_have_low_dispersion() {
        // One arrival per bin, exactly (heartbeats).
        let arrivals: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let counts = bin_counts(&arrivals, 1.0, 100.0).unwrap();
        assert!(index_of_dispersion(&counts).unwrap() < 0.05);
    }

    #[test]
    fn autocorrelation_detects_periodicity() {
        let series: Vec<f64> = (0..200).map(|i| (i % 2) as f64).collect();
        // Alternating series: lag 1 strongly negative, lag 2 strongly
        // positive.
        assert!(autocorrelation(&series, 1).unwrap() < -0.9);
        assert!(autocorrelation(&series, 2).unwrap() > 0.9);
    }

    #[test]
    fn autocorrelation_of_noise_is_small() {
        let mut rng = StdRng::seed_from_u64(6);
        let series: Vec<f64> = (0..2_000).map(|_| rng.random::<f64>()).collect();
        assert!(autocorrelation(&series, 3).unwrap().abs() < 0.1);
    }

    #[test]
    fn error_paths() {
        assert!(index_of_dispersion(&[]).is_err());
        assert!(index_of_dispersion(&[0.0, 0.0]).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 5).is_err());
        assert!(autocorrelation(&[3.0; 50], 1).is_err());
    }
}
