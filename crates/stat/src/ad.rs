//! Anderson–Darling goodness-of-fit test.
//!
//! A tail-weighted alternative to Kolmogorov–Smirnov: AD up-weights
//! disagreement in the distribution tails, which matters for traffic
//! models where the elephants live. Offered alongside KS so the fitting
//! pipeline's selection criterion can be ablated.

use crate::{Result, StatError};

/// The Anderson–Darling statistic for a sample against a reference CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdResult {
    /// The A² statistic; larger means a worse fit. For a correct fully
    /// specified model, values above ~2.5 reject at the 5% level.
    pub statistic: f64,
}

/// One-sample Anderson–Darling test of `samples` against `cdf`.
///
/// `A² = -n - (1/n) Σ (2i-1) [ln F(x_i) + ln(1 - F(x_{n+1-i}))]`
/// over the sorted sample. CDF values are clamped away from {0, 1} so
/// reference distributions with bounded support (uniform, empirical)
/// yield finite statistics.
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] for an empty sample and
/// [`StatError::InvalidParameter`] for non-finite values.
///
/// # Examples
///
/// ```
/// use keddah_stat::ad::ad_one_sample;
///
/// let xs: Vec<f64> = (1..200).map(|i| i as f64 / 200.0).collect();
/// let r = ad_one_sample(&xs, |x| x.clamp(0.0, 1.0)).unwrap();
/// assert!(r.statistic < 2.0, "A2 = {}", r.statistic);
/// ```
pub fn ad_one_sample<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> Result<AdResult> {
    if samples.is_empty() {
        return Err(StatError::EmptySample);
    }
    let mut sorted = samples.to_vec();
    for &x in &sorted {
        if !x.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "sample",
                value: x,
            });
        }
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let n = sorted.len();
    let nf = n as f64;
    const CLAMP: f64 = 1e-12;
    let mut sum = 0.0;
    for i in 0..n {
        let f_lo = cdf(sorted[i]).clamp(CLAMP, 1.0 - CLAMP);
        let f_hi = cdf(sorted[n - 1 - i]).clamp(CLAMP, 1.0 - CLAMP);
        sum += (2.0 * i as f64 + 1.0) * (f_lo.ln() + (1.0 - f_hi).ln());
    }
    Ok(AdResult {
        statistic: -nf - sum / nf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{Distribution, Exponential, LogNormal, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accepts_true_model() {
        let d = Exponential::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let r = ad_one_sample(&xs, |x| d.cdf(x)).unwrap();
        assert!(r.statistic < 2.5, "A2 = {}", r.statistic);
    }

    #[test]
    fn rejects_wrong_model() {
        let d = Exponential::new(2.0).unwrap();
        let wrong = Normal::new(3.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let r = ad_one_sample(&xs, |x| wrong.cdf(x)).unwrap();
        assert!(r.statistic > 100.0, "A2 = {}", r.statistic);
    }

    #[test]
    fn more_tail_sensitive_than_ks() {
        // Same body, perturbed tail: AD should blow up relatively more
        // than KS does.
        let truth = LogNormal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut xs: Vec<f64> = (0..3000).map(|_| truth.sample(&mut rng)).collect();
        // Push the top 1% two orders of magnitude out.
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = xs.len();
        for x in xs[n - 30..].iter_mut() {
            *x *= 100.0;
        }
        let ad = ad_one_sample(&xs, |x| truth.cdf(x)).unwrap().statistic;
        let ks = crate::ks::ks_one_sample(&xs, |x| truth.cdf(x))
            .unwrap()
            .statistic;
        // KS barely moves (1% of mass), AD rejects decisively (the 5%
        // critical value is ~2.5).
        assert!(ks < 0.05, "KS = {ks}");
        assert!(ad > 5.0, "A2 = {ad}");
    }

    #[test]
    fn bounded_support_is_finite() {
        // Samples outside the reference support hit the CDF clamp rather
        // than producing ln(0).
        let xs = vec![-1.0, 0.5, 2.0];
        let r = ad_one_sample(&xs, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(r.statistic.is_finite());
    }

    #[test]
    fn error_paths() {
        assert!(ad_one_sample(&[], |x| x).is_err());
        assert!(ad_one_sample(&[f64::NAN], |x| x).is_err());
    }
}
