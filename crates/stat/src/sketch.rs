//! Streaming quantile sketches for online model fitting.
//!
//! The offline fitting path sorts the whole pooled sample; a service
//! ingesting an unbounded capture stream cannot. This module provides
//! the bounded-memory replacement: a Greenwald–Khanna (GK) quantile
//! sketch with a provable rank-error guarantee, an exact reference
//! implementation behind the same trait, and a streaming one-sample
//! Kolmogorov–Smirnov test whose deviation from the offline statistic
//! is bounded by the sketch error.
//!
//! # Error bounds
//!
//! For a sketch with parameter `ε` over `n` observations:
//!
//! * [`StreamingQuantiles::quantile`] at target rank `r = ⌈qn⌉` returns
//!   a stored value whose true rank lies in `[r − εn, r + εn]` — the GK
//!   guarantee, maintained by keeping every tuple's `g + Δ ≤ 2εn`;
//! * [`ks_one_sample_sketch`] differs from the offline
//!   [`crate::ks::ks_one_sample`] on the same data by at most `2ε`:
//!   the sketch's weighted step function `F̃` (jump `gᵢ/n` at `vᵢ`)
//!   satisfies `0 ≤ Fₙ(x) − F̃(x) ≤ 2ε` pointwise, because for
//!   `x ∈ [vᵢ, vᵢ₊₁)` the empirical count through `x` is at least
//!   `rminᵢ` and less than `rmaxᵢ₊₁ = rminᵢ + gᵢ₊₁ + Δᵢ₊₁ ≤ rminᵢ + 2εn`.
//!
//! Both bounds are asserted exactly (plus float-rounding slack) by the
//! sketch-equivalence proptests in `tests/stream_model.rs`.

use crate::ks::{kolmogorov_sf, KsResult};
use crate::{Result, StatError};

/// A streaming quantile estimator: the shared interface of the online
/// (sketched) and offline (exact, sort-the-world) fitting paths.
pub trait StreamingQuantiles {
    /// Ingests one observation. Non-finite values are ignored.
    fn observe(&mut self, x: f64);

    /// Number of (finite) observations ingested.
    fn count(&self) -> u64;

    /// The value at quantile `q ∈ [0, 1]` (clamped).
    ///
    /// # Errors
    ///
    /// Returns [`StatError::EmptySample`] before any observation.
    fn quantile(&self, q: f64) -> Result<f64>;

    /// The rank-error guarantee `ε`: the returned quantile's true rank
    /// is within `ε·n` of the target rank. Zero for exact stores.
    fn rank_error(&self) -> f64;
}

/// One GK tuple: a stored value `v` covering `g` observations, with
/// rank uncertainty `Δ`. With `rminᵢ = Σ_{j≤i} gⱼ`, the tracked
/// instance of `v` has rank in `[rminᵢ, rminᵢ + Δᵢ]`.
#[derive(Debug, Clone, Copy)]
struct GkTuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// A Greenwald–Khanna ε-approximate quantile sketch.
///
/// Memory is `O((1/ε) · log(εn))` tuples regardless of stream length;
/// the extreme values stay exact (the first tuple is always the true
/// minimum with `g = 1, Δ = 0`, the last always holds the true
/// maximum).
///
/// # Examples
///
/// ```
/// use keddah_stat::sketch::{GkSketch, StreamingQuantiles};
///
/// let mut sk = GkSketch::new(0.01).unwrap();
/// for i in 0..10_000 {
///     sk.observe(f64::from(i));
/// }
/// let median = sk.quantile(0.5).unwrap();
/// assert!((median - 5_000.0).abs() <= 0.01 * 10_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct GkSketch {
    eps: f64,
    n: u64,
    tuples: Vec<GkTuple>,
    inserts_since_compress: u64,
}

impl GkSketch {
    /// Creates a sketch with rank-error parameter `eps`.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::InvalidParameter`] unless `0 < eps < 0.5`.
    pub fn new(eps: f64) -> Result<GkSketch> {
        if !eps.is_finite() || eps <= 0.0 || eps >= 0.5 {
            return Err(StatError::InvalidParameter {
                name: "eps",
                value: eps,
            });
        }
        Ok(GkSketch {
            eps,
            n: 0,
            tuples: Vec::new(),
            inserts_since_compress: 0,
        })
    }

    /// The configured rank-error parameter.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Stored tuples — the sketch's memory footprint.
    #[must_use]
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// The exact minimum observed, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.tuples.first().map(|t| t.v)
    }

    /// The exact maximum observed, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.tuples.last().map(|t| t.v)
    }

    /// The maximum tuple uncertainty `g + Δ` may reach.
    fn band(&self) -> u64 {
        (2.0 * self.eps * self.n as f64).floor() as u64
    }

    /// Inserts every `⌊1/(2ε)⌋` observations, merge adjacent tuples
    /// whose combined uncertainty stays within the band. The first and
    /// last tuples are never merged away, keeping the extremes exact.
    fn compress(&mut self) {
        let band = self.band();
        if self.tuples.len() < 3 {
            return;
        }
        let mut i = self.tuples.len() - 2;
        while i >= 1 {
            let merged = self.tuples[i].g + self.tuples[i + 1].g + self.tuples[i + 1].delta;
            if merged <= band {
                self.tuples[i + 1].g += self.tuples[i].g;
                self.tuples.remove(i);
            }
            i -= 1;
        }
    }

    /// The sketch's lower empirical CDF `F̃(x) = rmin(x)/n`: the jump
    /// function with mass `gᵢ/n` at `vᵢ`. Satisfies
    /// `0 ≤ Fₙ(x) − F̃(x) ≤ 2ε` against the exact empirical CDF.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut cum = 0u64;
        for t in &self.tuples {
            if t.v <= x {
                cum += t.g;
            } else {
                break;
            }
        }
        cum as f64 / self.n as f64
    }

    /// The stored support values, ascending — the points at which the
    /// sketch's step CDF jumps. Two-sample comparisons (see
    /// [`crate::shift`]) evaluate both sketches' CDFs exactly at the
    /// union of their supports, which is where any supremum over step
    /// functions is attained.
    #[must_use]
    pub fn support(&self) -> Vec<f64> {
        self.tuples.iter().map(|t| t.v).collect()
    }

    /// A bounded, sorted pseudo-sample reconstructed from the quantile
    /// grid: `m` mid-rank quantiles, `m = min(n, cap)`. Feeding these
    /// to the offline fitters approximates the full-sample fit to
    /// within the sketch's rank error.
    #[must_use]
    pub fn pseudo_sample(&self, cap: usize) -> Vec<f64> {
        let m = (self.n as usize).min(cap.max(1));
        if self.n == 0 {
            return Vec::new();
        }
        (0..m)
            .map(|j| {
                let q = (j as f64 + 0.5) / m as f64;
                self.quantile(q).expect("non-empty sketch")
            })
            .collect()
    }
}

impl StreamingQuantiles for GkSketch {
    fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let band = self.band();
        let pos = self.tuples.partition_point(|t| t.v <= x);
        // Interior inserts take the maximal allowed uncertainty; new
        // extremes are exact (Δ = 0), which keeps min/max queries
        // error-free and anchors the query-walk proof.
        let delta = if pos == 0 || pos == self.tuples.len() {
            0
        } else {
            band.saturating_sub(1)
        };
        self.tuples.insert(pos, GkTuple { v: x, g: 1, delta });
        self.n += 1;
        self.inserts_since_compress += 1;
        let period = (1.0 / (2.0 * self.eps)).floor().max(1.0) as u64;
        if self.inserts_since_compress >= period {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    fn count(&self) -> u64 {
        self.n
    }

    fn quantile(&self, q: f64) -> Result<f64> {
        if self.n == 0 {
            return Err(StatError::EmptySample);
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are stored exactly (Δ = 0 at both ends); answer
        // them directly rather than letting the ε-window walk drift.
        if q == 0.0 {
            return Ok(self.tuples[0].v);
        }
        if q == 1.0 {
            return Ok(self.tuples[self.tuples.len() - 1].v);
        }
        let n = self.n as f64;
        let r = (q * n).ceil().max(1.0);
        let t = self.eps * n;
        // Return the last stored value whose maximal rank still fits
        // under r + εn; its successor violating the cut plus the band
        // invariant forces its minimal rank above r − εn.
        let mut rmin = 0u64;
        let mut prev = self.tuples[0].v;
        for tu in &self.tuples {
            rmin += tu.g;
            if (rmin + tu.delta) as f64 > r + t {
                return Ok(prev);
            }
            prev = tu.v;
        }
        Ok(prev)
    }

    fn rank_error(&self) -> f64 {
        self.eps
    }
}

/// The exact (offline-equivalent) quantile store: keeps every value,
/// sorted. The reference implementation the sketch is tested against,
/// and the "degenerate sketch config" of `keddah serve --exact`.
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    sorted: Vec<f64>,
}

impl ExactQuantiles {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> ExactQuantiles {
        ExactQuantiles::default()
    }

    /// The sorted values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

impl StreamingQuantiles for ExactQuantiles {
    fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let pos = self.sorted.partition_point(|&v| v <= x);
        self.sorted.insert(pos, x);
    }

    fn count(&self) -> u64 {
        self.sorted.len() as u64
    }

    fn quantile(&self, q: f64) -> Result<f64> {
        if self.sorted.is_empty() {
            return Err(StatError::EmptySample);
        }
        let n = self.sorted.len();
        // Same rank convention as `Ecdf::quantile`.
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        Ok(self.sorted[rank - 1])
    }

    fn rank_error(&self) -> f64 {
        0.0
    }
}

/// Streaming one-sample KS test: the supremum distance between the
/// sketch's weighted empirical step function and a reference CDF.
///
/// Differs from the offline [`crate::ks::ks_one_sample`] on the same
/// data by at most `2ε` (see the module docs for the argument); the
/// p-value uses the same asymptotic Kolmogorov formula on the sketch
/// statistic.
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] for an empty sketch.
///
/// # Examples
///
/// ```
/// use keddah_stat::sketch::{ks_one_sample_sketch, GkSketch, StreamingQuantiles};
///
/// let mut sk = GkSketch::new(0.005).unwrap();
/// for i in 1..1000 {
///     sk.observe(f64::from(i) / 1000.0);
/// }
/// let r = ks_one_sample_sketch(&sk, |x| x.clamp(0.0, 1.0)).unwrap();
/// assert!(r.statistic < 0.02);
/// ```
pub fn ks_one_sample_sketch<F: Fn(f64) -> f64>(sketch: &GkSketch, cdf: F) -> Result<KsResult> {
    if sketch.n == 0 {
        return Err(StatError::EmptySample);
    }
    let n = sketch.n as f64;
    let mut d: f64 = 0.0;
    let mut cum = 0u64;
    for t in &sketch.tuples {
        let lo = cum as f64 / n;
        cum += t.g;
        let hi = cum as f64 / n;
        let f_at = cdf(t.v);
        // Mirror the offline test's point-mass handling: the lower
        // comparison evaluates the reference just left of the jump.
        let delta = (t.v.abs() * 1e-12).max(f64::MIN_POSITIVE);
        let f_before = cdf(t.v - delta);
        d = d.max((f_before - lo).abs()).max((hi - f_at).abs());
    }
    let p_value = kolmogorov_sf(d * (n.sqrt() + 0.12 + 0.11 / n.sqrt()));
    Ok(KsResult {
        statistic: d,
        p_value,
    })
}

/// A bounded-memory sample accumulator for one model dimension: either
/// the exact store (offline-identical fits, memory grows with the
/// stream) or a GK sketch (bounded memory, fits within the sketch
/// error). The streaming engine holds one per component per dimension.
#[derive(Debug, Clone)]
pub enum SampleStore {
    /// Every sample, in insertion order — replaying this through the
    /// offline fitters is bit-identical to a batch fit.
    Exact(Vec<f64>),
    /// A GK sketch; fits consume [`GkSketch::pseudo_sample`].
    Sketch(GkSketch),
}

/// Pseudo-sample size cap used by [`SampleStore::fit_samples`] in
/// sketch mode: enough grid points that reconstruction error stays
/// below the sketch's own rank error.
pub const PSEUDO_SAMPLE_CAP: usize = 512;

impl SampleStore {
    /// An exact store.
    #[must_use]
    pub fn exact() -> SampleStore {
        SampleStore::Exact(Vec::new())
    }

    /// A sketched store with rank error `eps`.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::InvalidParameter`] for `eps` outside
    /// `(0, 0.5)`.
    pub fn sketch(eps: f64) -> Result<SampleStore> {
        Ok(SampleStore::Sketch(GkSketch::new(eps)?))
    }

    /// Ingests one observation (non-finite values are ignored).
    pub fn push(&mut self, x: f64) {
        match self {
            SampleStore::Exact(v) => {
                if x.is_finite() {
                    v.push(x);
                }
            }
            SampleStore::Sketch(s) => s.observe(x),
        }
    }

    /// Observations ingested.
    #[must_use]
    pub fn count(&self) -> u64 {
        match self {
            SampleStore::Exact(v) => v.len() as u64,
            SampleStore::Sketch(s) => s.count(),
        }
    }

    /// The store's rank-error guarantee (0 for exact).
    #[must_use]
    pub fn rank_error(&self) -> f64 {
        match self {
            SampleStore::Exact(_) => 0.0,
            SampleStore::Sketch(s) => s.rank_error(),
        }
    }

    /// True for the exact (offline-identical) store.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self, SampleStore::Exact(_))
    }

    /// The sample to hand to the offline fitters: the raw insertion
    /// order for exact stores (so batch and streaming fits sum floats
    /// in the same order and stay bit-identical), a bounded quantile
    /// reconstruction for sketches.
    #[must_use]
    pub fn fit_samples(&self) -> Vec<f64> {
        match self {
            SampleStore::Exact(v) => v.clone(),
            SampleStore::Sketch(s) => s.pseudo_sample(PSEUDO_SAMPLE_CAP),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// True rank interval of `v` in `data`: 1-based `[lo, hi]`.
    fn rank_interval(data: &[f64], v: f64) -> (u64, u64) {
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let below = sorted.partition_point(|&x| x < v) as u64;
        let through = sorted.partition_point(|&x| x <= v) as u64;
        (below + 1, through)
    }

    #[test]
    fn rejects_bad_eps() {
        assert!(GkSketch::new(0.0).is_err());
        assert!(GkSketch::new(0.5).is_err());
        assert!(GkSketch::new(f64::NAN).is_err());
        assert!(GkSketch::new(0.01).is_ok());
    }

    #[test]
    fn empty_sketch_errors() {
        let sk = GkSketch::new(0.1).unwrap();
        assert!(matches!(sk.quantile(0.5), Err(StatError::EmptySample)));
        assert!(ks_one_sample_sketch(&sk, |x| x).is_err());
        assert_eq!(sk.min(), None);
        assert_eq!(sk.max(), None);
    }

    #[test]
    fn quantiles_within_bound_on_uniform_stream() {
        let n = 50_000u64;
        let eps = 0.01;
        let mut sk = GkSketch::new(eps).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 1e6).collect();
        for &x in &data {
            sk.observe(x);
        }
        assert_eq!(sk.count(), n);
        let t = eps * n as f64;
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = sk.quantile(q).unwrap();
            let r = (q * n as f64).ceil().max(1.0);
            let (lo, hi) = rank_interval(&data, v);
            assert!(
                lo as f64 <= r + t + 1e-9 && hi as f64 >= r - t - 1e-9,
                "q={q}: rank interval [{lo}, {hi}] misses target {r} ± {t}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut sk = GkSketch::new(0.05).unwrap();
        let data: Vec<f64> = (0..5_000).map(|i| f64::from((i * 37) % 1000)).collect();
        for &x in &data {
            sk.observe(x);
        }
        assert_eq!(sk.min(), Some(0.0));
        assert_eq!(sk.max(), Some(999.0));
        assert_eq!(sk.quantile(0.0).unwrap(), 0.0);
        assert_eq!(sk.quantile(1.0).unwrap(), 999.0);
    }

    #[test]
    fn memory_stays_bounded() {
        let mut sk = GkSketch::new(0.01).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200_000 {
            sk.observe(rng.random::<f64>());
        }
        // O((1/ε)·log(εn)) tuples; for ε = 0.01, n = 200k this is a few
        // hundred — assert an order-of-magnitude ceiling, not exactness.
        assert!(
            sk.tuple_count() < 2_000,
            "sketch grew to {} tuples",
            sk.tuple_count()
        );
    }

    #[test]
    fn non_finite_observations_ignored() {
        let mut sk = GkSketch::new(0.1).unwrap();
        sk.observe(f64::NAN);
        sk.observe(f64::INFINITY);
        sk.observe(1.0);
        assert_eq!(sk.count(), 1);
        let mut ex = ExactQuantiles::new();
        ex.observe(f64::NAN);
        ex.observe(2.0);
        assert_eq!(ex.count(), 1);
    }

    #[test]
    fn exact_store_matches_ecdf_quantiles() {
        let mut ex = ExactQuantiles::new();
        let data = [5.0, 1.0, 3.0, 2.0, 4.0];
        for &x in &data {
            ex.observe(x);
        }
        let ecdf = crate::Ecdf::new(data.to_vec()).unwrap();
        for q in [0.0, 0.2, 0.5, 0.8, 1.0] {
            assert_eq!(ex.quantile(q).unwrap(), ecdf.quantile(q));
        }
        assert_eq!(ex.rank_error(), 0.0);
    }

    #[test]
    fn sketch_cdf_brackets_empirical() {
        let mut sk = GkSketch::new(0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..20_000).map(|_| rng.random::<f64>()).collect();
        for &x in &data {
            sk.observe(x);
        }
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        for &x in &[0.1, 0.33, 0.5, 0.77, 0.95] {
            let fn_x = sorted.partition_point(|&v| v <= x) as f64 / n;
            let ft_x = sk.cdf(x);
            assert!(
                fn_x - ft_x >= -1e-12 && fn_x - ft_x <= 2.0 * 0.02 + 1e-9,
                "x={x}: Fn={fn_x} F̃={ft_x}"
            );
        }
    }

    #[test]
    fn streaming_ks_close_to_offline() {
        let eps = 0.01;
        let mut sk = GkSketch::new(eps).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<f64> = (0..30_000).map(|_| rng.random::<f64>()).collect();
        for &x in &data {
            sk.observe(x);
        }
        let cdf = |x: f64| x.clamp(0.0, 1.0);
        let offline = crate::ks::ks_one_sample(&data, cdf).unwrap();
        let streaming = ks_one_sample_sketch(&sk, cdf).unwrap();
        assert!(
            (streaming.statistic - offline.statistic).abs() <= 2.0 * eps + 1e-9,
            "stream D={} offline D={}",
            streaming.statistic,
            offline.statistic
        );
    }

    #[test]
    fn sample_store_exact_preserves_insertion_order() {
        let mut store = SampleStore::exact();
        for x in [3.0, 1.0, 2.0, f64::NAN] {
            store.push(x);
        }
        assert!(store.is_exact());
        assert_eq!(store.count(), 3);
        assert_eq!(store.fit_samples(), vec![3.0, 1.0, 2.0]);
        assert_eq!(store.rank_error(), 0.0);
    }

    #[test]
    fn sample_store_sketch_reconstructs_sorted_pseudo_sample() {
        let mut store = SampleStore::sketch(0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            store.push(rng.random::<f64>() * 100.0);
        }
        assert!(!store.is_exact());
        assert_eq!(store.rank_error(), 0.02);
        let samples = store.fit_samples();
        assert_eq!(samples.len(), PSEUDO_SAMPLE_CAP.min(10_000));
        assert!(samples.windows(2).all(|w| w[0] <= w[1]), "sorted output");
    }

    #[test]
    fn pseudo_sample_smaller_than_cap_for_tiny_streams() {
        let mut store = SampleStore::sketch(0.1).unwrap();
        for i in 0..5 {
            store.push(f64::from(i));
        }
        assert_eq!(store.fit_samples().len(), 5);
    }
}
