//! Special functions needed by the distribution implementations.
//!
//! Self-contained implementations of the handful of special functions the
//! fitting pipeline needs: `ln Γ`, digamma, the regularized incomplete gamma
//! function, the error function and its inverse. Accuracy targets are
//! ~1e-10 relative for `ln_gamma`/`erf` and ~1e-8 for the iterative ones,
//! which is far below the statistical noise of any fit on real samples.

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients), accurate to
/// about 1e-13 over the positive reals.
///
/// # Panics
///
/// Panics in debug builds if `x <= 0`.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence to push the argument above 6, then the asymptotic
/// series. Accurate to ~1e-12.
#[must_use]
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    // Recurrence ψ(x) = ψ(x+1) - 1/x until x >= 6.
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion.
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF of the gamma distribution with shape `a` and unit
/// scale. Uses the series expansion for `x < a + 1` and the continued
/// fraction for `x >= a + 1` (Numerical Recipes style).
///
/// Returns 0 for `x <= 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x) = 1 - P(a, x)`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function `erf(x)`, accurate to ~3e-7 absolute (Abramowitz & Stegun
/// 7.1.26 with an extra refinement pass via the complementary series for
/// large |x|). Sufficient for normal CDFs in fitting pipelines.
#[must_use]
pub fn erf(x: f64) -> f64 {
    // Use the incomplete gamma relation for full double precision:
    // erf(x) = P(1/2, x^2) for x >= 0.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    if ax == 0.0 {
        return 0.0;
    }
    if ax > 6.0 {
        return sign; // erf saturates well before 6.
    }
    sign * gamma_p(0.5, ax * ax)
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Inverse error function: returns `y` with `erf(y) = x`, for `x ∈ (-1, 1)`.
///
/// Uses Winitzki's initial approximation refined by two Newton steps;
/// accurate to ~1e-12 over the full domain.
///
/// # Panics
///
/// Panics in debug builds if `|x| >= 1`.
#[must_use]
pub fn erf_inv(x: f64) -> f64 {
    debug_assert!(x > -1.0 && x < 1.0, "erf_inv requires |x| < 1, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // Winitzki approximation.
    let a = 0.147;
    let ln1mx2 = (1.0 - x * x).ln();
    let term1 = 2.0 / (std::f64::consts::PI * a) + ln1mx2 / 2.0;
    let mut y = (((term1 * term1) - ln1mx2 / a).sqrt() - term1).sqrt();
    // Newton refinement: f(y) = erf(y) - x, f'(y) = 2/sqrt(pi) exp(-y^2).
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..3 {
        let err = erf(y) - x;
        let deriv = two_over_sqrt_pi * (-y * y).exp();
        if deriv == 0.0 {
            break;
        }
        y -= err / deriv;
    }
    sign * y
}

/// Standard normal CDF `Φ(x)`.
#[must_use]
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
#[must_use]
pub fn std_normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    std::f64::consts::SQRT_2 * erf_inv(2.0 * p - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + b.abs())
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = sqrt(pi)
        assert!(close(ln_gamma(1.0), 0.0, 1e-12));
        assert!(close(ln_gamma(2.0), 0.0, 1e-12));
        assert!(close(ln_gamma(5.0), 24f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
        // Γ(10) = 362880
        assert!(close(ln_gamma(10.0), 362_880f64.ln(), 1e-12));
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln Γ(x) + ln x
        for &x in &[0.3, 1.7, 4.2, 11.0, 33.3] {
            assert!(close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-11));
        }
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        let euler = 0.577_215_664_901_532_9;
        assert!(close(digamma(1.0), -euler, 1e-10));
        // ψ(1/2) = -γ - 2 ln 2
        assert!(close(digamma(0.5), -euler - 2.0 * 2f64.ln(), 1e-10));
        // Recurrence ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.7, 2.5, 9.1] {
            assert!(close(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10));
        }
    }

    #[test]
    fn gamma_p_matches_exponential_cdf() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn gamma_p_is_monotone_cdf() {
        let a = 2.5;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(a, x);
            assert!(p >= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert!(gamma_p(a, 1e6) > 1.0 - 1e-12);
        assert_eq!(gamma_p(a, 0.0), 0.0);
        assert_eq!(gamma_p(a, -5.0), 0.0);
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!(close(erf(1.0), 0.842_700_792_949_714_9, 1e-10));
        assert!(close(erf(2.0), 0.995_322_265_018_952_7, 1e-10));
        assert!(close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10));
        assert_eq!(erf(10.0), 1.0);
    }

    #[test]
    fn erf_inv_roundtrip() {
        for &x in &[-0.999, -0.9, -0.5, -0.01, 0.01, 0.3, 0.7, 0.95, 0.9999] {
            let y = erf_inv(x);
            assert!(close(erf(y), x, 1e-9), "x={x} y={y} erf(y)={}", erf(y));
        }
    }

    #[test]
    fn normal_cdf_and_quantile_roundtrip() {
        assert!(close(std_normal_cdf(0.0), 0.5, 1e-12));
        assert!(close(std_normal_cdf(1.96), 0.975, 1e-3));
        for &p in &[0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999] {
            let x = std_normal_quantile(p);
            assert!(close(std_normal_cdf(x), p, 1e-9));
        }
    }
}
