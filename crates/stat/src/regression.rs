//! Regression helpers for Keddah's traffic scaling laws.
//!
//! Keddah relates traffic volume (and flow counts) to job covariates —
//! input size, reducer count, replication factor. Two shapes cover what
//! the models need: ordinary least squares for linear relationships and a
//! log-log power law `y = a * x^b` for the input-size scaling of traffic
//! volume.

use serde::{Deserialize, Serialize};

use crate::{Result, StatError};

/// The result of an ordinary least squares fit `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 means a perfect fit).
    pub r_squared: f64,
}

impl Linear {
    /// Fits `y = intercept + slope * x` by least squares.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::EmptySample`] if fewer than two points are
    /// given or the lengths differ, [`StatError::InvalidParameter`] on
    /// non-finite input, and [`StatError::DegenerateSample`] if all `x`
    /// are identical.
    ///
    /// # Examples
    ///
    /// ```
    /// use keddah_stat::regression::Linear;
    ///
    /// let x = [1.0, 2.0, 3.0, 4.0];
    /// let y = [3.0, 5.0, 7.0, 9.0];
    /// let fit = Linear::fit(&x, &y).unwrap();
    /// assert!((fit.slope - 2.0).abs() < 1e-12);
    /// assert!((fit.intercept - 1.0).abs() < 1e-12);
    /// assert!(fit.r_squared > 0.999999);
    /// ```
    pub fn fit(x: &[f64], y: &[f64]) -> Result<Self> {
        if x.len() != y.len() || x.len() < 2 {
            return Err(StatError::EmptySample);
        }
        for &v in x.iter().chain(y.iter()) {
            if !v.is_finite() {
                return Err(StatError::InvalidParameter {
                    name: "point",
                    value: v,
                });
            }
        }
        let n = x.len() as f64;
        let mean_x = x.iter().sum::<f64>() / n;
        let mean_y = y.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for (&xi, &yi) in x.iter().zip(y) {
            let dx = xi - mean_x;
            let dy = yi - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return Err(StatError::DegenerateSample("all x values identical"));
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy == 0.0 {
            1.0 // y is constant and perfectly predicted by the intercept
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Ok(Linear {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Predicts `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// The result of a power-law fit `y = scale * x^exponent`, obtained by OLS
/// in log-log space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    /// Multiplicative scale `a`.
    pub scale: f64,
    /// Exponent `b`.
    pub exponent: f64,
    /// R² of the underlying log-log linear fit.
    pub r_squared: f64,
}

impl PowerLaw {
    /// Fits `y = a * x^b` by linear regression on `(ln x, ln y)`.
    ///
    /// # Errors
    ///
    /// As [`Linear::fit`], plus [`StatError::NonPositiveSample`] if any
    /// `x` or `y` is not strictly positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use keddah_stat::regression::PowerLaw;
    ///
    /// let x = [1.0, 2.0, 4.0, 8.0];
    /// let y: Vec<f64> = x.iter().map(|&v: &f64| 3.0 * v.powf(1.5)).collect();
    /// let fit = PowerLaw::fit(&x, &y).unwrap();
    /// assert!((fit.scale - 3.0).abs() < 1e-9);
    /// assert!((fit.exponent - 1.5).abs() < 1e-9);
    /// ```
    pub fn fit(x: &[f64], y: &[f64]) -> Result<Self> {
        for &v in x.iter().chain(y.iter()) {
            if v <= 0.0 {
                return Err(StatError::NonPositiveSample(v));
            }
        }
        let lx: Vec<f64> = x.iter().map(|&v| v.ln()).collect();
        let ly: Vec<f64> = y.iter().map(|&v| v.ln()).collect();
        let lin = Linear::fit(&lx, &ly)?;
        Ok(PowerLaw {
            scale: lin.intercept.exp(),
            exponent: lin.slope,
            r_squared: lin.r_squared,
        })
    }

    /// Predicts `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.scale * x.powf(self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_exact_fit() {
        let x = [0.0, 1.0, 2.0];
        let y = [1.0, 3.0, 5.0];
        let f = Linear::fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn linear_noisy_fit_r2() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&v| {
                5.0 * v
                    + 2.0
                    + if (v as usize).is_multiple_of(2) {
                        0.5
                    } else {
                        -0.5
                    }
            })
            .collect();
        let f = Linear::fit(&x, &y).unwrap();
        assert!((f.slope - 5.0).abs() < 0.01);
        assert!(f.r_squared > 0.999);
    }

    #[test]
    fn linear_rejects_degenerate() {
        assert!(Linear::fit(&[1.0], &[1.0]).is_err());
        assert!(Linear::fit(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(Linear::fit(&[1.0, 2.0], &[1.0]).is_err());
        assert!(Linear::fit(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn linear_constant_y() {
        let f = Linear::fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 4.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn power_law_roundtrip() {
        let x = [1.0, 2.0, 4.0, 8.0, 16.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| 0.5 * v.powf(2.0)).collect();
        let f = PowerLaw::fit(&x, &y).unwrap();
        assert!((f.scale - 0.5).abs() < 1e-9);
        assert!((f.exponent - 2.0).abs() < 1e-9);
        assert!((f.predict(32.0) - 512.0).abs() < 1e-6);
    }

    #[test]
    fn power_law_rejects_nonpositive() {
        assert!(PowerLaw::fit(&[0.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(PowerLaw::fit(&[1.0, 2.0], &[-1.0, 2.0]).is_err());
    }
}
