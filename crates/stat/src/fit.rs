//! Candidate-sweep fitting with model selection.
//!
//! This is the core of Keddah's modelling step: given a sample of flow
//! sizes (or inter-arrivals, or counts), fit every candidate family by
//! maximum likelihood, score each fit by both the KS statistic and AIC,
//! and keep the best. The winner is wrapped in [`FittedDist`], a
//! serializable enum that the Keddah model format stores and that can
//! regenerate synthetic values.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ad::ad_one_sample;
use crate::distributions::{
    Distribution, Empirical, Exponential, Gamma, LogLogistic, LogNormal, Normal, Pareto, Uniform,
    Weibull,
};
use crate::ks::{ks_one_sample, KsResult};
use crate::{Result, StatError};

/// A distribution family that can be entered into a candidate sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Candidate {
    /// [`Exponential`]
    Exponential,
    /// [`Uniform`]
    Uniform,
    /// [`Normal`]
    Normal,
    /// [`LogLogistic`]
    LogLogistic,
    /// [`LogNormal`]
    LogNormal,
    /// [`Weibull`]
    Weibull,
    /// [`Pareto`]
    Pareto,
    /// [`Gamma`]
    Gamma,
}

impl Candidate {
    /// Every supported family.
    pub const ALL: &'static [Candidate] = &[
        Candidate::Exponential,
        Candidate::Uniform,
        Candidate::Normal,
        Candidate::LogLogistic,
        Candidate::LogNormal,
        Candidate::Weibull,
        Candidate::Pareto,
        Candidate::Gamma,
    ];

    /// Families with positive support, the usual set for flow sizes and
    /// durations.
    pub const POSITIVE: &'static [Candidate] = &[
        Candidate::Exponential,
        Candidate::LogLogistic,
        Candidate::LogNormal,
        Candidate::Weibull,
        Candidate::Pareto,
        Candidate::Gamma,
    ];

    /// The number of free parameters, used by the AIC penalty.
    #[must_use]
    pub fn param_count(self) -> usize {
        match self {
            Candidate::Exponential => 1,
            _ => 2,
        }
    }

    /// The family's short lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Candidate::Exponential => "exponential",
            Candidate::Uniform => "uniform",
            Candidate::Normal => "normal",
            Candidate::LogLogistic => "loglogistic",
            Candidate::LogNormal => "lognormal",
            Candidate::Weibull => "weibull",
            Candidate::Pareto => "pareto",
            Candidate::Gamma => "gamma",
        }
    }

    /// Fits this family to `samples` by maximum likelihood.
    ///
    /// # Errors
    ///
    /// Propagates the family's `fit_mle` error (empty sample, support
    /// violation, degenerate data, no convergence).
    pub fn fit(self, samples: &[f64]) -> Result<FittedDist> {
        Ok(match self {
            Candidate::Exponential => FittedDist::Exponential(Exponential::fit_mle(samples)?),
            Candidate::Uniform => FittedDist::Uniform(Uniform::fit_mle(samples)?),
            Candidate::Normal => FittedDist::Normal(Normal::fit_mle(samples)?),
            Candidate::LogLogistic => FittedDist::LogLogistic(LogLogistic::fit_mle(samples)?),
            Candidate::LogNormal => FittedDist::LogNormal(LogNormal::fit_mle(samples)?),
            Candidate::Weibull => FittedDist::Weibull(Weibull::fit_mle(samples)?),
            Candidate::Pareto => FittedDist::Pareto(Pareto::fit_mle(samples)?),
            Candidate::Gamma => FittedDist::Gamma(Gamma::fit_mle(samples)?),
        })
    }
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fitted distribution of any supported family.
///
/// This enum is what Keddah models serialize: family tag plus parameters.
/// It implements [`Distribution`] by delegation so generated traffic can be
/// sampled from it directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "family", rename_all = "lowercase")]
pub enum FittedDist {
    /// An exponential fit.
    Exponential(Exponential),
    /// A uniform fit.
    Uniform(Uniform),
    /// A normal fit.
    Normal(Normal),
    /// A log-logistic fit.
    LogLogistic(LogLogistic),
    /// A log-normal fit.
    LogNormal(LogNormal),
    /// A Weibull fit.
    Weibull(Weibull),
    /// A Pareto fit.
    Pareto(Pareto),
    /// A gamma fit.
    Gamma(Gamma),
    /// An empirical quantile-table fallback (used when no parametric
    /// family fits acceptably).
    Empirical(Empirical),
}

macro_rules! delegate {
    ($self:ident, $d:ident => $body:expr) => {
        match $self {
            FittedDist::Exponential($d) => $body,
            FittedDist::Uniform($d) => $body,
            FittedDist::Normal($d) => $body,
            FittedDist::LogLogistic($d) => $body,
            FittedDist::LogNormal($d) => $body,
            FittedDist::Weibull($d) => $body,
            FittedDist::Pareto($d) => $body,
            FittedDist::Gamma($d) => $body,
            FittedDist::Empirical($d) => $body,
        }
    };
}

impl FittedDist {
    /// The parametric family this fit belongs to, or `None` for the
    /// empirical fallback (which is not a sweep candidate).
    #[must_use]
    pub fn candidate(&self) -> Option<Candidate> {
        match self {
            FittedDist::Exponential(_) => Some(Candidate::Exponential),
            FittedDist::Uniform(_) => Some(Candidate::Uniform),
            FittedDist::Normal(_) => Some(Candidate::Normal),
            FittedDist::LogLogistic(_) => Some(Candidate::LogLogistic),
            FittedDist::LogNormal(_) => Some(Candidate::LogNormal),
            FittedDist::Weibull(_) => Some(Candidate::Weibull),
            FittedDist::Pareto(_) => Some(Candidate::Pareto),
            FittedDist::Gamma(_) => Some(Candidate::Gamma),
            FittedDist::Empirical(_) => None,
        }
    }

    /// The family's short lowercase name (e.g. `"lognormal"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self.candidate() {
            Some(c) => c.name(),
            None => "empirical",
        }
    }

    /// The distribution of `factor * X`: every family is closed under
    /// positive scaling, so this returns the same family with adjusted
    /// parameters. Used by model extrapolation to stretch arrival
    /// processes to a predicted makespan.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> FittedDist {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        match self {
            FittedDist::Exponential(d) => FittedDist::Exponential(
                Exponential::new(d.rate() / factor).expect("scaled rate is valid"),
            ),
            FittedDist::Uniform(d) => FittedDist::Uniform(
                Uniform::new(d.low() * factor, d.high() * factor).expect("scaled bounds are valid"),
            ),
            FittedDist::Normal(d) => FittedDist::Normal(
                Normal::new(d.mu() * factor, d.sigma() * factor)
                    .expect("scaled parameters are valid"),
            ),
            FittedDist::LogLogistic(d) => FittedDist::LogLogistic(
                LogLogistic::new(d.alpha() * factor, d.beta())
                    .expect("scaled parameters are valid"),
            ),
            FittedDist::LogNormal(d) => FittedDist::LogNormal(
                LogNormal::new(d.mu() + factor.ln(), d.sigma())
                    .expect("scaled parameters are valid"),
            ),
            FittedDist::Weibull(d) => FittedDist::Weibull(
                Weibull::new(d.shape(), d.scale() * factor).expect("scaled scale is valid"),
            ),
            FittedDist::Pareto(d) => FittedDist::Pareto(
                Pareto::new(d.xm() * factor, d.alpha()).expect("scaled xm is valid"),
            ),
            FittedDist::Gamma(d) => FittedDist::Gamma(
                Gamma::new(d.shape(), d.scale() * factor).expect("scaled scale is valid"),
            ),
            FittedDist::Empirical(d) => FittedDist::Empirical(d.scaled(factor)),
        }
    }

    /// The fitted parameters as `(name, value)` pairs, for table output.
    #[must_use]
    pub fn params(&self) -> Vec<(&'static str, f64)> {
        match self {
            FittedDist::Exponential(d) => vec![("rate", d.rate())],
            FittedDist::Uniform(d) => vec![("low", d.low()), ("high", d.high())],
            FittedDist::Normal(d) => vec![("mu", d.mu()), ("sigma", d.sigma())],
            FittedDist::LogLogistic(d) => vec![("alpha", d.alpha()), ("beta", d.beta())],
            FittedDist::LogNormal(d) => vec![("mu", d.mu()), ("sigma", d.sigma())],
            FittedDist::Weibull(d) => vec![("shape", d.shape()), ("scale", d.scale())],
            FittedDist::Pareto(d) => vec![("xm", d.xm()), ("alpha", d.alpha())],
            FittedDist::Gamma(d) => vec![("shape", d.shape()), ("scale", d.scale())],
            FittedDist::Empirical(d) => vec![
                ("knots", d.knots().len() as f64),
                ("min", d.min()),
                ("max", d.max()),
            ],
        }
    }
}

impl Distribution for FittedDist {
    fn pdf(&self, x: f64) -> f64 {
        delegate!(self, d => d.pdf(x))
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        delegate!(self, d => d.ln_pdf(x))
    }
    fn cdf(&self, x: f64) -> f64 {
        delegate!(self, d => d.cdf(x))
    }
    fn quantile(&self, p: f64) -> f64 {
        delegate!(self, d => d.quantile(p))
    }
    fn mean(&self) -> f64 {
        delegate!(self, d => d.mean())
    }
    fn variance(&self) -> f64 {
        delegate!(self, d => d.variance())
    }
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        delegate!(self, d => d.sample(rng))
    }
}

impl std::fmt::Display for FittedDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        delegate!(self, d => write!(f, "{d}"))
    }
}

/// The score card for one fitted candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// The fitted distribution.
    pub dist: FittedDist,
    /// One-sample KS statistic against the data.
    pub ks_statistic: f64,
    /// Asymptotic KS p-value.
    pub ks_p_value: f64,
    /// Total log-likelihood of the data under the fit.
    pub log_likelihood: f64,
    /// Akaike information criterion: `2k - 2 ln L`.
    pub aic: f64,
}

/// How [`fit_best`]-style sweeps rank the surviving candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Smallest KS statistic wins (Keddah's headline criterion).
    #[default]
    KsStatistic,
    /// Smallest AIC wins.
    Aic,
    /// Smallest Anderson-Darling statistic wins (tail-weighted).
    AndersonDarling,
}

/// Fits every candidate in `candidates` and returns the score cards of all
/// that succeeded, sorted best-first by KS statistic.
///
/// Candidates whose support does not admit the sample (e.g. Pareto on
/// negative data) are silently skipped; they are not errors of the sweep.
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] for an empty sample, or
/// [`StatError::NoConvergence`] if *no* candidate could be fitted.
pub fn fit_all(samples: &[f64], candidates: &[Candidate]) -> Result<Vec<FitReport>> {
    if samples.is_empty() {
        return Err(StatError::EmptySample);
    }
    let mut reports = Vec::new();
    for &cand in candidates {
        let Ok(dist) = cand.fit(samples) else {
            continue;
        };
        let Ok(KsResult { statistic, p_value }) = ks_one_sample(samples, |x| dist.cdf(x)) else {
            continue;
        };
        if !statistic.is_finite() {
            continue;
        }
        let log_likelihood = dist.log_likelihood(samples);
        if !log_likelihood.is_finite() {
            continue;
        }
        let aic = 2.0 * cand.param_count() as f64 - 2.0 * log_likelihood;
        reports.push(FitReport {
            dist,
            ks_statistic: statistic,
            ks_p_value: p_value,
            log_likelihood,
            aic,
        });
    }
    if reports.is_empty() {
        return Err(StatError::NoConvergence("no candidate family fit"));
    }
    // total_cmp, not partial_cmp().expect(): a pathological fit must rank
    // last, never panic the sweep (non-finite statistics are filtered
    // above, but the ordering itself should be total regardless).
    reports.sort_by(|a, b| a.ks_statistic.total_cmp(&b.ks_statistic));
    Ok(reports)
}

/// Fits every candidate and returns the single best by KS statistic.
///
/// # Errors
///
/// Same as [`fit_all`].
pub fn fit_best(samples: &[f64], candidates: &[Candidate]) -> Result<FitReport> {
    Ok(fit_all(samples, candidates)?.remove(0))
}

/// Fits every candidate and selects by the given criterion.
///
/// # Errors
///
/// Same as [`fit_all`].
pub fn fit_select(
    samples: &[f64],
    candidates: &[Candidate],
    selection: Selection,
) -> Result<FitReport> {
    let mut reports = fit_all(samples, candidates)?;
    match selection {
        Selection::KsStatistic => {} // already sorted
        Selection::Aic => reports.sort_by(|a, b| a.aic.total_cmp(&b.aic)),
        Selection::AndersonDarling => {
            let mut scored: Vec<(f64, FitReport)> = reports
                .into_iter()
                .map(|r| {
                    let a2 = ad_one_sample(samples, |x| r.dist.cdf(x))
                        .map(|a| a.statistic)
                        .unwrap_or(f64::INFINITY);
                    (a2, r)
                })
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            return Ok(scored.remove(0).1);
        }
    }
    Ok(reports.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_each_family() {
        let cases: Vec<(FittedDist, &str)> = vec![
            (
                FittedDist::Exponential(Exponential::new(2.0).unwrap()),
                "exponential",
            ),
            (
                FittedDist::LogNormal(LogNormal::new(1.0, 0.7).unwrap()),
                "lognormal",
            ),
            (FittedDist::Pareto(Pareto::new(1.0, 1.8).unwrap()), "pareto"),
        ];
        for (truth, name) in cases {
            let xs = draw(&truth, 4000, 21);
            // The true family should rank near the top of the sweep.
            // (Exponential is a special case of Weibull and Gamma, so exact
            // first place is not guaranteed for it.)
            let all = fit_all(&xs, Candidate::ALL).unwrap();
            let truth_rank = all
                .iter()
                .position(|r| r.dist.name() == name)
                .expect("true family fitted");
            assert!(
                truth_rank <= 2,
                "{name} ranked {truth_rank} in {:?}",
                all.iter().map(|r| r.dist.name()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sweep_skips_unsupported_candidates() {
        // Negative data: positive-support families must be skipped, normal
        // and uniform still fit.
        let xs: Vec<f64> = (-100..100).map(|i| i as f64 / 10.0).collect();
        let reports = fit_all(&xs, Candidate::ALL).unwrap();
        assert!(reports.iter().all(|r| {
            matches!(
                r.dist.candidate(),
                Some(Candidate::Normal | Candidate::Uniform)
            )
        }));
        assert!(!reports.is_empty());
    }

    #[test]
    fn empty_sample_errors() {
        assert!(matches!(
            fit_all(&[], Candidate::ALL),
            Err(StatError::EmptySample)
        ));
    }

    #[test]
    fn degenerate_constant_sample_never_panics() {
        // A constant sample defeats most parametric families; whatever
        // survives the sweep must come back as a finite-scored report or a
        // typed error — never a panic from comparing non-finite scores.
        let xs = vec![128.0; 64];
        match fit_all(&xs, Candidate::ALL) {
            Ok(reports) => {
                assert!(!reports.is_empty());
                assert!(reports.iter().all(|r| r.ks_statistic.is_finite()));
            }
            Err(e) => assert!(matches!(
                e,
                StatError::NoConvergence(_) | StatError::DegenerateSample(_)
            )),
        }
    }

    #[test]
    fn aic_selection_can_differ_from_ks() {
        let truth = LogNormal::new(0.0, 1.0).unwrap();
        let xs = draw(&truth, 3000, 22);
        let by_ks = fit_select(&xs, Candidate::ALL, Selection::KsStatistic).unwrap();
        let by_aic = fit_select(&xs, Candidate::ALL, Selection::Aic).unwrap();
        // Both should identify lognormal here (it's the truth).
        assert_eq!(by_ks.dist.name(), "lognormal");
        assert_eq!(by_aic.dist.name(), "lognormal");
    }

    #[test]
    fn fitted_dist_serde_roundtrip() {
        let d = FittedDist::Weibull(Weibull::new(1.5, 2.5).unwrap());
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("weibull"));
        let back: FittedDist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn params_report_is_complete() {
        let d = FittedDist::Normal(Normal::new(1.0, 2.0).unwrap());
        let params = d.params();
        assert_eq!(params, vec![("mu", 1.0), ("sigma", 2.0)]);
        assert_eq!(d.name(), "normal");
    }

    #[test]
    fn scaled_distributions_scale_quantiles() {
        use crate::distributions::Empirical;
        let dists = vec![
            FittedDist::Exponential(Exponential::new(2.0).unwrap()),
            FittedDist::Uniform(Uniform::new(1.0, 3.0).unwrap()),
            FittedDist::Normal(Normal::new(5.0, 1.0).unwrap()),
            FittedDist::LogLogistic(LogLogistic::new(3.0, 2.0).unwrap()),
            FittedDist::LogNormal(LogNormal::new(1.0, 0.5).unwrap()),
            FittedDist::Weibull(Weibull::new(1.5, 2.0).unwrap()),
            FittedDist::Pareto(Pareto::new(1.0, 2.5).unwrap()),
            FittedDist::Gamma(Gamma::new(2.0, 1.0).unwrap()),
            FittedDist::Empirical(Empirical::fit(&[1.0, 2.0, 3.0, 4.0]).unwrap()),
        ];
        for d in dists {
            let s = d.scaled(3.0);
            for &q in &[0.1, 0.5, 0.9] {
                let expect = d.quantile(q) * 3.0;
                let got = s.quantile(q);
                assert!(
                    (got - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                    "{}: q{q}: {got} vs {expect}",
                    d.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_nonpositive_factor() {
        let d = FittedDist::Exponential(Exponential::new(1.0).unwrap());
        let _ = d.scaled(0.0);
    }

    #[test]
    fn anderson_darling_selection_works() {
        let truth = LogNormal::new(0.5, 0.8).unwrap();
        let xs = draw(&truth, 3000, 77);
        let by_ad = fit_select(&xs, Candidate::POSITIVE, Selection::AndersonDarling).unwrap();
        assert_eq!(by_ad.dist.name(), "lognormal");
    }

    #[test]
    fn reports_sorted_by_ks() {
        let truth = Exponential::new(1.0).unwrap();
        let xs = draw(&truth, 2000, 23);
        let reports = fit_all(&xs, Candidate::ALL).unwrap();
        for w in reports.windows(2) {
            assert!(w[0].ks_statistic <= w[1].ks_statistic);
        }
    }
}
