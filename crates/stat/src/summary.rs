//! Streaming moment summaries.

use serde::{Deserialize, Serialize};

/// A running summary of a stream of values: count, mean, variance, min,
/// max, and total.
///
/// Uses Welford's online algorithm so it is numerically stable and can be
/// updated one value at a time — the Hadoop simulator feeds per-flow byte
/// counts through this without buffering.
///
/// # Examples
///
/// ```
/// use keddah_stat::Summary;
///
/// let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.sum(), 12.0);
/// assert!((s.variance() - 8.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 if fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value; `+inf` if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value; `-inf` if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4} sum={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min,
            self.max,
            self.sum
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn basic_moments() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.sum(), 15.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a: Summary = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let b: Summary = (500..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0].into_iter().collect();
        assert!(format!("{s}").contains("n=1"));
    }
}
