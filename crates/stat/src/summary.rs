//! Streaming moment summaries.

use serde::{Deserialize, Serialize};

/// A running summary of a stream of values: count, mean, variance, min,
/// max, and total.
///
/// Uses Welford's online algorithm so it is numerically stable and can be
/// updated one value at a time — the Hadoop simulator feeds per-flow byte
/// counts through this without buffering.
///
/// # Examples
///
/// ```
/// use keddah_stat::Summary;
///
/// let s: Summary = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.sum(), 12.0);
/// assert!((s.variance() - 8.0 / 3.0).abs() < 1e-12);
/// ```
/// An empty summary reports degenerate statistics as documented finite
/// values — [`Summary::min`]/[`Summary::max`] are `None`,
/// [`Summary::variance`]/[`Summary::std_dev`] are `0.0` below two
/// observations — and its JSON form never contains the internal
/// `±inf` running sentinels (see the manual `Serialize` impl), so
/// report artefacts stay plain finite numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

// Hand-written (de)serialization: the running `min`/`max` fields hold
// `+inf`/`-inf` sentinels while the summary is empty, and those must not
// leak into JSON artefacts (the vendored serde would render them as the
// strings "inf"/"-inf"). An empty summary serializes min/max as 0.0 and
// restores the sentinels on the way back in, so a round-tripped summary
// still merges correctly.
impl Serialize for Summary {
    fn to_value(&self) -> serde::Value {
        let (min, max) = if self.count == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        serde::Value::Object(vec![
            ("count".to_string(), self.count.to_value()),
            ("mean".to_string(), self.mean.to_value()),
            ("m2".to_string(), self.m2.to_value()),
            ("min".to_string(), min.to_value()),
            ("max".to_string(), max.to_value()),
            ("sum".to_string(), self.sum.to_value()),
        ])
    }
}

impl Deserialize for Summary {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(entries) = value else {
            return Err(serde::Error::expected("Summary object", value));
        };
        let mut s = Summary {
            count: serde::de_field(entries, "count", "Summary")?,
            mean: serde::de_field(entries, "mean", "Summary")?,
            m2: serde::de_field(entries, "m2", "Summary")?,
            min: serde::de_field(entries, "min", "Summary")?,
            max: serde::de_field(entries, "max", "Summary")?,
            sum: serde::de_field(entries, "sum", "Summary")?,
        };
        if s.count == 0 {
            s.min = f64::INFINITY;
            s.max = f64::NEG_INFINITY;
        }
        Ok(s)
    }
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    ///
    /// With fewer than two observations there is no spread to estimate,
    /// so this is defined as `0.0` — never `NaN`:
    ///
    /// ```
    /// use keddah_stat::Summary;
    ///
    /// assert_eq!(Summary::new().variance(), 0.0);
    /// let one: Summary = [7.0].into_iter().collect();
    /// assert_eq!(one.variance(), 0.0);
    /// ```
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation; `0.0` below two observations, like
    /// [`Summary::variance`].
    ///
    /// ```
    /// use keddah_stat::Summary;
    ///
    /// assert_eq!(Summary::new().std_dev(), 0.0);
    /// ```
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observed value; `None` if empty (the internal `+inf`
    /// running sentinel never escapes).
    ///
    /// ```
    /// use keddah_stat::Summary;
    ///
    /// assert_eq!(Summary::new().min(), None);
    /// let s: Summary = [3.0, 1.0].into_iter().collect();
    /// assert_eq!(s.min(), Some(1.0));
    /// ```
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observed value; `None` if empty (the internal `-inf`
    /// running sentinel never escapes).
    ///
    /// ```
    /// use keddah_stat::Summary;
    ///
    /// assert_eq!(Summary::new().max(), None);
    /// let s: Summary = [3.0, 1.0].into_iter().collect();
    /// assert_eq!(s.max(), Some(3.0));
    /// ```
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bound = |b: Option<f64>| b.map_or_else(|| "-".to_string(), |v| format!("{v:.4}"));
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={} max={} sum={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            bound(self.min()),
            bound(self.max()),
            self.sum
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn empty_summary_serializes_finite_and_roundtrips() {
        // The ±inf running sentinels must never reach JSON artefacts.
        let json = serde::json::write_compact(&Summary::new().to_value());
        assert!(!json.contains("inf"), "sentinel leaked: {json}");
        assert!(json.contains("\"min\":0"), "{json}");
        let value = serde::json::parse(&json).unwrap();
        let mut back = Summary::from_value(&value).unwrap();
        assert_eq!(back, Summary::new());
        // The restored sentinels still merge correctly.
        back.merge(&[5.0].into_iter().collect());
        assert_eq!(back.min(), Some(5.0));
        assert_eq!(back.max(), Some(5.0));
    }

    #[test]
    fn populated_summary_roundtrips() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let json = serde::json::write_compact(&s.to_value());
        let back = Summary::from_value(&serde::json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn basic_moments() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 2.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.sum(), 15.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a: Summary = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let b: Summary = (500..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0].into_iter().collect();
        assert!(format!("{s}").contains("n=1"));
        let empty = format!("{}", Summary::new());
        assert!(empty.contains("min=- max=-"), "{empty}");
        assert!(!empty.contains("inf"), "{empty}");
    }
}
