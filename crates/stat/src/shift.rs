//! Distribution-shift scoring between a baseline and a degraded sample.
//!
//! Fault fingerprinting (`keddah-diagnose`) asks, per traffic component:
//! *did this dimension's distribution move, and by how much?* The answer
//! is a two-sample Kolmogorov–Smirnov comparison plus the first-moment
//! ratio, wrapped in a serializable [`ShiftScore`]. Small samples go
//! through the exact [`crate::ks::ks_two_sample`]; past
//! [`EXACT_SHIFT_CAP`] observations per side the comparison switches to
//! Greenwald–Khanna sketches and [`ks_two_sample_sketch`], the
//! two-sample sibling of the streaming one-sample test from the serve
//! path — its statistic is within `2(ε_a + ε_b)` of the exact one, so a
//! diagnosis over a million-flow trace costs sketch memory, not a sort
//! of the world.

use crate::ks::{kolmogorov_sf, ks_two_sample, KsResult};
use crate::sketch::{GkSketch, StreamingQuantiles};
use crate::{Result, StatError};

/// Per-side sample size above which [`shift_between`] switches from the
/// exact two-sample KS to the sketched one.
pub const EXACT_SHIFT_CAP: usize = 4096;

/// Rank-error parameter used for the sketched comparison; the KS
/// statistic is then within `4ε = 0.02` of exact — far below any
/// decision threshold a fingerprint rule uses.
pub const SHIFT_SKETCH_EPS: f64 = 0.005;

/// The outcome of comparing one dimension across two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftScore {
    /// Baseline sample size.
    pub n_baseline: u64,
    /// Degraded sample size.
    pub n_degraded: u64,
    /// Two-sample KS statistic `sup |F_base - F_degraded|`.
    pub ks: f64,
    /// Asymptotic p-value of the KS statistic.
    pub p_value: f64,
    /// Baseline sample mean.
    pub mean_baseline: f64,
    /// Degraded sample mean.
    pub mean_degraded: f64,
}

impl ShiftScore {
    /// Degraded-over-baseline mean ratio; 1.0 when the baseline mean is
    /// zero or non-finite (no inflation claim possible).
    #[must_use]
    pub fn mean_ratio(&self) -> f64 {
        if self.mean_baseline > 0.0 && self.mean_baseline.is_finite() {
            let r = self.mean_degraded / self.mean_baseline;
            if r.is_finite() {
                return r;
            }
        }
        1.0
    }

    /// True when the shift is statistically significant at `alpha` and
    /// the distance exceeds `min_ks` — the gate fingerprint rules use
    /// so run-to-run noise on small samples never reads as a fault.
    #[must_use]
    pub fn significant(&self, min_ks: f64, alpha: f64) -> bool {
        self.ks >= min_ks && self.p_value <= alpha
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Two-sample KS between two GK sketches.
///
/// Both step CDFs are evaluated exactly at the union of the sketches'
/// supports (where any supremum over step functions is attained), so the
/// only error is each sketch's own CDF error: the returned statistic is
/// within `2(ε_a + ε_b)` of the exact two-sample statistic on the
/// underlying streams.
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] when either sketch is empty.
pub fn ks_two_sample_sketch(a: &GkSketch, b: &GkSketch) -> Result<KsResult> {
    if a.count() == 0 || b.count() == 0 {
        return Err(StatError::EmptySample);
    }
    let mut support = a.support();
    support.extend(b.support());
    support.sort_by(f64::total_cmp);
    support.dedup();
    let mut d: f64 = 0.0;
    for &x in &support {
        d = d.max((a.cdf(x) - b.cdf(x)).abs());
    }
    let (na, nb) = (a.count() as f64, b.count() as f64);
    let ne = (na * nb) / (na + nb);
    let p_value = kolmogorov_sf(d * (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()));
    Ok(KsResult {
        statistic: d,
        p_value,
    })
}

/// Scores the distribution shift from `baseline` to `degraded`.
///
/// Non-finite observations are dropped (a diagnosis input is historical
/// artefact data, not a place to panic). Samples up to
/// [`EXACT_SHIFT_CAP`] per side use the exact two-sample KS; larger ones
/// stream both sides through [`SHIFT_SKETCH_EPS`] GK sketches.
///
/// # Errors
///
/// Returns [`StatError::EmptySample`] when either side has no finite
/// observation.
pub fn shift_between(baseline: &[f64], degraded: &[f64]) -> Result<ShiftScore> {
    let base: Vec<f64> = baseline.iter().copied().filter(|x| x.is_finite()).collect();
    let deg: Vec<f64> = degraded.iter().copied().filter(|x| x.is_finite()).collect();
    if base.is_empty() || deg.is_empty() {
        return Err(StatError::EmptySample);
    }
    let ks = if base.len() <= EXACT_SHIFT_CAP && deg.len() <= EXACT_SHIFT_CAP {
        ks_two_sample(&base, &deg)?
    } else {
        let mut sa = GkSketch::new(SHIFT_SKETCH_EPS)?;
        let mut sb = GkSketch::new(SHIFT_SKETCH_EPS)?;
        for &x in &base {
            sa.observe(x);
        }
        for &x in &deg {
            sb.observe(x);
        }
        ks_two_sample_sketch(&sa, &sb)?
    };
    Ok(ShiftScore {
        n_baseline: base.len() as u64,
        n_degraded: deg.len() as u64,
        ks: ks.statistic,
        p_value: ks.p_value,
        mean_baseline: mean(&base),
        mean_degraded: mean(&deg),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_samples_score_zero_shift() {
        let xs: Vec<f64> = (0..500).map(f64::from).collect();
        let s = shift_between(&xs, &xs).unwrap();
        assert_eq!(s.ks, 0.0);
        assert!((s.mean_ratio() - 1.0).abs() < 1e-12);
        assert!(!s.significant(0.05, 0.05));
    }

    #[test]
    fn inflated_sample_scores_large_shift() {
        let base: Vec<f64> = (1..400).map(f64::from).collect();
        let deg: Vec<f64> = base.iter().map(|x| x * 2.0).collect();
        let s = shift_between(&base, &deg).unwrap();
        assert!(s.ks > 0.3, "ks = {}", s.ks);
        assert!(s.significant(0.1, 0.01));
        assert!((s.mean_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_observations_are_dropped_not_fatal() {
        let base = vec![1.0, f64::NAN, 2.0, 3.0];
        let deg = vec![1.0, 2.0, f64::INFINITY, 3.0];
        let s = shift_between(&base, &deg).unwrap();
        assert_eq!(s.n_baseline, 3);
        assert_eq!(s.n_degraded, 3);
        assert_eq!(s.ks, 0.0);
    }

    #[test]
    fn empty_sides_error_not_panic() {
        assert!(matches!(
            shift_between(&[], &[1.0]),
            Err(StatError::EmptySample)
        ));
        assert!(matches!(
            shift_between(&[f64::NAN], &[1.0]),
            Err(StatError::EmptySample)
        ));
    }

    #[test]
    fn sketched_path_tracks_exact_within_bound() {
        // Push both sides past EXACT_SHIFT_CAP so shift_between takes
        // the sketch path, and check it against the exact statistic.
        let mut rng = StdRng::seed_from_u64(77);
        let base: Vec<f64> = (0..6000).map(|_| rng.random_range(0.0..1.0)).collect();
        let deg: Vec<f64> = (0..6000)
            .map(|_| rng.random_range(0.0..1.0) + 0.2)
            .collect();
        let sketched = shift_between(&base, &deg).unwrap();
        let exact = ks_two_sample(&base, &deg).unwrap();
        let bound = 4.0 * SHIFT_SKETCH_EPS + 1e-9;
        assert!(
            (sketched.ks - exact.statistic).abs() <= bound,
            "sketched {} vs exact {}",
            sketched.ks,
            exact.statistic
        );
    }

    #[test]
    fn sketch_two_sample_rejects_empty() {
        let empty = GkSketch::new(0.01).unwrap();
        let mut full = GkSketch::new(0.01).unwrap();
        full.observe(1.0);
        assert!(ks_two_sample_sketch(&empty, &full).is_err());
    }

    #[test]
    fn mean_ratio_guards_zero_baseline() {
        let s = ShiftScore {
            n_baseline: 1,
            n_degraded: 1,
            ks: 0.0,
            p_value: 1.0,
            mean_baseline: 0.0,
            mean_degraded: 5.0,
        };
        assert_eq!(s.mean_ratio(), 1.0);
    }
}
