//! Statistical substrate for the Keddah toolchain.
//!
//! Keddah builds *empirical traffic models*: it takes per-flow samples
//! captured from a Hadoop cluster and fits parametric distributions to them,
//! selecting the best-fitting family per traffic component. This crate
//! provides everything that pipeline needs, self-contained:
//!
//! * [`distributions`] — seven continuous families (exponential, uniform,
//!   normal, log-normal, Weibull, Pareto, gamma) with pdf/cdf/quantile,
//!   moments, maximum-likelihood fitting, and inverse-transform sampling;
//! * [`Ecdf`] — empirical CDFs and quantiles;
//! * [`Summary`] — running moment summaries;
//! * [`ks`] — one- and two-sample Kolmogorov–Smirnov tests;
//! * [`fit`] — candidate sweeps with KS/AIC model selection, producing a
//!   serializable [`fit::FittedDist`] that the Keddah model format embeds;
//! * [`sketch`] — bounded-memory streaming quantiles (Greenwald–Khanna)
//!   and a streaming KS test with provable error bounds, the online
//!   counterpart of the sort-the-world path;
//! * [`regression`] — ordinary least squares and power-law scaling fits used
//!   for the traffic-vs-input-size scaling laws.
//!
//! # Examples
//!
//! Fit a distribution to samples and pick the best family:
//!
//! ```
//! use keddah_stat::fit::{fit_best, Candidate};
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//! use keddah_stat::distributions::{Distribution, LogNormal};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let truth = LogNormal::new(2.0, 0.5).unwrap();
//! let samples: Vec<f64> = (0..2000).map(|_| truth.sample(&mut rng)).collect();
//! let report = fit_best(&samples, Candidate::ALL).unwrap();
//! assert_eq!(report.dist.name(), "lognormal");
//! ```

pub mod ad;
pub mod distributions;
mod ecdf;
pub mod fit;
pub mod ks;
pub mod regression;
pub mod series;
pub mod shift;
pub mod sketch;
pub mod special;
mod summary;

pub use ecdf::Ecdf;
pub use summary::Summary;

use std::fmt;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatError {
    /// The input sample was empty (or too small for the operation).
    EmptySample,
    /// The operation requires strictly positive samples but found one ≤ 0.
    NonPositiveSample(f64),
    /// A distribution parameter was out of its valid range.
    InvalidParameter {
        /// The parameter name, e.g. `"shape"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An iterative fit failed to converge.
    NoConvergence(&'static str),
    /// The sample was degenerate (e.g. zero variance where spread is needed).
    DegenerateSample(&'static str),
}

impl fmt::Display for StatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatError::EmptySample => write!(f, "sample is empty or too small"),
            StatError::NonPositiveSample(v) => {
                write!(f, "sample contains non-positive value {v}")
            }
            StatError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            StatError::NoConvergence(what) => write!(f, "iteration did not converge: {what}"),
            StatError::DegenerateSample(what) => write!(f, "degenerate sample: {what}"),
        }
    }
}

impl std::error::Error for StatError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatError>;
