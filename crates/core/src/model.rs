//! The Keddah traffic model schema.
//!
//! A [`KeddahModel`] is the paper's central artefact: a compact,
//! serializable statistical description of the traffic one job
//! configuration produces, sufficient to *regenerate* statistically
//! equivalent traffic without re-running Hadoop. Per traffic component it
//! stores the fitted flow-size distribution, the flow start-time (arrival)
//! distribution, a per-job flow-count model and the communication pattern;
//! job-level it stores the covariates it was trained on and the makespan
//! statistics.

use std::collections::BTreeMap;

use keddah_flowcap::Component;
use keddah_stat::fit::FittedDist;
use serde::{Deserialize, Serialize};

/// Mean/standard-deviation pair for per-job scalar quantities (flow
/// counts, makespans) that are sampled per generated job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarModel {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for single-run datasets).
    pub std: f64,
}

impl ScalarModel {
    /// Estimates mean/std from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> ScalarModel {
        assert!(!samples.is_empty(), "scalar model needs samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n;
        ScalarModel {
            mean,
            std: var.sqrt(),
        }
    }
}

/// The who-talks-to-whom structure of a component's flows, used when
/// regenerating traffic onto a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EndpointPattern {
    /// Uniformly random distinct worker pair (HDFS reads: client ↔ a
    /// replica holder).
    RandomPair,
    /// Many sources into a small set of `reducers` sinks (shuffle
    /// in-cast).
    ManyToFew,
    /// Chains between random workers (replication pipeline hops).
    PipelineHop,
    /// Worker to the master node (control RPCs and heartbeats).
    ToMaster,
}

impl EndpointPattern {
    /// The pattern Keddah assigns to each traffic component.
    #[must_use]
    pub fn for_component(component: Component) -> EndpointPattern {
        match component {
            Component::HdfsRead => EndpointPattern::RandomPair,
            Component::HdfsWrite => EndpointPattern::PipelineHop,
            Component::Shuffle => EndpointPattern::ManyToFew,
            Component::Control => EndpointPattern::ToMaster,
            Component::Other => EndpointPattern::RandomPair,
            // Broadcast fans a small payload into every consumer task —
            // the same few-sink in-cast shape as a shuffle.
            Component::Broadcast => EndpointPattern::ManyToFew,
        }
    }
}

/// Goodness-of-fit metadata kept alongside each fitted distribution
/// (what Table 2 of the evaluation reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitQuality {
    /// One-sample KS statistic of the chosen family against the data.
    pub ks_statistic: f64,
    /// Asymptotic KS p-value.
    pub ks_p_value: f64,
    /// Number of samples the fit saw.
    pub samples: u64,
}

/// The traffic model for one component of one job configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentModel {
    /// Fitted flow-size distribution (bytes).
    pub size_dist: FittedDist,
    /// Goodness of fit of `size_dist`.
    pub size_fit: FitQuality,
    /// Fitted flow start-time distribution (seconds from job start).
    pub start_dist: FittedDist,
    /// Goodness of fit of `start_dist`.
    pub start_fit: FitQuality,
    /// Flows per job.
    pub count: ScalarModel,
    /// Communication pattern for endpoint synthesis.
    pub pattern: EndpointPattern,
}

/// A complete Keddah traffic model for one `(workload, input size,
/// configuration)` point.
///
/// Serializes to JSON via [`KeddahModel::to_json`] — the on-disk model
/// format the toolchain exchanges with simulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeddahModel {
    /// Model format version.
    pub version: u32,
    /// Workload name.
    pub workload: String,
    /// Input size the model was trained at, bytes.
    pub input_bytes: u64,
    /// Reducer count the model was trained at.
    pub reducers: u32,
    /// Replication factor the model was trained at.
    pub replication: u16,
    /// Block size the model was trained at, bytes.
    pub block_bytes: u64,
    /// Worker count of the training cluster.
    pub nodes: u32,
    /// Runs pooled into the model.
    pub runs: usize,
    /// Job makespan statistics, seconds.
    pub makespan: ScalarModel,
    /// Per-component traffic models.
    pub components: BTreeMap<Component, ComponentModel>,
}

/// Current model format version.
pub const MODEL_VERSION: u32 = 1;

impl KeddahModel {
    /// The model for one component, if the component produced enough
    /// traffic to model.
    #[must_use]
    pub fn component(&self, component: Component) -> Option<&ComponentModel> {
        self.components.get(&component)
    }

    /// Expected total bytes per job: `sum over components of
    /// mean_count * mean_size`.
    #[must_use]
    pub fn expected_job_bytes(&self) -> f64 {
        use keddah_stat::distributions::Distribution;
        self.components
            .values()
            .map(|c| {
                let mean = c.size_dist.mean();
                if mean.is_finite() {
                    c.count.mean * mean
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Serializes the model to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model serializes")
    }

    /// Parses a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::Json`] on malformed input or a version
    /// mismatch.
    pub fn from_json(json: &str) -> crate::Result<KeddahModel> {
        let model: KeddahModel =
            serde_json::from_str(json).map_err(|e| crate::CoreError::Json(e.to_string()))?;
        if model.version != MODEL_VERSION {
            return Err(crate::CoreError::Json(format!(
                "unsupported model version {} (expected {MODEL_VERSION})",
                model.version
            )));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keddah_stat::distributions::{Exponential, LogNormal};

    fn sample_model() -> KeddahModel {
        let size_dist = FittedDist::LogNormal(LogNormal::new(10.0, 1.0).unwrap());
        let start_dist = FittedDist::Exponential(Exponential::new(0.1).unwrap());
        let quality = FitQuality {
            ks_statistic: 0.05,
            ks_p_value: 0.4,
            samples: 100,
        };
        let mut components = BTreeMap::new();
        components.insert(
            Component::Shuffle,
            ComponentModel {
                size_dist,
                size_fit: quality,
                start_dist,
                start_fit: quality,
                count: ScalarModel {
                    mean: 64.0,
                    std: 4.0,
                },
                pattern: EndpointPattern::ManyToFew,
            },
        );
        KeddahModel {
            version: MODEL_VERSION,
            workload: "terasort".into(),
            input_bytes: 1 << 30,
            reducers: 8,
            replication: 3,
            block_bytes: 128 << 20,
            nodes: 16,
            runs: 10,
            makespan: ScalarModel {
                mean: 120.0,
                std: 8.0,
            },
            components,
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = sample_model();
        let json = m.to_json();
        assert!(json.contains("lognormal"));
        assert!(json.contains("shuffle"));
        let back = KeddahModel::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut m = sample_model();
        m.version = 99;
        let err = KeddahModel::from_json(&m.to_json()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn scalar_model_from_samples() {
        let s = ScalarModel::from_samples(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert!((s.std - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn expected_bytes_uses_count_times_mean() {
        let m = sample_model();
        use keddah_stat::distributions::Distribution;
        let mean_size = m.components[&Component::Shuffle].size_dist.mean();
        assert!((m.expected_job_bytes() - 64.0 * mean_size).abs() < 1e-6);
    }

    #[test]
    fn patterns_match_components() {
        assert_eq!(
            EndpointPattern::for_component(Component::Shuffle),
            EndpointPattern::ManyToFew
        );
        assert_eq!(
            EndpointPattern::for_component(Component::Control),
            EndpointPattern::ToMaster
        );
    }
}
