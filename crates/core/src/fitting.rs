//! Fitting Keddah models from datasets.
//!
//! For each traffic component with enough flows, fit the positive-support
//! candidate families to the flow sizes and all families to the start
//! times, select by KS statistic, and record the goodness of fit.

use keddah_flowcap::Component;
use keddah_stat::distributions::{Distribution, Empirical};
use keddah_stat::fit::{fit_best, Candidate, FittedDist};
use keddah_stat::ks::ks_one_sample;

use crate::dataset::{ComponentSample, Dataset};
use crate::model::{
    ComponentModel, EndpointPattern, FitQuality, KeddahModel, ScalarModel, MODEL_VERSION,
};
use crate::{CoreError, Result};

/// Minimum pooled flows a component needs before Keddah will model it.
/// Below this, a parametric fit is noise.
pub const MIN_FLOWS: usize = 8;

/// KS distance above which the best parametric family is rejected in
/// favour of the empirical quantile-table model. Hadoop components with
/// near-deterministic sizes (block-sized HDFS transfers) routinely defeat
/// smooth families; the empirical fallback is what makes the models,
/// in the paper's words, *empirical* traffic models.
pub const EMPIRICAL_FALLBACK_KS: f64 = 0.12;

/// Fits a [`KeddahModel`] from a dataset.
///
/// Components with fewer than [`MIN_FLOWS`] pooled flows are skipped (a
/// model does not have to contain every component; Grep has essentially
/// no shuffle). At least one component must survive.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientData`] if no component can be
/// modelled, or [`CoreError::Stat`] if fitting fails on a component that
/// had enough flows.
pub fn fit_model(dataset: &Dataset) -> Result<KeddahModel> {
    let mut components = std::collections::BTreeMap::new();
    for (&component, sample) in &dataset.components {
        if sample.sizes.len() < MIN_FLOWS {
            continue;
        }
        let model = fit_component(component, sample)?;
        components.insert(component, model);
    }
    if components.is_empty() {
        return Err(CoreError::InsufficientData {
            what: "no component had enough flows to model",
        });
    }
    Ok(KeddahModel {
        version: MODEL_VERSION,
        workload: dataset.workload.clone(),
        input_bytes: dataset.input_bytes,
        reducers: dataset.reducers,
        replication: dataset.replication,
        block_bytes: dataset.block_bytes,
        nodes: dataset.nodes,
        runs: dataset.runs,
        makespan: ScalarModel::from_samples(&dataset.makespans),
        components,
    })
}

/// Fits one component's size, arrival and count models.
fn fit_component(component: Component, sample: &ComponentSample) -> Result<ComponentModel> {
    let (size_dist, size_fit) = fit_with_fallback(&sample.sizes, Candidate::POSITIVE)?;

    // Start times include zeros (the first flow of each run), which
    // positive-support families reject; shift by a nanosecond-scale
    // epsilon and let every family compete.
    let starts: Vec<f64> = sample.starts.iter().map(|&s| s + 1e-9).collect();
    let (start_dist, start_fit) = fit_with_fallback(&starts, Candidate::ALL)?;

    Ok(ComponentModel {
        size_dist,
        size_fit,
        start_dist,
        start_fit,
        count: ScalarModel::from_samples(&sample.counts),
        pattern: EndpointPattern::for_component(component),
    })
}

/// Runs the parametric candidate sweep; if the winner's KS distance
/// exceeds [`EMPIRICAL_FALLBACK_KS`] — or no parametric family fits at
/// all (e.g. a constant-valued sample) — falls back to the empirical
/// quantile-table model.
fn fit_with_fallback(
    samples: &[f64],
    candidates: &[Candidate],
) -> Result<(FittedDist, FitQuality)> {
    if let Ok(report) = fit_best(samples, candidates) {
        if report.ks_statistic <= EMPIRICAL_FALLBACK_KS {
            let fit = FitQuality {
                ks_statistic: report.ks_statistic,
                ks_p_value: report.ks_p_value,
                samples: samples.len() as u64,
            };
            return Ok((report.dist, fit));
        }
    }
    let emp = Empirical::fit(samples).map_err(CoreError::Stat)?;
    let ks = ks_one_sample(samples, |x| emp.cdf(x)).map_err(CoreError::Stat)?;
    let fit = FitQuality {
        ks_statistic: ks.statistic,
        ks_p_value: ks.p_value,
        samples: samples.len() as u64,
    };
    Ok((FittedDist::Empirical(emp), fit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ComponentSample;
    use keddah_stat::distributions::{Distribution, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    fn synthetic_dataset(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let size_truth = LogNormal::new(15.0, 0.8).unwrap();
        let mut components = BTreeMap::new();
        components.insert(
            Component::Shuffle,
            ComponentSample {
                sizes: (0..n).map(|_| size_truth.sample(&mut rng)).collect(),
                starts: (0..n).map(|i| i as f64 * 0.5).collect(),
                counts: vec![n as f64 / 2.0; 2],
            },
        );
        components.insert(
            Component::Control,
            ComponentSample {
                sizes: vec![900.0; 3], // below MIN_FLOWS: skipped
                starts: vec![0.0; 3],
                counts: vec![1.5; 2],
            },
        );
        Dataset {
            workload: "terasort".into(),
            input_bytes: 1 << 30,
            reducers: 8,
            replication: 3,
            block_bytes: 128 << 20,
            nodes: 16,
            runs: 2,
            makespans: vec![100.0, 110.0],
            components,
        }
    }

    #[test]
    fn fits_component_with_enough_flows() {
        let model = fit_model(&synthetic_dataset(500)).unwrap();
        let shuffle = model.component(Component::Shuffle).unwrap();
        assert_eq!(shuffle.size_dist.name(), "lognormal");
        assert!(shuffle.size_fit.ks_statistic < 0.1);
        assert_eq!(shuffle.size_fit.samples, 500);
        assert_eq!(shuffle.count.mean, 250.0);
        assert!(model.component(Component::Control).is_none(), "skipped");
        assert_eq!(model.makespan.mean, 105.0);
    }

    #[test]
    fn model_carries_covariates() {
        let model = fit_model(&synthetic_dataset(100)).unwrap();
        assert_eq!(model.workload, "terasort");
        assert_eq!(model.reducers, 8);
        assert_eq!(model.nodes, 16);
        assert_eq!(model.runs, 2);
    }

    #[test]
    fn all_components_too_small_is_an_error() {
        let mut ds = synthetic_dataset(500);
        for s in ds.components.values_mut() {
            s.sizes.truncate(2);
        }
        assert!(matches!(
            fit_model(&ds),
            Err(CoreError::InsufficientData { .. })
        ));
    }

    #[test]
    fn start_times_with_zeros_fit() {
        // Regression guard: start samples contain exact zeros; fitting
        // must not fail on positive-support families.
        let model = fit_model(&synthetic_dataset(50)).unwrap();
        assert!(model
            .component(Component::Shuffle)
            .unwrap()
            .start_fit
            .ks_statistic
            .is_finite());
    }
}
