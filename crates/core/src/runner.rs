//! Multi-threaded experiment engine: fan a workload matrix across cores.
//!
//! The paper's evaluation is a *matrix* of capture campaigns — every
//! workload crossed with input sizes and configuration sweeps, each cell
//! repeated several times. Cells are independent, so the [`Runner`]
//! executes them on a pool of scoped worker threads pulling from a shared
//! queue, while keeping two guarantees the experiments depend on:
//!
//! * **Determinism** — each run's seed is derived with splitmix64 from
//!   the cell's identity `(workload, input_bytes, config_hash, repeat)`,
//!   never from queue order or thread id. `run_matrix` therefore returns
//!   byte-identical results whether it runs on 1 worker or 16, and a
//!   cell's seeds do not shift when the matrix around it changes.
//! * **Memoization** — fitted cells are cached by identity, so a cell
//!   appearing twice (e.g. a sweep sharing its baseline point with
//!   another figure) is simulated and fitted once.
//!
//! # Examples
//!
//! ```
//! use keddah_core::runner::{MatrixCell, Runner};
//! use keddah_hadoop::{ClusterSpec, HadoopConfig, Workload};
//!
//! let runner = Runner::new(ClusterSpec::racks(2, 4));
//! let cells = vec![
//!     MatrixCell::new(Workload::TeraSort, 1 << 30, HadoopConfig::default(), 2),
//!     MatrixCell::new(Workload::Grep, 1 << 30, HadoopConfig::default(), 2),
//! ];
//! let results = runner.run_matrix(&cells, 2);
//! assert_eq!(results.len(), 2);
//! assert!(results[0].model.is_some());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

use keddah_flowcap::{Component, FlowRecord};
use keddah_hadoop::{run_repeats_seeded, ClusterSpec, HadoopConfig, JobRun, JobSpec, Workload};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::fitting::fit_model;
use crate::model::KeddahModel;

/// One cell of the experiment matrix: a workload at an input size under
/// a configuration, repeated `repeats` times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The job type to run.
    pub workload: Workload,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Hadoop configuration for every run of the cell.
    pub config: HadoopConfig,
    /// Number of repeated captures (the paper repeats each configuration
    /// to gather enough flows per component).
    pub repeats: u32,
    /// Cluster override: when set, the cell runs on this cluster instead
    /// of the runner's own. The provisioning search sweeps cluster shape
    /// alongside Hadoop knobs, so the cluster is part of the cell's
    /// identity — it participates in the memo key and seed derivation
    /// exactly like the config. `None` (the legacy shape) preserves
    /// existing seeds and cache keys bit-for-bit.
    pub cluster: Option<ClusterSpec>,
}

impl MatrixCell {
    /// Builds a cell on the runner's default cluster.
    #[must_use]
    pub fn new(workload: Workload, input_bytes: u64, config: HadoopConfig, repeats: u32) -> Self {
        MatrixCell {
            workload,
            input_bytes,
            config,
            repeats,
            cluster: None,
        }
    }

    /// Pins the cell to its own cluster (builder style).
    #[must_use]
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// The cell's configuration hash: FNV-1a over the canonical JSON
    /// serialization of `config`. Stable across runs and processes (the
    /// serializer emits fields in declaration order), so it can key
    /// caches and seed derivation.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        let json = serde_json::to_string(&self.config).expect("config serializes");
        fnv1a(json.as_bytes())
    }

    /// The cell's cluster-override hash: zero when the cell runs on the
    /// runner's cluster, FNV-1a over the override's canonical JSON
    /// otherwise. Folded into both the memo key and seed derivation so
    /// two cells differing only in cluster shape never share a cached
    /// result or a seed stream.
    #[must_use]
    pub fn cluster_hash(&self) -> u64 {
        self.cluster.as_ref().map_or(0, |c| {
            let json = serde_json::to_string(c).expect("cluster serializes");
            fnv1a(json.as_bytes())
        })
    }

    /// The derived seed for repeat `repeat` of this cell.
    ///
    /// Splitmix64 over `(workload, input_bytes, config_hash ^
    /// cluster_hash, repeat)`: every identity component is folded into
    /// the generator state before one final output draw. Two cells
    /// differing in any component get unrelated seeds, and the seeds
    /// never depend on where the cell sits in the matrix or which thread
    /// picks it up. Cells without a cluster override keep their
    /// historical seeds (`cluster_hash` is zero).
    #[must_use]
    pub fn seed_for(&self, repeat: u32) -> u64 {
        derive_seed(
            self.workload,
            self.input_bytes,
            self.config_hash() ^ self.cluster_hash(),
            repeat,
        )
    }

    /// The full seed stream for the cell, one seed per repeat.
    #[must_use]
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.repeats).map(|r| self.seed_for(r)).collect()
    }

    /// The memo key the runner caches results under. Every field that
    /// changes simulated behaviour is represented: workload, input
    /// size, configuration hash, cluster hash and repeat count —
    /// a collision here would silently serve one cell another's runs.
    #[must_use]
    pub fn key(&self) -> CellKey {
        (
            self.workload,
            self.input_bytes,
            self.config_hash(),
            self.cluster_hash(),
            self.repeats,
        )
    }
}

/// Derives a run seed from a cell identity via splitmix64.
///
/// Each identity component perturbs the generator state and advances it
/// one splitmix64 step, so the final draw depends on every component
/// non-linearly (flipping one input bit flips ~half the output bits).
#[must_use]
pub fn derive_seed(workload: Workload, input_bytes: u64, config_hash: u64, repeat: u32) -> u64 {
    let mut state = fnv1a(workload.name().as_bytes());
    let mut out = 0u64;
    for component in [input_bytes, config_hash, u64::from(repeat)] {
        state ^= component;
        out = rand::splitmix64(&mut state);
    }
    out
}

/// FNV-1a over a byte string: the stable 64-bit hash used for config
/// hashing and workload tags (std's `DefaultHasher` is explicitly not
/// stable across releases, which would silently re-seed every experiment
/// on a toolchain bump).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Flow count and wire bytes of one traffic component in one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentTotals {
    /// Number of flows classified as this component.
    pub flows: u64,
    /// Total wire bytes (both directions) across those flows.
    pub bytes: u64,
}

/// The per-run measurement a cell produces: the capture reduced to the
/// numbers the figures and tables consume. Traces themselves are not
/// retained — a full matrix would hold gigabytes of flow records;
/// experiments that need raw flows capture them directly via
/// [`keddah_hadoop::run_repeats_seeded`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The seed this run executed under.
    pub seed: u64,
    /// Job makespan in seconds.
    pub duration_secs: f64,
    /// Total flows in the capture.
    pub flows: u64,
    /// Total wire bytes in the capture.
    pub bytes: u64,
    /// Wire bytes of flows that traverse the switching core: endpoints
    /// in different racks, or either endpoint the master (which sits
    /// outside the worker racks). The provisioning search divides this
    /// by core capacity to estimate inter-rack utilisation.
    pub cross_rack_bytes: u64,
    /// HDFS read traffic (non-local map input fetches).
    pub hdfs_read: ComponentTotals,
    /// Shuffle traffic (map → reduce partition fetches).
    pub shuffle: ComponentTotals,
    /// HDFS write traffic (replication pipelines).
    pub hdfs_write: ComponentTotals,
    /// Control-plane traffic (RPCs, heartbeats, umbilicals).
    pub control: ComponentTotals,
    /// Map tasks launched.
    pub maps: u32,
    /// Reduce tasks launched.
    pub reducers: u32,
    /// Failed map attempts (failure injection).
    pub failed_map_attempts: u32,
    /// Speculative backup attempts.
    pub speculative_attempts: u32,
}

impl RunSummary {
    fn from_run(run: &JobRun, seed: u64, cluster: &ClusterSpec) -> RunSummary {
        let totals = |c: Component| {
            let mut t = ComponentTotals::default();
            for f in run.trace.component_flows(c) {
                t.flows += 1;
                t.bytes += f.total_bytes();
            }
            t
        };
        let cross_rack_bytes = run
            .trace
            .flows()
            .iter()
            .filter(|f| cluster.crosses_racks(f.tuple.src, f.tuple.dst))
            .map(FlowRecord::total_bytes)
            .sum();
        RunSummary {
            seed,
            duration_secs: run.duration.as_secs_f64(),
            flows: run.trace.len() as u64,
            bytes: run.trace.total_bytes(),
            cross_rack_bytes,
            hdfs_read: totals(Component::HdfsRead),
            shuffle: totals(Component::Shuffle),
            hdfs_write: totals(Component::HdfsWrite),
            control: totals(Component::Control),
            maps: run.counters.maps,
            reducers: run.counters.reducers,
            failed_map_attempts: run.counters.failed_map_attempts,
            speculative_attempts: run.counters.speculative_attempts,
        }
    }

    /// The totals for one traffic component.
    ///
    /// [`Component::Other`] (traffic the classifier could not attribute)
    /// returns zeros: the simulator only speaks Hadoop protocols, so
    /// nothing classifies as Other and the summary does not carry it.
    #[must_use]
    pub fn component(&self, c: Component) -> ComponentTotals {
        match c {
            Component::HdfsRead => self.hdfs_read,
            Component::Shuffle => self.shuffle,
            Component::HdfsWrite => self.hdfs_write,
            Component::Control => self.control,
            // Other and the DAG-only broadcast component are not
            // carried in matrix summaries (legacy cells never emit
            // them); they read back as zeros.
            Component::Other | Component::Broadcast => ComponentTotals::default(),
        }
    }
}

/// The outcome of one matrix cell: per-run summaries plus the model
/// fitted over the cell's pooled captures.
///
/// Serializable, and — because every field is a pure function of the
/// cell identity — byte-identical across runs, worker counts, and cell
/// orderings. Cache state is deliberately *not* recorded here: whether a
/// cell's model came from the cache depends on scheduling, and recording
/// it would break that guarantee (the [`Runner::cache_hits`] counter
/// reports it instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// FNV-1a hash of the cell's configuration (see
    /// [`MatrixCell::config_hash`]).
    pub config_hash: u64,
    /// The derived seed of each run, in repeat order.
    pub seeds: Vec<u64>,
    /// One summary per run, in repeat order.
    pub runs: Vec<RunSummary>,
    /// The model fitted over the cell's pooled traces; `None` when the
    /// cell produced too little traffic to fit (e.g. tiny inputs).
    pub model: Option<KeddahModel>,
}

impl CellResult {
    /// Mean over runs of a per-run statistic.
    pub fn mean_over_runs(&self, f: impl Fn(&RunSummary) -> f64) -> f64 {
        if self.runs.is_empty() {
            return f64::NAN;
        }
        self.runs.iter().map(f).sum::<f64>() / self.runs.len() as f64
    }

    /// Mean wire bytes of one component across the cell's runs.
    #[must_use]
    pub fn mean_component_bytes(&self, c: Component) -> f64 {
        self.mean_over_runs(|r| r.component(c).bytes as f64)
    }

    /// Mean flow count of one component across the cell's runs.
    #[must_use]
    pub fn mean_component_flows(&self, c: Component) -> f64 {
        self.mean_over_runs(|r| r.component(c).flows as f64)
    }

    /// Mean makespan in seconds across the cell's runs.
    #[must_use]
    pub fn mean_duration_secs(&self) -> f64 {
        self.mean_over_runs(|r| r.duration_secs)
    }

    /// Registers the cell's aggregates under the `runner` subsystem of
    /// `obs`. Everything recorded is a pure function of the (already
    /// deterministic) result — cache hits and scheduling are deliberately
    /// excluded, so folding the same results yields the same metrics at
    /// any worker count. No-op when `obs` is disabled.
    pub fn record_obs(&self, obs: &keddah_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.add("runner", "cells", 1);
        obs.add("runner", "runs", self.runs.len() as u64);
        obs.add("runner", "models_fitted", u64::from(self.model.is_some()));
        let durations = obs.histogram("runner", "run_duration_secs");
        for run in &self.runs {
            obs.add("runner", "flows", run.flows);
            obs.add("runner", "bytes", run.bytes);
            obs.add("runner", "maps", u64::from(run.maps));
            obs.add("runner", "reducers", u64::from(run.reducers));
            obs.add(
                "runner",
                "failed_map_attempts",
                u64::from(run.failed_map_attempts),
            );
            obs.add(
                "runner",
                "speculative_attempts",
                u64::from(run.speculative_attempts),
            );
            durations.observe(run.duration_secs);
        }
    }
}

/// Memo-cache identity of a [`MatrixCell`]: `(workload, input_bytes,
/// config_hash, cluster_hash, repeats)`.
pub type CellKey = (Workload, u64, u64, u64, u32);

/// Budget knobs for [`Runner::run_budgeted`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepBudget {
    /// Maximum number of cell executions across the whole sweep. An
    /// execution at any fidelity counts once; a round is trimmed (in
    /// rank order) rather than started beyond this ceiling.
    pub max_cell_runs: usize,
    /// Repeats per cell in the first (probe) round. Doubles every round
    /// until reaching each cell's own `repeats`.
    pub probe_repeats: u32,
    /// Fraction of scored groups kept after each probe round, in
    /// `(0, 1]` (classic successive halving at `0.5`).
    pub keep_fraction: f64,
}

impl Default for SweepBudget {
    fn default() -> Self {
        SweepBudget {
            max_cell_runs: usize::MAX,
            probe_repeats: 1,
            keep_fraction: 0.5,
        }
    }
}

/// Per-group outcome of a budgeted sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedGroup {
    /// Results for the group's cells at the highest fidelity reached,
    /// in the group's cell order. Empty if the budget ran out before
    /// the group's first probe.
    pub results: Vec<CellResult>,
    /// Repeats ceiling of the last round the group ran in (each cell
    /// ran `min(cell.repeats, fidelity)` repeats); zero if it never ran.
    pub fidelity: u32,
    /// True when every cell of the group ran at its full `repeats` —
    /// the group survived elimination to the final round, so its
    /// results are exactly what an unbudgeted sweep would produce.
    pub full_fidelity: bool,
    /// One-based round in which the group was eliminated by score;
    /// `None` for survivors and for groups dropped by the cell budget.
    pub eliminated_round: Option<usize>,
}

/// The outcome of [`Runner::run_budgeted`]: per-group results plus the
/// cost actually paid.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedSweep {
    /// One entry per input group, in input order.
    pub groups: Vec<BudgetedGroup>,
    /// Cell executions paid (`<= budget.max_cell_runs`). Strictly less
    /// than `groups * cells` whenever elimination or the budget bit.
    pub cell_runs: usize,
    /// Probe rounds executed.
    pub rounds: usize,
}

impl BudgetedSweep {
    /// Indices of groups whose results are at full fidelity, in input
    /// order — the only groups an honest ranking may compare.
    #[must_use]
    pub fn full_fidelity_groups(&self) -> Vec<usize> {
        (0..self.groups.len())
            .filter(|&i| self.groups[i].full_fidelity)
            .collect()
    }
}

/// The experiment engine: runs matrix cells across worker threads with
/// derived seeds and a per-cell result cache.
///
/// See the [module docs](self) for the determinism and memoization
/// contract.
#[derive(Debug)]
pub struct Runner {
    cluster: ClusterSpec,
    cache: Mutex<HashMap<CellKey, CellResult>>,
    cache_hits: AtomicU64,
}

impl Runner {
    /// Builds a runner executing on `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster spec is invalid.
    #[must_use]
    pub fn new(cluster: ClusterSpec) -> Self {
        cluster.validate().expect("invalid cluster spec");
        Runner {
            cluster,
            cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// The cluster cells run on.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Number of cells served from the memoization cache so far.
    ///
    /// Observability only: the count depends on scheduling (two workers
    /// may race on the same duplicated cell and both miss), so it is not
    /// part of any [`CellResult`].
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Runs every cell, fanning them across `parallelism` worker threads
    /// (clamped to at least 1 and at most one per cell).
    ///
    /// Results are returned in `cells` order, and their contents are
    /// byte-identical for any `parallelism`: each cell's seeds come from
    /// its identity, not its schedule. Workers pull the next unclaimed
    /// cell from a shared queue, so a matrix of unequal cells (16 GiB
    /// TeraSort next to 1 GiB Grep) load-balances without static
    /// partitioning.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a cell's config failed
    /// validation, or fitting panicked).
    #[must_use]
    pub fn run_matrix(&self, cells: &[MatrixCell], parallelism: usize) -> Vec<CellResult> {
        if cells.is_empty() {
            return Vec::new();
        }
        let workers = parallelism.clamp(1, cells.len());
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, CellResult)>();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let result = self.run_cell(&cells[i]);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<CellResult>> = cells.iter().map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every cell completed"))
            .collect()
    }

    /// [`Runner::run_matrix`], folding every cell's aggregates into
    /// `obs` afterwards.
    ///
    /// Metrics are recorded from the *collected* results in `cells`
    /// order — never from inside the workers — so the resulting snapshot
    /// is byte-identical for any `parallelism`, exactly like the results
    /// themselves (the `obs_determinism` tests pin this across worker
    /// counts).
    ///
    /// # Panics
    ///
    /// As [`Runner::run_matrix`].
    #[must_use]
    pub fn run_matrix_observed(
        &self,
        cells: &[MatrixCell],
        parallelism: usize,
        obs: &keddah_obs::Obs,
    ) -> Vec<CellResult> {
        let results = self.run_matrix(cells, parallelism);
        for result in &results {
            result.record_obs(obs);
        }
        results
    }

    /// Runs one cell: simulate its repeats under derived seeds, summarize
    /// each capture, fit a model over the pooled traces.
    ///
    /// Memoized by cell identity — a cell already executed (by any
    /// thread) returns its cached result without re-simulating or
    /// re-fitting.
    ///
    /// # Panics
    ///
    /// Panics if the cell's config (or cluster override) fails
    /// validation.
    #[must_use]
    pub fn run_cell(&self, cell: &MatrixCell) -> CellResult {
        let key = cell.key();
        if let Some(cached) = self.cache.lock().expect("cache lock").get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }

        let cluster = cell.cluster.as_ref().unwrap_or(&self.cluster);
        cluster.validate().expect("invalid cell cluster override");
        let seeds = cell.seeds();
        let job = JobSpec::new(cell.workload, cell.input_bytes);
        let runs = run_repeats_seeded(cluster, &cell.config, &job, &seeds);
        let summaries: Vec<RunSummary> = runs
            .iter()
            .zip(&seeds)
            .map(|(run, &seed)| RunSummary::from_run(run, seed, cluster))
            .collect();
        let traces: Vec<keddah_flowcap::Trace> = runs.into_iter().map(|r| r.trace).collect();
        let model = fit_model(&Dataset::from_traces(&traces)).ok();

        let result = CellResult {
            workload: cell.workload.name().to_string(),
            input_bytes: cell.input_bytes,
            config_hash: cell.config_hash(),
            seeds,
            runs: summaries,
            model,
        };
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, result.clone());
        result
    }

    /// Runs a successive-halving sweep over `groups` of cells under a
    /// cell-execution budget, eliminating dominated groups at cheap
    /// fidelity before paying for full-fidelity runs.
    ///
    /// Each *group* is the unit of elimination (the provisioning search
    /// groups one candidate configuration's cells across the workload
    /// mix; a plain cell sweep uses singleton groups). Rounds run every
    /// surviving group at `min(cell.repeats, round_repeats)` repeats,
    /// starting from `budget.probe_repeats` and doubling; after each
    /// probe round, `score` folds a group's results — it receives the
    /// group's input index so group-specific context (e.g. a candidate's
    /// hardware cost) can weigh in — into a figure of merit (lower is
    /// better) and only the best `keep_fraction` of groups advance. The final round runs survivors at their cells'
    /// full `repeats`, and those results are bit-identical to an
    /// unbudgeted [`Runner::run_matrix`] over the same cells.
    ///
    /// **Determinism.** Results are byte-identical for any
    /// `parallelism`: cells keep identity-derived seeds, and every
    /// elimination decision folds scores in canonical group order
    /// (ties broken by input index), never in completion order. The
    /// cell budget trims a round by the same ranking before launch.
    ///
    /// # Panics
    ///
    /// Panics if `budget.keep_fraction` is outside `(0, 1]`,
    /// `budget.probe_repeats` is zero, or a cell's config/cluster
    /// fails validation.
    #[must_use]
    pub fn run_budgeted<F>(
        &self,
        groups: &[Vec<MatrixCell>],
        score: F,
        budget: &SweepBudget,
        parallelism: usize,
    ) -> BudgetedSweep
    where
        F: Fn(usize, &[CellResult]) -> f64,
    {
        assert!(
            budget.keep_fraction > 0.0 && budget.keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1]"
        );
        assert!(budget.probe_repeats >= 1, "probe_repeats must be >= 1");
        let mut out: Vec<BudgetedGroup> = groups
            .iter()
            .map(|g| BudgetedGroup {
                results: Vec::new(),
                fidelity: 0,
                // An empty group has nothing left to simulate.
                full_fidelity: g.is_empty(),
                eliminated_round: None,
            })
            .collect();
        // Survivors in canonical (input) order throughout.
        let mut survivors: Vec<usize> = (0..groups.len())
            .filter(|&i| !groups[i].is_empty())
            .collect();
        let mut cell_runs = 0usize;
        let mut rounds = 0usize;
        let mut round_repeats = budget.probe_repeats;
        while !survivors.is_empty() {
            // Trim the round to the remaining cell budget: survivors are
            // already ranked (canonical order in round one, score order
            // after), so take the affordable prefix.
            let mut to_run: Vec<usize> = Vec::new();
            let mut round_cost = 0usize;
            for &g in &survivors {
                let cost = groups[g].len();
                if cell_runs + round_cost + cost > budget.max_cell_runs {
                    break;
                }
                round_cost += cost;
                to_run.push(g);
            }
            if to_run.is_empty() {
                break;
            }
            to_run.sort_unstable();
            rounds += 1;

            // One flat matrix for the whole round, in canonical order.
            let cells: Vec<MatrixCell> = to_run
                .iter()
                .flat_map(|&g| {
                    groups[g].iter().map(|cell| {
                        let mut probe = cell.clone();
                        probe.repeats = cell.repeats.min(round_repeats);
                        probe
                    })
                })
                .collect();
            let results = self.run_matrix(&cells, parallelism);
            cell_runs += cells.len();

            // Scatter results back to their groups.
            let mut cursor = 0usize;
            let mut final_round = true;
            for &g in &to_run {
                let n = groups[g].len();
                out[g].results = results[cursor..cursor + n].to_vec();
                out[g].fidelity = round_repeats;
                out[g].full_fidelity = groups[g].iter().all(|c| c.repeats <= round_repeats);
                final_round &= out[g].full_fidelity;
                cursor += n;
            }
            if final_round {
                break;
            }

            // Score in canonical order, keep the best fraction (ties
            // break toward the earlier group), and carry the ranking
            // into the next round's budget trim.
            let mut ranked: Vec<(usize, f64)> = to_run
                .iter()
                .map(|&g| (g, score(g, &out[g].results)))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let keep = ((ranked.len() as f64 * budget.keep_fraction).ceil() as usize)
                .clamp(1, ranked.len());
            for &(g, _) in &ranked[keep..] {
                out[g].eliminated_round = Some(rounds);
            }
            survivors = ranked[..keep].iter().map(|&(g, _)| g).collect();
            round_repeats = round_repeats.saturating_mul(2);
        }
        BudgetedSweep {
            groups: out,
            cell_runs,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell(workload: Workload) -> MatrixCell {
        MatrixCell::new(
            workload,
            512 << 20,
            HadoopConfig::default().with_reducers(4),
            2,
        )
    }

    #[test]
    fn seeds_depend_on_every_identity_component() {
        let base = small_cell(Workload::TeraSort);
        let other_workload = MatrixCell {
            workload: Workload::Grep,
            ..base.clone()
        };
        let other_size = MatrixCell {
            input_bytes: base.input_bytes * 2,
            ..base.clone()
        };
        let other_config = MatrixCell {
            config: base.config.clone().with_reducers(8),
            ..base.clone()
        };
        let other_cluster = base.clone().with_cluster(ClusterSpec::racks(4, 4));
        let s = base.seed_for(0);
        assert_ne!(s, other_workload.seed_for(0));
        assert_ne!(s, other_size.seed_for(0));
        assert_ne!(s, other_config.seed_for(0));
        assert_ne!(s, other_cluster.seed_for(0));
        assert_ne!(s, base.seed_for(1));
    }

    #[test]
    fn cluster_override_is_part_of_cell_identity() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let base = small_cell(Workload::TeraSort);
        let narrow = base.clone().with_cluster(ClusterSpec::racks(1, 4));
        let wide = base.clone().with_cluster(ClusterSpec::racks(4, 1));
        assert_eq!(base.cluster_hash(), 0, "legacy cells keep zero hash");
        assert_ne!(narrow.cluster_hash(), wide.cluster_hash());
        let r_narrow = runner.run_cell(&narrow);
        let r_wide = runner.run_cell(&wide);
        assert_eq!(
            runner.cache_hits(),
            0,
            "different clusters never share a memo entry"
        );
        // One rack cannot cross racks; four racks of one node must.
        assert!(r_narrow.runs.iter().all(|r| {
            // Master flows still count as crossing (management network).
            r.cross_rack_bytes <= r.bytes
        }));
        assert!(r_wide.runs.iter().any(|r| r.cross_rack_bytes > 0));
        assert_ne!(r_narrow, r_wide);
    }

    #[test]
    fn seeds_are_stable_values() {
        // Pin the derivation: changing it silently re-seeds every
        // experiment in the repo.
        let cell = small_cell(Workload::TeraSort);
        assert_eq!(cell.seeds(), vec![cell.seed_for(0), cell.seed_for(1)]);
        assert_eq!(
            derive_seed(Workload::TeraSort, 1, 2, 3),
            derive_seed(Workload::TeraSort, 1, 2, 3)
        );
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn config_hash_tracks_config_changes() {
        let cell = small_cell(Workload::WordCount);
        let mut tweaked = cell.clone();
        tweaked.config.slowstart = 0.5;
        assert_ne!(cell.config_hash(), tweaked.config_hash());
        assert_eq!(cell.config_hash(), cell.clone().config_hash());
    }

    #[test]
    fn cell_runs_summarize_the_capture() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let result = runner.run_cell(&small_cell(Workload::TeraSort));
        assert_eq!(result.workload, "terasort");
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.seeds.len(), 2);
        for run in &result.runs {
            assert!(run.flows > 0);
            assert!(run.shuffle.bytes > 0, "terasort shuffles");
            assert!(run.duration_secs > 0.0);
            assert_eq!(
                run.bytes,
                run.hdfs_read.bytes + run.shuffle.bytes + run.hdfs_write.bytes + run.control.bytes,
                "components partition the wire bytes"
            );
            assert!(
                run.cross_rack_bytes > 0 && run.cross_rack_bytes <= run.bytes,
                "two racks force some shuffle across the core"
            );
        }
        let model = result.model.expect("enough traffic to fit");
        assert_eq!(model.workload, "terasort");
    }

    #[test]
    fn duplicate_cells_hit_the_cache() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let cell = small_cell(Workload::Grep);
        let first = runner.run_cell(&cell);
        assert_eq!(runner.cache_hits(), 0);
        let second = runner.run_cell(&cell);
        assert_eq!(runner.cache_hits(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn matrix_results_keep_cell_order() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let cells = vec![
            small_cell(Workload::Grep),
            small_cell(Workload::WordCount),
            small_cell(Workload::TeraGen),
        ];
        let results = runner.run_matrix(&cells, 3);
        let names: Vec<&str> = results.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(names, ["grep", "wordcount", "teragen"]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let runner = Runner::new(ClusterSpec::racks(1, 2));
        assert!(runner.run_matrix(&[], 4).is_empty());
    }

    /// Cells that differ only in `repeats` (the budgeted runner's probe
    /// fidelity) must never share a memo entry: a probe at 1 repeat
    /// followed by the full cell must re-simulate, not serve the stale
    /// one-run result.
    #[test]
    fn probe_fidelity_never_serves_stale_cache() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let full = small_cell(Workload::TeraSort);
        let mut probe = full.clone();
        probe.repeats = 1;
        let p = runner.run_cell(&probe);
        assert_eq!(p.runs.len(), 1);
        let f = runner.run_cell(&full);
        assert_eq!(runner.cache_hits(), 0, "fidelities must not collide");
        assert_eq!(f.runs.len(), 2);
        // The probe's single run is the full cell's first repeat: seeds
        // are per-repeat, independent of the repeat count.
        assert_eq!(f.runs[0], p.runs[0]);
    }

    fn reducer_sweep(reducer_counts: &[u32], repeats: u32) -> Vec<Vec<MatrixCell>> {
        reducer_counts
            .iter()
            .map(|&r| {
                vec![MatrixCell::new(
                    Workload::TeraSort,
                    256 << 20,
                    HadoopConfig::default().with_reducers(r),
                    repeats,
                )]
            })
            .collect()
    }

    fn mean_duration(results: &[CellResult]) -> f64 {
        results
            .iter()
            .map(CellResult::mean_duration_secs)
            .sum::<f64>()
            / results.len() as f64
    }

    #[test]
    fn budgeted_sweep_eliminates_and_survivors_match_full_runs() {
        let groups = reducer_sweep(&[1, 2, 4, 8], 2);
        let budget = SweepBudget {
            probe_repeats: 1,
            keep_fraction: 0.5,
            ..SweepBudget::default()
        };
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let sweep = runner.run_budgeted(&groups, |_, r| mean_duration(r), &budget, 2);
        let survivors = sweep.full_fidelity_groups();
        assert_eq!(survivors.len(), 2, "half eliminated after the probe");
        let eliminated = sweep
            .groups
            .iter()
            .filter(|g| g.eliminated_round == Some(1))
            .count();
        assert_eq!(eliminated, 2);
        // Survivor results are exactly the unbudgeted cell results.
        let fresh = Runner::new(ClusterSpec::racks(2, 2));
        for &g in &survivors {
            assert_eq!(sweep.groups[g].results, vec![fresh.run_cell(&groups[g][0])]);
        }
        // Eliminated groups still carry their probe-fidelity evidence.
        for g in &sweep.groups {
            assert_eq!(g.results.len(), 1);
            assert!(g.fidelity >= 1);
        }
    }

    #[test]
    fn budgeted_sweep_is_deterministic_across_parallelism() {
        let groups = reducer_sweep(&[1, 2, 4, 8, 16], 2);
        let budget = SweepBudget {
            probe_repeats: 1,
            keep_fraction: 0.5,
            ..SweepBudget::default()
        };
        let serial = Runner::new(ClusterSpec::racks(2, 2)).run_budgeted(
            &groups,
            |_, r| mean_duration(r),
            &budget,
            1,
        );
        let wide = Runner::new(ClusterSpec::racks(2, 2)).run_budgeted(
            &groups,
            |_, r| mean_duration(r),
            &budget,
            8,
        );
        assert_eq!(serial, wide, "elimination folds in canonical order");
    }

    #[test]
    fn budgeted_sweep_respects_the_cell_budget() {
        let groups = reducer_sweep(&[1, 2, 4, 8], 2);
        let budget = SweepBudget {
            max_cell_runs: 5,
            probe_repeats: 1,
            keep_fraction: 0.5,
        };
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let sweep = runner.run_budgeted(&groups, |_, r| mean_duration(r), &budget, 2);
        assert!(sweep.cell_runs <= 5, "budget is a hard ceiling");
        // Probe round costs 4; only one of the two survivors fits the
        // last execution slot, and the trim favours the better score.
        assert!(sweep.cell_runs == 5);
        assert_eq!(sweep.full_fidelity_groups().len(), 1);
    }

    #[test]
    fn empty_groups_are_complete_without_running() {
        let runner = Runner::new(ClusterSpec::racks(1, 2));
        let sweep = runner.run_budgeted(&[Vec::new()], |_, _| 0.0, &SweepBudget::default(), 1);
        assert_eq!(sweep.cell_runs, 0);
        assert!(sweep.groups[0].full_fidelity);
    }
}
