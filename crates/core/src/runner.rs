//! Multi-threaded experiment engine: fan a workload matrix across cores.
//!
//! The paper's evaluation is a *matrix* of capture campaigns — every
//! workload crossed with input sizes and configuration sweeps, each cell
//! repeated several times. Cells are independent, so the [`Runner`]
//! executes them on a pool of scoped worker threads pulling from a shared
//! queue, while keeping two guarantees the experiments depend on:
//!
//! * **Determinism** — each run's seed is derived with splitmix64 from
//!   the cell's identity `(workload, input_bytes, config_hash, repeat)`,
//!   never from queue order or thread id. `run_matrix` therefore returns
//!   byte-identical results whether it runs on 1 worker or 16, and a
//!   cell's seeds do not shift when the matrix around it changes.
//! * **Memoization** — fitted cells are cached by identity, so a cell
//!   appearing twice (e.g. a sweep sharing its baseline point with
//!   another figure) is simulated and fitted once.
//!
//! # Examples
//!
//! ```
//! use keddah_core::runner::{MatrixCell, Runner};
//! use keddah_hadoop::{ClusterSpec, HadoopConfig, Workload};
//!
//! let runner = Runner::new(ClusterSpec::racks(2, 4));
//! let cells = vec![
//!     MatrixCell::new(Workload::TeraSort, 1 << 30, HadoopConfig::default(), 2),
//!     MatrixCell::new(Workload::Grep, 1 << 30, HadoopConfig::default(), 2),
//! ];
//! let results = runner.run_matrix(&cells, 2);
//! assert_eq!(results.len(), 2);
//! assert!(results[0].model.is_some());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

use keddah_flowcap::Component;
use keddah_hadoop::{run_repeats_seeded, ClusterSpec, HadoopConfig, JobRun, JobSpec, Workload};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::fitting::fit_model;
use crate::model::KeddahModel;

/// One cell of the experiment matrix: a workload at an input size under
/// a configuration, repeated `repeats` times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The job type to run.
    pub workload: Workload,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Hadoop configuration for every run of the cell.
    pub config: HadoopConfig,
    /// Number of repeated captures (the paper repeats each configuration
    /// to gather enough flows per component).
    pub repeats: u32,
}

impl MatrixCell {
    /// Builds a cell.
    #[must_use]
    pub fn new(workload: Workload, input_bytes: u64, config: HadoopConfig, repeats: u32) -> Self {
        MatrixCell {
            workload,
            input_bytes,
            config,
            repeats,
        }
    }

    /// The cell's configuration hash: FNV-1a over the canonical JSON
    /// serialization of `config`. Stable across runs and processes (the
    /// serializer emits fields in declaration order), so it can key
    /// caches and seed derivation.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        let json = serde_json::to_string(&self.config).expect("config serializes");
        fnv1a(json.as_bytes())
    }

    /// The derived seed for repeat `repeat` of this cell.
    ///
    /// Splitmix64 over `(workload, input_bytes, config_hash, repeat)`:
    /// every identity component is folded into the generator state before
    /// one final output draw. Two cells differing in any component get
    /// unrelated seeds, and the seeds never depend on where the cell sits
    /// in the matrix or which thread picks it up.
    #[must_use]
    pub fn seed_for(&self, repeat: u32) -> u64 {
        derive_seed(self.workload, self.input_bytes, self.config_hash(), repeat)
    }

    /// The full seed stream for the cell, one seed per repeat.
    #[must_use]
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.repeats).map(|r| self.seed_for(r)).collect()
    }

    fn key(&self) -> CellKey {
        (
            self.workload,
            self.input_bytes,
            self.config_hash(),
            self.repeats,
        )
    }
}

/// Derives a run seed from a cell identity via splitmix64.
///
/// Each identity component perturbs the generator state and advances it
/// one splitmix64 step, so the final draw depends on every component
/// non-linearly (flipping one input bit flips ~half the output bits).
#[must_use]
pub fn derive_seed(workload: Workload, input_bytes: u64, config_hash: u64, repeat: u32) -> u64 {
    let mut state = fnv1a(workload.name().as_bytes());
    let mut out = 0u64;
    for component in [input_bytes, config_hash, u64::from(repeat)] {
        state ^= component;
        out = rand::splitmix64(&mut state);
    }
    out
}

/// FNV-1a over a byte string: the stable 64-bit hash used for config
/// hashing and workload tags (std's `DefaultHasher` is explicitly not
/// stable across releases, which would silently re-seed every experiment
/// on a toolchain bump).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// Flow count and wire bytes of one traffic component in one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentTotals {
    /// Number of flows classified as this component.
    pub flows: u64,
    /// Total wire bytes (both directions) across those flows.
    pub bytes: u64,
}

/// The per-run measurement a cell produces: the capture reduced to the
/// numbers the figures and tables consume. Traces themselves are not
/// retained — a full matrix would hold gigabytes of flow records;
/// experiments that need raw flows capture them directly via
/// [`keddah_hadoop::run_repeats_seeded`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The seed this run executed under.
    pub seed: u64,
    /// Job makespan in seconds.
    pub duration_secs: f64,
    /// Total flows in the capture.
    pub flows: u64,
    /// Total wire bytes in the capture.
    pub bytes: u64,
    /// HDFS read traffic (non-local map input fetches).
    pub hdfs_read: ComponentTotals,
    /// Shuffle traffic (map → reduce partition fetches).
    pub shuffle: ComponentTotals,
    /// HDFS write traffic (replication pipelines).
    pub hdfs_write: ComponentTotals,
    /// Control-plane traffic (RPCs, heartbeats, umbilicals).
    pub control: ComponentTotals,
    /// Map tasks launched.
    pub maps: u32,
    /// Reduce tasks launched.
    pub reducers: u32,
    /// Failed map attempts (failure injection).
    pub failed_map_attempts: u32,
    /// Speculative backup attempts.
    pub speculative_attempts: u32,
}

impl RunSummary {
    fn from_run(run: &JobRun, seed: u64) -> RunSummary {
        let totals = |c: Component| {
            let mut t = ComponentTotals::default();
            for f in run.trace.component_flows(c) {
                t.flows += 1;
                t.bytes += f.total_bytes();
            }
            t
        };
        RunSummary {
            seed,
            duration_secs: run.duration.as_secs_f64(),
            flows: run.trace.len() as u64,
            bytes: run.trace.total_bytes(),
            hdfs_read: totals(Component::HdfsRead),
            shuffle: totals(Component::Shuffle),
            hdfs_write: totals(Component::HdfsWrite),
            control: totals(Component::Control),
            maps: run.counters.maps,
            reducers: run.counters.reducers,
            failed_map_attempts: run.counters.failed_map_attempts,
            speculative_attempts: run.counters.speculative_attempts,
        }
    }

    /// The totals for one traffic component.
    ///
    /// [`Component::Other`] (traffic the classifier could not attribute)
    /// returns zeros: the simulator only speaks Hadoop protocols, so
    /// nothing classifies as Other and the summary does not carry it.
    #[must_use]
    pub fn component(&self, c: Component) -> ComponentTotals {
        match c {
            Component::HdfsRead => self.hdfs_read,
            Component::Shuffle => self.shuffle,
            Component::HdfsWrite => self.hdfs_write,
            Component::Control => self.control,
            // Other and the DAG-only broadcast component are not
            // carried in matrix summaries (legacy cells never emit
            // them); they read back as zeros.
            Component::Other | Component::Broadcast => ComponentTotals::default(),
        }
    }
}

/// The outcome of one matrix cell: per-run summaries plus the model
/// fitted over the cell's pooled captures.
///
/// Serializable, and — because every field is a pure function of the
/// cell identity — byte-identical across runs, worker counts, and cell
/// orderings. Cache state is deliberately *not* recorded here: whether a
/// cell's model came from the cache depends on scheduling, and recording
/// it would break that guarantee (the [`Runner::cache_hits`] counter
/// reports it instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// FNV-1a hash of the cell's configuration (see
    /// [`MatrixCell::config_hash`]).
    pub config_hash: u64,
    /// The derived seed of each run, in repeat order.
    pub seeds: Vec<u64>,
    /// One summary per run, in repeat order.
    pub runs: Vec<RunSummary>,
    /// The model fitted over the cell's pooled traces; `None` when the
    /// cell produced too little traffic to fit (e.g. tiny inputs).
    pub model: Option<KeddahModel>,
}

impl CellResult {
    /// Mean over runs of a per-run statistic.
    pub fn mean_over_runs(&self, f: impl Fn(&RunSummary) -> f64) -> f64 {
        if self.runs.is_empty() {
            return f64::NAN;
        }
        self.runs.iter().map(f).sum::<f64>() / self.runs.len() as f64
    }

    /// Mean wire bytes of one component across the cell's runs.
    #[must_use]
    pub fn mean_component_bytes(&self, c: Component) -> f64 {
        self.mean_over_runs(|r| r.component(c).bytes as f64)
    }

    /// Mean flow count of one component across the cell's runs.
    #[must_use]
    pub fn mean_component_flows(&self, c: Component) -> f64 {
        self.mean_over_runs(|r| r.component(c).flows as f64)
    }

    /// Mean makespan in seconds across the cell's runs.
    #[must_use]
    pub fn mean_duration_secs(&self) -> f64 {
        self.mean_over_runs(|r| r.duration_secs)
    }

    /// Registers the cell's aggregates under the `runner` subsystem of
    /// `obs`. Everything recorded is a pure function of the (already
    /// deterministic) result — cache hits and scheduling are deliberately
    /// excluded, so folding the same results yields the same metrics at
    /// any worker count. No-op when `obs` is disabled.
    pub fn record_obs(&self, obs: &keddah_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.add("runner", "cells", 1);
        obs.add("runner", "runs", self.runs.len() as u64);
        obs.add("runner", "models_fitted", u64::from(self.model.is_some()));
        let durations = obs.histogram("runner", "run_duration_secs");
        for run in &self.runs {
            obs.add("runner", "flows", run.flows);
            obs.add("runner", "bytes", run.bytes);
            obs.add("runner", "maps", u64::from(run.maps));
            obs.add("runner", "reducers", u64::from(run.reducers));
            obs.add(
                "runner",
                "failed_map_attempts",
                u64::from(run.failed_map_attempts),
            );
            obs.add(
                "runner",
                "speculative_attempts",
                u64::from(run.speculative_attempts),
            );
            durations.observe(run.duration_secs);
        }
    }
}

type CellKey = (Workload, u64, u64, u32);

/// The experiment engine: runs matrix cells across worker threads with
/// derived seeds and a per-cell result cache.
///
/// See the [module docs](self) for the determinism and memoization
/// contract.
#[derive(Debug)]
pub struct Runner {
    cluster: ClusterSpec,
    cache: Mutex<HashMap<CellKey, CellResult>>,
    cache_hits: AtomicU64,
}

impl Runner {
    /// Builds a runner executing on `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster spec is invalid.
    #[must_use]
    pub fn new(cluster: ClusterSpec) -> Self {
        cluster.validate().expect("invalid cluster spec");
        Runner {
            cluster,
            cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// The cluster cells run on.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Number of cells served from the memoization cache so far.
    ///
    /// Observability only: the count depends on scheduling (two workers
    /// may race on the same duplicated cell and both miss), so it is not
    /// part of any [`CellResult`].
    #[must_use]
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Runs every cell, fanning them across `parallelism` worker threads
    /// (clamped to at least 1 and at most one per cell).
    ///
    /// Results are returned in `cells` order, and their contents are
    /// byte-identical for any `parallelism`: each cell's seeds come from
    /// its identity, not its schedule. Workers pull the next unclaimed
    /// cell from a shared queue, so a matrix of unequal cells (16 GiB
    /// TeraSort next to 1 GiB Grep) load-balances without static
    /// partitioning.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (a cell's config failed
    /// validation, or fitting panicked).
    #[must_use]
    pub fn run_matrix(&self, cells: &[MatrixCell], parallelism: usize) -> Vec<CellResult> {
        if cells.is_empty() {
            return Vec::new();
        }
        let workers = parallelism.clamp(1, cells.len());
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, CellResult)>();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let result = self.run_cell(&cells[i]);
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);
        let mut slots: Vec<Option<CellResult>> = cells.iter().map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every cell completed"))
            .collect()
    }

    /// [`Runner::run_matrix`], folding every cell's aggregates into
    /// `obs` afterwards.
    ///
    /// Metrics are recorded from the *collected* results in `cells`
    /// order — never from inside the workers — so the resulting snapshot
    /// is byte-identical for any `parallelism`, exactly like the results
    /// themselves (the `obs_determinism` tests pin this across worker
    /// counts).
    ///
    /// # Panics
    ///
    /// As [`Runner::run_matrix`].
    #[must_use]
    pub fn run_matrix_observed(
        &self,
        cells: &[MatrixCell],
        parallelism: usize,
        obs: &keddah_obs::Obs,
    ) -> Vec<CellResult> {
        let results = self.run_matrix(cells, parallelism);
        for result in &results {
            result.record_obs(obs);
        }
        results
    }

    /// Runs one cell: simulate its repeats under derived seeds, summarize
    /// each capture, fit a model over the pooled traces.
    ///
    /// Memoized by cell identity — a cell already executed (by any
    /// thread) returns its cached result without re-simulating or
    /// re-fitting.
    ///
    /// # Panics
    ///
    /// Panics if the cell's config fails validation.
    #[must_use]
    pub fn run_cell(&self, cell: &MatrixCell) -> CellResult {
        let key = cell.key();
        if let Some(cached) = self.cache.lock().expect("cache lock").get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }

        let seeds = cell.seeds();
        let job = JobSpec::new(cell.workload, cell.input_bytes);
        let runs = run_repeats_seeded(&self.cluster, &cell.config, &job, &seeds);
        let summaries: Vec<RunSummary> = runs
            .iter()
            .zip(&seeds)
            .map(|(run, &seed)| RunSummary::from_run(run, seed))
            .collect();
        let traces: Vec<keddah_flowcap::Trace> = runs.into_iter().map(|r| r.trace).collect();
        let model = fit_model(&Dataset::from_traces(&traces)).ok();

        let result = CellResult {
            workload: cell.workload.name().to_string(),
            input_bytes: cell.input_bytes,
            config_hash: cell.config_hash(),
            seeds,
            runs: summaries,
            model,
        };
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, result.clone());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell(workload: Workload) -> MatrixCell {
        MatrixCell::new(
            workload,
            512 << 20,
            HadoopConfig::default().with_reducers(4),
            2,
        )
    }

    #[test]
    fn seeds_depend_on_every_identity_component() {
        let base = small_cell(Workload::TeraSort);
        let other_workload = MatrixCell {
            workload: Workload::Grep,
            ..base.clone()
        };
        let other_size = MatrixCell {
            input_bytes: base.input_bytes * 2,
            ..base.clone()
        };
        let other_config = MatrixCell {
            config: base.config.clone().with_reducers(8),
            ..base.clone()
        };
        let s = base.seed_for(0);
        assert_ne!(s, other_workload.seed_for(0));
        assert_ne!(s, other_size.seed_for(0));
        assert_ne!(s, other_config.seed_for(0));
        assert_ne!(s, base.seed_for(1));
    }

    #[test]
    fn seeds_are_stable_values() {
        // Pin the derivation: changing it silently re-seeds every
        // experiment in the repo.
        let cell = small_cell(Workload::TeraSort);
        assert_eq!(cell.seeds(), vec![cell.seed_for(0), cell.seed_for(1)]);
        assert_eq!(
            derive_seed(Workload::TeraSort, 1, 2, 3),
            derive_seed(Workload::TeraSort, 1, 2, 3)
        );
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn config_hash_tracks_config_changes() {
        let cell = small_cell(Workload::WordCount);
        let mut tweaked = cell.clone();
        tweaked.config.slowstart = 0.5;
        assert_ne!(cell.config_hash(), tweaked.config_hash());
        assert_eq!(cell.config_hash(), cell.clone().config_hash());
    }

    #[test]
    fn cell_runs_summarize_the_capture() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let result = runner.run_cell(&small_cell(Workload::TeraSort));
        assert_eq!(result.workload, "terasort");
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.seeds.len(), 2);
        for run in &result.runs {
            assert!(run.flows > 0);
            assert!(run.shuffle.bytes > 0, "terasort shuffles");
            assert!(run.duration_secs > 0.0);
            assert_eq!(
                run.bytes,
                run.hdfs_read.bytes + run.shuffle.bytes + run.hdfs_write.bytes + run.control.bytes,
                "components partition the wire bytes"
            );
        }
        let model = result.model.expect("enough traffic to fit");
        assert_eq!(model.workload, "terasort");
    }

    #[test]
    fn duplicate_cells_hit_the_cache() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let cell = small_cell(Workload::Grep);
        let first = runner.run_cell(&cell);
        assert_eq!(runner.cache_hits(), 0);
        let second = runner.run_cell(&cell);
        assert_eq!(runner.cache_hits(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn matrix_results_keep_cell_order() {
        let runner = Runner::new(ClusterSpec::racks(2, 2));
        let cells = vec![
            small_cell(Workload::Grep),
            small_cell(Workload::WordCount),
            small_cell(Workload::TeraGen),
        ];
        let results = runner.run_matrix(&cells, 3);
        let names: Vec<&str> = results.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(names, ["grep", "wordcount", "teragen"]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let runner = Runner::new(ClusterSpec::racks(1, 2));
        assert!(runner.run_matrix(&[], 4).is_empty());
    }
}
