//! Synthetic traffic generation from fitted models.
//!
//! The payoff of the toolchain: given a [`KeddahModel`], produce the flow
//! population of a statistically equivalent job — sizes from the fitted
//! size distributions, start times from the fitted arrival distributions,
//! per-job counts from the count models, endpoints from the component's
//! communication pattern — without running Hadoop.

use keddah_flowcap::Component;
use keddah_stat::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::model::{EndpointPattern, KeddahModel, ScalarModel};

/// One generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenFlow {
    /// Source node (0 = master, 1..=nodes = workers).
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Start time in seconds from job start.
    pub start: f64,
    /// The traffic component this flow belongs to.
    pub component: Component,
}

/// A generated job: its flows plus the cluster size they assume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedJob {
    /// Worker count (node ids run 0..=nodes, 0 being the master).
    pub nodes: u32,
    /// Sampled job makespan, seconds.
    pub makespan: f64,
    /// The flows, sorted by start time.
    pub flows: Vec<GenFlow>,
}

impl GeneratedJob {
    /// Total bytes across all flows.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }

    /// Flow sizes (bytes as f64) of one component, for validation.
    #[must_use]
    pub fn component_sizes(&self, component: Component) -> Vec<f64> {
        self.flows
            .iter()
            .filter(|f| f.component == component)
            .map(|f| f.bytes as f64)
            .collect()
    }
}

impl KeddahModel {
    /// Generates the flows of one synthetic job. Deterministic in
    /// `seed`.
    ///
    /// # Examples
    ///
    /// See the crate-level example in [`keddah-core`](crate).
    #[must_use]
    pub fn generate_job(&self, seed: u64) -> GeneratedJob {
        let mut rng = StdRng::seed_from_u64(seed);
        let makespan = sample_scalar(&self.makespan, &mut rng).max(1.0);
        let workers = self.nodes.max(2);
        let mut flows = Vec::new();

        for (&component, cm) in &self.components {
            let count = sample_scalar(&cm.count, &mut rng).round().max(0.0) as u64;
            // Shuffle sinks: one slot per configured reducer, placed on
            // workers *with replacement* — a node hosting two reducers
            // receives twice the in-cast, matching how YARN actually
            // packs containers.
            let reducer_nodes: Vec<u32> = {
                let k = self.reducers.max(1);
                (0..k).map(|_| rng.random_range(1..=workers)).collect()
            };
            for _ in 0..count {
                let bytes = cm.size_dist.sample(&mut rng).max(1.0) as u64;
                // Arrival times are clamped into the job window; the
                // fitted family occasionally produces negative or far-tail
                // values.
                let start = cm.start_dist.sample(&mut rng).clamp(0.0, makespan * 1.25);
                let (src, dst) = endpoints(cm.pattern, workers, &reducer_nodes, &mut rng);
                flows.push(GenFlow {
                    src,
                    dst,
                    bytes,
                    start,
                    component,
                });
            }
        }
        flows.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite starts"));
        GeneratedJob {
            nodes: workers,
            makespan,
            flows,
        }
    }

    /// Generates `n` jobs with consecutive seeds, start times offset by
    /// `stagger_secs` each — the multi-job scenario generator.
    #[must_use]
    pub fn generate_jobs(&self, n: u32, seed: u64, stagger_secs: f64) -> Vec<GeneratedJob> {
        (0..n)
            .map(|i| {
                let mut job = self.generate_job(seed + u64::from(i));
                let offset = stagger_secs * f64::from(i);
                for f in &mut job.flows {
                    f.start += offset;
                }
                job
            })
            .collect()
    }
}

/// Samples a normal-ish scalar (mean/std), truncated at zero.
pub(crate) fn sample_scalar(model: &ScalarModel, rng: &mut StdRng) -> f64 {
    if model.std <= 0.0 {
        return model.mean;
    }
    // Irwin–Hall approximate standard normal: adequate for per-job
    // scalar jitter.
    let z: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
    (model.mean + model.std * z).max(0.0)
}

/// Synthesizes flow endpoints for a component's pattern.
pub(crate) fn endpoints(
    pattern: EndpointPattern,
    workers: u32,
    reducer_nodes: &[u32],
    rng: &mut StdRng,
) -> (u32, u32) {
    let worker = |rng: &mut StdRng| rng.random_range(1..=workers);
    match pattern {
        EndpointPattern::RandomPair | EndpointPattern::PipelineHop => {
            let src = worker(rng);
            let mut dst = worker(rng);
            while dst == src {
                dst = worker(rng);
            }
            (src, dst)
        }
        EndpointPattern::ManyToFew => {
            let dst = reducer_nodes[rng.random_range(0..reducer_nodes.len())];
            let mut src = worker(rng);
            while src == dst {
                src = worker(rng);
            }
            (src, dst)
        }
        EndpointPattern::ToMaster => (worker(rng), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ComponentModel, FitQuality, MODEL_VERSION};
    use keddah_stat::distributions::{Exponential, LogNormal, Uniform};
    use keddah_stat::fit::FittedDist;
    use std::collections::BTreeMap;

    fn model() -> KeddahModel {
        let quality = FitQuality {
            ks_statistic: 0.03,
            ks_p_value: 0.5,
            samples: 200,
        };
        let mut components = BTreeMap::new();
        components.insert(
            Component::Shuffle,
            ComponentModel {
                size_dist: FittedDist::LogNormal(LogNormal::new(13.0, 0.5).unwrap()),
                size_fit: quality,
                start_dist: FittedDist::Uniform(Uniform::new(0.0, 90.0).unwrap()),
                start_fit: quality,
                count: ScalarModel {
                    mean: 100.0,
                    std: 5.0,
                },
                pattern: EndpointPattern::ManyToFew,
            },
        );
        components.insert(
            Component::Control,
            ComponentModel {
                size_dist: FittedDist::Exponential(Exponential::new(0.001).unwrap()),
                size_fit: quality,
                start_dist: FittedDist::Uniform(Uniform::new(0.0, 100.0).unwrap()),
                start_fit: quality,
                count: ScalarModel {
                    mean: 50.0,
                    std: 0.0,
                },
                pattern: EndpointPattern::ToMaster,
            },
        );
        KeddahModel {
            version: MODEL_VERSION,
            workload: "terasort".into(),
            input_bytes: 1 << 30,
            reducers: 4,
            replication: 3,
            block_bytes: 128 << 20,
            nodes: 8,
            runs: 5,
            makespan: ScalarModel {
                mean: 100.0,
                std: 5.0,
            },
            components,
        }
    }

    #[test]
    fn generates_roughly_the_modelled_count() {
        let job = model().generate_job(1);
        let shuffle = job
            .flows
            .iter()
            .filter(|f| f.component == Component::Shuffle)
            .count();
        assert!((80..=120).contains(&shuffle), "count = {shuffle}");
        let control = job
            .flows
            .iter()
            .filter(|f| f.component == Component::Control)
            .count();
        assert_eq!(control, 50, "std 0 count is exact");
    }

    #[test]
    fn deterministic_in_seed() {
        let m = model();
        assert_eq!(m.generate_job(7), m.generate_job(7));
        assert_ne!(m.generate_job(7), m.generate_job(8));
    }

    #[test]
    fn flows_sorted_and_in_window() {
        let job = model().generate_job(2);
        for w in job.flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for f in &job.flows {
            assert!(f.start >= 0.0 && f.start <= job.makespan * 1.25);
            assert!(f.bytes >= 1);
        }
    }

    #[test]
    fn endpoints_respect_patterns() {
        let job = model().generate_job(3);
        for f in &job.flows {
            match f.component {
                Component::Control => assert_eq!(f.dst, 0),
                Component::Shuffle => {
                    assert_ne!(f.src, f.dst);
                    assert!(f.src >= 1 && f.dst >= 1);
                }
                _ => {}
            }
        }
        // Shuffle sinks are few: at most `reducers` distinct.
        let sinks: std::collections::HashSet<u32> = job
            .flows
            .iter()
            .filter(|f| f.component == Component::Shuffle)
            .map(|f| f.dst)
            .collect();
        assert!(sinks.len() <= 4, "sinks = {sinks:?}");
    }

    #[test]
    fn multi_job_stagger() {
        let jobs = model().generate_jobs(3, 10, 30.0);
        assert_eq!(jobs.len(), 3);
        let first_start = |j: &GeneratedJob| j.flows.first().map(|f| f.start).unwrap_or(0.0);
        assert!(first_start(&jobs[1]) >= 30.0);
        assert!(first_start(&jobs[2]) >= 60.0);
    }

    #[test]
    fn component_sizes_filter() {
        let job = model().generate_job(4);
        let sizes = job.component_sizes(Component::Shuffle);
        assert!(!sizes.is_empty());
        assert!(job.component_sizes(Component::HdfsRead).is_empty());
        assert!(job.total_bytes() > 0);
    }
}
