//! Closed-loop traffic sources: replaying Hadoop traffic with its causal
//! structure intact.
//!
//! Open-loop replay ([`crate::replay::replay`]) feeds the simulator a flat
//! flow list with pre-computed start times, so congestion stretches flow
//! completion times but can never *delay dependent traffic* — a shuffle
//! fetch starts at its captured time even if the map's input read is still
//! crawling through an oversubscribed fabric. That overstates pipelining
//! and understates how congestion compounds through a job.
//!
//! The sources here implement [`keddah_netsim::TrafficSource`], releasing
//! dependent flows only when their parents complete *in the simulation*:
//!
//! * [`TraceSource`] replays a captured [`Trace`], inferring per-flow
//!   dependency edges from Hadoop's data path: a shuffle fetch depends on
//!   the HDFS read that fed its map, and each HDFS-write pipeline hop
//!   depends on the upstream hop (or the shuffle into the writing
//!   reducer). The captured gap between parent end and child start is
//!   preserved as *lag*, so uncongested replays reproduce the capture and
//!   congested ones shift dependants later.
//! * [`ModelSource`] generates jobs from a fitted [`KeddahModel`] stage by
//!   stage — reads/control up front, shuffles sampled only when the job's
//!   reads complete, writes only when its shuffles complete — instead of
//!   sampling every start time up front as [`KeddahModel::generate_job`]
//!   does.

use keddah_des::{Duration, SimTime};
use keddah_flowcap::{Component, Trace};
use keddah_netsim::{FlowId, FlowResult, FlowSpec, HostId, Topology, TrafficSource};
use keddah_stat::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generate::{endpoints, sample_scalar};
use crate::model::KeddahModel;
use crate::replay::tag_of;
use crate::{CoreError, Result};

// ---------------------------------------------------------------------
// TraceSource
// ---------------------------------------------------------------------

/// One trace flow with its inferred dependency edge.
#[derive(Debug, Clone)]
struct TraceEntry {
    /// The open-loop spec (start shifted so the trace begins at zero).
    spec: FlowSpec,
    /// Captured gap between the parent's end and this flow's start.
    lag: Duration,
}

/// Closed-loop replay of a captured [`Trace`].
///
/// Dependency edges are inferred from the capture (see the module docs);
/// flows without a parent are injected at their captured (zero-shifted)
/// start times, and every dependent flow is released `lag` after its
/// parent finishes in the simulation. On an uncongested fabric the replay
/// therefore reproduces the captured schedule; under congestion dependent
/// flows start late, exactly as the real job would have.
#[derive(Debug, Clone)]
pub struct TraceSource {
    entries: Vec<TraceEntry>,
    /// entry index -> indices of entries that depend on it.
    children: Vec<Vec<usize>>,
    /// Entries with no parent, injected at start.
    roots: Vec<usize>,
    /// FlowId -> entry index, in injection order.
    injected: Vec<usize>,
}

impl TraceSource {
    /// Builds a closed-loop source from a capture trace, inferring
    /// dependency edges.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TopologyTooSmall`] if any flow endpoint
    /// exceeds the topology's host count.
    pub fn new(trace: &Trace, topo: &Topology) -> Result<Self> {
        let flows = trace.flows();
        let t0 = flows.iter().map(|f| f.start).min().unwrap_or(SimTime::ZERO);
        // Scan in capture start order so "latest eligible parent" is
        // well-defined; ties keep trace order.
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by_key(|&i| (flows[i].start, i));

        let mut entries = Vec::with_capacity(flows.len());
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); flows.len()];
        let mut roots = Vec::new();
        for (pos, &idx) in order.iter().enumerate() {
            let f = &flows[idx];
            let node = f.tuple.src.0.max(f.tuple.dst.0);
            if node >= topo.host_count() {
                return Err(CoreError::TopologyTooSmall {
                    needed: node + 1,
                    available: topo.host_count(),
                });
            }
            let component = f.component.unwrap_or(Component::Other);
            // Parent = the latest-ending already-finished flow upstream of
            // this one on Hadoop's data path.
            let parent = match component {
                // A shuffle fetch (reducer = tuple.src pulls from the map
                // node = tuple.dst) waits for the HDFS read that fed that
                // map (read client = map node = tuple.src of the read);
                // the map finished consuming its input before serving, so
                // the read must have ended first.
                Component::Shuffle => best_parent(flows, &order[..pos], |p| {
                    p.component == Some(Component::HdfsRead)
                        && p.tuple.src == f.tuple.dst
                        && p.end <= f.start
                }),
                // A write-pipeline hop (upstream = tuple.src pushes to
                // tuple.dst) waits for the hop that delivered the data to
                // its upstream node — hops of one pipeline overlap in the
                // capture (data streams through), so only require the
                // parent to have started first — or, at the head of a
                // reducer's pipeline, for the shuffle into that reducer.
                Component::HdfsWrite => best_parent(flows, &order[..pos], |p| {
                    p.component == Some(Component::HdfsWrite) && p.tuple.dst == f.tuple.src
                })
                .or_else(|| {
                    best_parent(flows, &order[..pos], |p| {
                        p.component == Some(Component::Shuffle)
                            && p.tuple.src == f.tuple.src
                            && p.end <= f.start
                    })
                }),
                // A broadcast fetch (map node = tuple.src pulls the side
                // payload from a replica holder = tuple.dst) waits for the
                // write-pipeline hop that delivered the payload to that
                // holder.
                Component::Broadcast => best_parent(flows, &order[..pos], |p| {
                    p.component == Some(Component::HdfsWrite)
                        && p.tuple.dst == f.tuple.dst
                        && p.end <= f.start
                }),
                // Reads, control and unclassified traffic drive the job;
                // they replay at their captured times.
                _ => None,
            };
            let lag = match parent {
                Some(p) => f.start.saturating_since(flows[p].end),
                None => Duration::ZERO,
            };
            let entry = entries.len();
            entries.push(TraceEntry {
                spec: FlowSpec {
                    src: HostId(f.tuple.src.0),
                    dst: HostId(f.tuple.dst.0),
                    bytes: f.total_bytes(),
                    start: SimTime::from_nanos(f.start.as_nanos() - t0.as_nanos()),
                    tag: tag_of(component),
                },
                lag,
            });
            match parent {
                // `order` positions map 1:1 onto entry indices (entries are
                // built in `order`), so translate the trace index back.
                Some(p_idx) => {
                    let p_entry = order[..pos]
                        .iter()
                        .position(|&o| o == p_idx)
                        .expect("parent scanned earlier");
                    children[p_entry].push(entry);
                }
                None => roots.push(entry),
            }
        }
        Ok(TraceSource {
            entries,
            children,
            roots,
            injected: Vec::new(),
        })
    }

    /// Number of flows that will be injected over the whole replay.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of flows with an inferred dependency edge.
    #[must_use]
    pub fn dependent_count(&self) -> usize {
        self.entries.len() - self.roots.len()
    }

    /// The inferred dependency edges as `(parent, child)` entry indices
    /// (entries are numbered in capture start order).
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.children
            .iter()
            .enumerate()
            .flat_map(|(p, cs)| cs.iter().map(move |&c| (p, c)))
            .collect()
    }

    /// Entry index of each injected flow, in injection order — after a
    /// replay, element `k` is the entry that ran as `FlowId(k)`.
    #[must_use]
    pub fn injection_order(&self) -> &[usize] {
        &self.injected
    }
}

/// The latest-started flow among the already-scanned prefix that matches
/// `eligible`.
fn best_parent(
    flows: &[keddah_flowcap::FlowRecord],
    scanned: &[usize],
    eligible: impl Fn(&keddah_flowcap::FlowRecord) -> bool,
) -> Option<usize> {
    scanned
        .iter()
        .copied()
        .filter(|&j| eligible(&flows[j]))
        .max_by_key(|&j| (flows[j].start, j))
}

impl TrafficSource for TraceSource {
    fn on_start(&mut self) -> Vec<FlowSpec> {
        self.injected.extend(self.roots.iter().copied());
        self.roots.iter().map(|&e| self.entries[e].spec).collect()
    }

    fn on_flow_complete(&mut self, id: FlowId, result: &FlowResult) -> Vec<FlowSpec> {
        let entry = self.injected[id.0];
        let mut released = Vec::new();
        for &c in &self.children[entry] {
            let mut spec = self.entries[c].spec;
            spec.start = result.finish + self.entries[c].lag;
            self.injected.push(c);
            released.push(spec);
        }
        released
    }
}

// ---------------------------------------------------------------------
// ModelSource
// ---------------------------------------------------------------------

/// Hadoop's stage structure, used to hold back dependent components.
fn stage_of(component: Component) -> u8 {
    match component {
        Component::Shuffle | Component::Broadcast => 2,
        Component::HdfsWrite => 3,
        _ => 1, // HdfsRead, Control, Other drive the job
    }
}

/// Per-job generation state for [`ModelSource`].
#[derive(Debug, Clone)]
struct JobState {
    rng: StdRng,
    /// Job submission offset, seconds.
    start: f64,
    /// Sampled makespan (bounds the arrival-time clamp window).
    makespan: f64,
    /// Reducer container placements (with replacement, like YARN).
    reducer_nodes: Vec<u32>,
    /// Outstanding stage-1 HDFS reads gating the shuffle stage.
    pending_reads: usize,
    /// Outstanding shuffles gating the write stage.
    pending_shuffles: usize,
    shuffle_released: bool,
    write_released: bool,
}

/// Closed-loop job generation from a fitted [`KeddahModel`].
///
/// Where [`KeddahModel::generate_job`] samples every flow's start time up
/// front (open loop), this source samples each *stage* only when the
/// simulation reaches it: shuffles are drawn once all the job's HDFS
/// reads have completed, HDFS writes once all its shuffles have. Sampled
/// start times still follow the fitted arrival distributions, but are
/// floored at the stage's release time — so on a congested fabric the
/// shuffle and write waves slide later, as they would in a real job.
///
/// Deterministic in `seed`: each job owns an independent RNG and its
/// stages are sampled in a fixed order.
#[derive(Debug, Clone)]
pub struct ModelSource {
    model: KeddahModel,
    jobs: Vec<JobState>,
    /// FlowId -> (job index, component), in injection order.
    injected: Vec<(usize, Component)>,
}

impl ModelSource {
    /// Builds a source generating `n_jobs` jobs (consecutive seeds,
    /// starts staggered by `stagger_secs`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TopologyTooSmall`] if the model assumes more
    /// nodes than the topology has hosts.
    pub fn new(
        model: &KeddahModel,
        n_jobs: u32,
        seed: u64,
        stagger_secs: f64,
        topo: &Topology,
    ) -> Result<Self> {
        let workers = model.nodes.max(2);
        if workers >= topo.host_count() {
            return Err(CoreError::TopologyTooSmall {
                needed: workers + 1,
                available: topo.host_count(),
            });
        }
        let jobs = (0..n_jobs.max(1))
            .map(|i| {
                // Mirror generate_job's per-job seeding and draw order so
                // the sampled populations stay comparable.
                let mut rng = StdRng::seed_from_u64(seed + u64::from(i));
                let makespan = sample_scalar(&model.makespan, &mut rng).max(1.0);
                let reducer_nodes = (0..model.reducers.max(1))
                    .map(|_| rng.random_range(1..=workers))
                    .collect();
                JobState {
                    rng,
                    start: stagger_secs * f64::from(i),
                    makespan,
                    reducer_nodes,
                    pending_reads: 0,
                    pending_shuffles: 0,
                    shuffle_released: false,
                    write_released: false,
                }
            })
            .collect();
        Ok(ModelSource {
            model: model.clone(),
            jobs,
            injected: Vec::new(),
        })
    }

    /// Samples one component's flows for job `j`, with start times floored
    /// at `release` (absolute seconds), and records their injection order.
    fn sample_component(
        &mut self,
        j: usize,
        component: Component,
        release: f64,
        out: &mut Vec<FlowSpec>,
    ) -> usize {
        let Some(cm) = self.model.component(component).cloned() else {
            return 0;
        };
        let workers = self.model.nodes.max(2);
        let job = &mut self.jobs[j];
        let count = sample_scalar(&cm.count, &mut job.rng).round().max(0.0) as u64;
        for _ in 0..count {
            let bytes = cm.size_dist.sample(&mut job.rng).max(1.0) as u64;
            let start = cm
                .start_dist
                .sample(&mut job.rng)
                .clamp(0.0, job.makespan * 1.25);
            let (src, dst) = endpoints(cm.pattern, workers, &job.reducer_nodes, &mut job.rng);
            out.push(FlowSpec {
                src: HostId(src),
                dst: HostId(dst),
                bytes,
                start: SimTime::from_secs_f64((job.start + start).max(release)),
                tag: tag_of(component),
            });
            self.injected.push((j, component));
        }
        count as usize
    }

    /// Releases job `j`'s shuffle stage — shuffles plus broadcast
    /// distribution, which ride the same map-output barrier — at absolute
    /// time `release` (seconds), cascading straight to the write stage if
    /// the model has neither.
    fn release_shuffles(&mut self, j: usize, release: f64, out: &mut Vec<FlowSpec>) {
        if self.jobs[j].shuffle_released {
            return;
        }
        self.jobs[j].shuffle_released = true;
        let n = self.sample_component(j, Component::Shuffle, release, out)
            + self.sample_component(j, Component::Broadcast, release, out);
        self.jobs[j].pending_shuffles = n;
        if n == 0 {
            self.release_writes(j, release, out);
        }
    }

    /// Releases job `j`'s HDFS-write stage at absolute time `release`.
    fn release_writes(&mut self, j: usize, release: f64, out: &mut Vec<FlowSpec>) {
        if self.jobs[j].write_released {
            return;
        }
        self.jobs[j].write_released = true;
        self.sample_component(j, Component::HdfsWrite, release, out);
    }
}

impl TrafficSource for ModelSource {
    fn on_start(&mut self) -> Vec<FlowSpec> {
        let mut specs = Vec::new();
        for j in 0..self.jobs.len() {
            let job_start = self.jobs[j].start;
            // Stage 1 in canonical component order.
            for &component in Component::ALL {
                if stage_of(component) != 1 {
                    continue;
                }
                let n = self.sample_component(j, component, job_start, &mut specs);
                if component == Component::HdfsRead {
                    self.jobs[j].pending_reads = n;
                }
            }
            // No reads to wait for: the shuffle wave is unconstrained.
            if self.jobs[j].pending_reads == 0 {
                self.release_shuffles(j, job_start, &mut specs);
            }
        }
        specs
    }

    fn on_flow_complete(&mut self, id: FlowId, result: &FlowResult) -> Vec<FlowSpec> {
        let (j, component) = self.injected[id.0];
        let mut out = Vec::new();
        match component {
            Component::HdfsRead => {
                self.jobs[j].pending_reads -= 1;
                if self.jobs[j].pending_reads == 0 {
                    self.release_shuffles(j, result.finish.as_secs_f64(), &mut out);
                }
            }
            Component::Shuffle | Component::Broadcast => {
                self.jobs[j].pending_shuffles -= 1;
                if self.jobs[j].pending_shuffles == 0 {
                    self.release_writes(j, result.finish.as_secs_f64(), &mut out);
                }
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keddah_flowcap::{FiveTuple, FlowRecord, NodeId, TraceMeta};

    fn flow(
        src: u32,
        dst: u32,
        dst_port: u16,
        start_ms: u64,
        end_ms: u64,
        bytes: u64,
        component: Component,
    ) -> FlowRecord {
        FlowRecord {
            tuple: FiveTuple {
                src: NodeId(src),
                src_port: 40_000,
                dst: NodeId(dst),
                dst_port,
            },
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            fwd_bytes: bytes,
            rev_bytes: 0,
            packets: 2,
            component: Some(component),
        }
    }

    /// read(map node 1 <- dn 2), then shuffle(reducer 3 <- map 1), then a
    /// write-pipeline hop chain 3 -> 4 -> 5.
    fn chain_trace() -> Trace {
        Trace::new(
            TraceMeta::default(),
            vec![
                flow(1, 2, 50_010, 0, 1_000, 1 << 20, Component::HdfsRead),
                flow(3, 1, 13_562, 1_200, 2_000, 1 << 20, Component::Shuffle),
                flow(3, 4, 50_010, 2_500, 3_000, 1 << 20, Component::HdfsWrite),
                flow(4, 5, 50_010, 2_600, 3_100, 1 << 20, Component::HdfsWrite),
            ],
        )
    }

    #[test]
    fn trace_dependencies_are_inferred() {
        let topo = Topology::star(6, 1e9);
        let source = TraceSource::new(&chain_trace(), &topo).unwrap();
        assert_eq!(source.flow_count(), 4);
        // read is the only root; shuffle hangs off it, hop1 off the
        // shuffle, hop2 off hop1.
        assert_eq!(source.dependent_count(), 3);
        assert_eq!(source.roots, vec![0]);
        assert_eq!(source.children[0], vec![1]);
        assert_eq!(source.children[1], vec![2]);
        assert_eq!(source.children[2], vec![3]);
        // Captured lags survive: shuffle started 200 ms after the read
        // ended.
        assert_eq!(source.entries[1].lag, Duration::from_millis(200));
    }

    #[test]
    fn trace_source_releases_children_on_completion() {
        let topo = Topology::star(6, 1e9);
        let mut source = TraceSource::new(&chain_trace(), &topo).unwrap();
        let first = source.on_start();
        assert_eq!(first.len(), 1, "only the root read starts");
        // Pretend the read completed late (congestion): the shuffle must
        // start 200 ms after the *simulated* finish, not at 1.2 s.
        let result = FlowResult {
            spec: first[0],
            finish: SimTime::from_secs(10),
        };
        let released = source.on_flow_complete(FlowId(0), &result);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].start, SimTime::from_millis(10_200));
    }

    #[test]
    fn trace_source_rejects_small_topology() {
        let topo = Topology::star(3, 1e9);
        assert!(matches!(
            TraceSource::new(&chain_trace(), &topo),
            Err(CoreError::TopologyTooSmall { .. })
        ));
    }

    #[test]
    fn shuffle_without_prior_read_is_a_root() {
        // A shuffle whose map node never did a network read (data-local
        // map) has no parent and must replay at its captured time.
        let trace = Trace::new(
            TraceMeta::default(),
            vec![flow(3, 1, 13_562, 500, 900, 1 << 20, Component::Shuffle)],
        );
        let topo = Topology::star(4, 1e9);
        let mut source = TraceSource::new(&trace, &topo).unwrap();
        let first = source.on_start();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].start, SimTime::ZERO, "t0-shifted root");
    }
}
