//! Extraction of model-ready samples from capture traces.
//!
//! The fitting step does not consume raw traces: it consumes, per traffic
//! component, the three sample sets Keddah models — flow sizes, flow
//! start times (relative to job start), and per-job flow counts — pooled
//! over repeated runs of the same job configuration.

use std::collections::BTreeMap;

use keddah_flowcap::{Component, Trace};

/// Samples for one traffic component, pooled over runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentSample {
    /// Flow sizes in bytes (both directions summed), one per flow.
    pub sizes: Vec<f64>,
    /// Flow start times in seconds from each run's first flow.
    pub starts: Vec<f64>,
    /// Flows per job, one entry per run.
    pub counts: Vec<f64>,
}

impl ComponentSample {
    /// Total bytes across all pooled flows.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.sizes.iter().sum()
    }

    /// Mean flows per job.
    #[must_use]
    pub fn mean_count(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.counts.iter().sum::<f64>() / self.counts.len() as f64
        }
    }
}

/// The model-ready view of one job configuration: per-component samples
/// plus job-level covariates.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Workload name from the trace metadata.
    pub workload: String,
    /// Input size in bytes.
    pub input_bytes: u64,
    /// Configured reducer count.
    pub reducers: u32,
    /// HDFS replication factor.
    pub replication: u16,
    /// HDFS block size.
    pub block_bytes: u64,
    /// Worker node count.
    pub nodes: u32,
    /// Number of pooled runs.
    pub runs: usize,
    /// Job makespans in seconds, one per run.
    pub makespans: Vec<f64>,
    /// Per-component pooled samples.
    pub components: BTreeMap<Component, ComponentSample>,
}

impl Dataset {
    /// Builds a dataset from repeated captures of the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or the traces disagree on workload —
    /// pooling across different jobs would produce a meaningless model.
    #[must_use]
    pub fn from_traces(traces: &[Trace]) -> Dataset {
        assert!(!traces.is_empty(), "dataset needs at least one trace");
        let meta = traces[0].meta().clone();
        for t in traces {
            assert_eq!(
                t.meta().workload,
                meta.workload,
                "cannot pool traces of different workloads"
            );
        }
        let mut components: BTreeMap<Component, ComponentSample> = BTreeMap::new();
        let mut makespans = Vec::with_capacity(traces.len());
        for trace in traces {
            makespans.push(trace.makespan().as_secs_f64());
            for &component in Component::ALL {
                let sizes = trace.component_sizes(component);
                let starts = trace.component_starts(component);
                let entry = components.entry(component).or_default();
                entry.counts.push(sizes.len() as f64);
                entry.sizes.extend(sizes);
                entry.starts.extend(starts);
            }
        }
        // Drop components that never appeared.
        components.retain(|_, s| !s.sizes.is_empty());
        Dataset {
            workload: meta.workload,
            input_bytes: meta.input_bytes,
            reducers: meta.reducers,
            replication: meta.replication,
            block_bytes: meta.block_bytes,
            nodes: meta.nodes,
            runs: traces.len(),
            makespans,
            components,
        }
    }

    /// The pooled sample for one component, if it appeared in the traces.
    #[must_use]
    pub fn component(&self, component: Component) -> Option<&ComponentSample> {
        self.components.get(&component)
    }

    /// Mean makespan over runs, seconds.
    #[must_use]
    pub fn mean_makespan(&self) -> f64 {
        self.makespans.iter().sum::<f64>() / self.makespans.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keddah_des::SimTime;
    use keddah_flowcap::{FiveTuple, FlowRecord, NodeId, TraceMeta};

    fn trace(workload: &str, n_shuffle: usize) -> Trace {
        let flows: Vec<FlowRecord> = (0..n_shuffle)
            .map(|i| FlowRecord {
                tuple: FiveTuple {
                    src: NodeId(1),
                    src_port: 40_000 + i as u16,
                    dst: NodeId(2),
                    dst_port: 13_562,
                },
                start: SimTime::from_secs(i as u64),
                end: SimTime::from_secs(i as u64 + 1),
                fwd_bytes: 100,
                rev_bytes: 1000 * (i as u64 + 1),
                packets: 2,
                component: Some(Component::Shuffle),
            })
            .collect();
        Trace::new(
            TraceMeta {
                workload: workload.into(),
                input_bytes: 1 << 30,
                reducers: 4,
                replication: 3,
                block_bytes: 128 << 20,
                nodes: 8,
                seed: 0,
                counters: None,
            },
            flows,
        )
    }

    #[test]
    fn pools_across_runs() {
        let ds = Dataset::from_traces(&[trace("terasort", 3), trace("terasort", 5)]);
        assert_eq!(ds.runs, 2);
        let shuffle = ds.component(Component::Shuffle).unwrap();
        assert_eq!(shuffle.sizes.len(), 8);
        assert_eq!(shuffle.counts, vec![3.0, 5.0]);
        assert_eq!(shuffle.mean_count(), 4.0);
        assert_eq!(ds.makespans.len(), 2);
        assert!(ds.component(Component::HdfsRead).is_none());
    }

    #[test]
    fn starts_are_run_relative() {
        let ds = Dataset::from_traces(&[trace("terasort", 3)]);
        let shuffle = ds.component(Component::Shuffle).unwrap();
        assert_eq!(shuffle.starts, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn covariates_come_from_meta() {
        let ds = Dataset::from_traces(&[trace("wordcount", 1)]);
        assert_eq!(ds.workload, "wordcount");
        assert_eq!(ds.reducers, 4);
        assert_eq!(ds.nodes, 8);
    }

    #[test]
    #[should_panic(expected = "different workloads")]
    fn rejects_mixed_workloads() {
        let _ = Dataset::from_traces(&[trace("terasort", 1), trace("grep", 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn rejects_empty() {
        let _ = Dataset::from_traces(&[]);
    }
}
