//! Keddah: capture, model, and reproduce Hadoop network traffic.
//!
//! This crate is the paper's contribution — the toolchain that turns
//! captured Hadoop traffic into empirical models and regenerates
//! statistically equivalent traffic for network-simulator studies:
//!
//! 1. **Capture** ([`pipeline::Keddah::capture`]) — run jobs on the
//!    simulated testbed (`keddah-hadoop`) and collect classified flow
//!    traces;
//! 2. **Model** ([`fitting`]) — pool repeated runs into a [`dataset`],
//!    fit per-component flow-size / arrival / count models with KS-based
//!    family selection, producing a serializable [`model::KeddahModel`];
//! 3. **Generate** ([`generate`]) — sample synthetic jobs from the model;
//! 4. **Replay** ([`replay`]) — drive captured or generated traffic
//!    through the flow-level network simulator (`keddah-netsim`), either
//!    open loop (pre-computed start times) or closed loop ([`source`]:
//!    dependent flows released only when their parents complete under the
//!    simulated network);
//! 5. **Validate** ([`validate`]) — compare generated traffic to
//!    held-out captures (two-sample KS, volume and count errors).
//!
//! # Examples
//!
//! ```
//! use keddah_core::pipeline::Keddah;
//! use keddah_core::replay::{replay_jobs};
//! use keddah_hadoop::{ClusterSpec, HadoopConfig, JobSpec, Workload};
//! use keddah_netsim::{SimOptions, Topology};
//!
//! // Capture and model a TeraSort.
//! let cluster = ClusterSpec::racks(2, 4);
//! let traces = Keddah::capture(
//!     &cluster,
//!     &HadoopConfig::default(),
//!     &JobSpec::new(Workload::TeraSort, 1 << 30),
//!     2,
//!     1,
//! );
//! let model = Keddah::fit(&traces).unwrap();
//!
//! // Generate a synthetic job and replay it on a 4x-oversubscribed
//! // leaf-spine fabric the physical testbed never had.
//! let job = model.generate_job(7);
//! let topo = Topology::leaf_spine(3, 3, 2, 1e9, 4.0);
//! let report = replay_jobs(&[job], &topo, SimOptions::default()).unwrap();
//! assert!(report.makespan_secs() > 0.0);
//! ```

pub mod dataset;
pub mod family;
pub mod fitting;
pub mod generate;
pub mod mix;
pub mod model;
pub mod pipeline;
pub mod provision;
pub mod replay;
pub mod runner;
pub mod source;
pub mod stream;
pub mod validate;

pub use dataset::Dataset;
pub use family::ModelFamily;
pub use generate::{GenFlow, GeneratedJob};
pub use keddah_faults::{FaultGen, FaultKind, FaultSpec, TimedFault};
pub use mix::{JobMix, MixEntry};
pub use model::KeddahModel;
pub use pipeline::Keddah;
pub use provision::{
    provision, ConfigSpace, MixJob, ProvisionReport, ProvisionRequest, Slo, Surrogate,
};
pub use runner::{CellResult, MatrixCell, RunSummary, Runner, SweepBudget};
pub use source::{ModelSource, TraceSource};
pub use stream::{SketchMode, StreamEngine, StreamOptions};
pub use validate::ValidationReport;

use std::fmt;

/// Errors produced by the Keddah toolchain.
#[derive(Debug)]
pub enum CoreError {
    /// A statistical routine failed (empty/degenerate samples, fit
    /// divergence).
    Stat(keddah_stat::StatError),
    /// Not enough data to perform the requested step; the message names
    /// what was missing.
    InsufficientData {
        /// What was missing.
        what: &'static str,
    },
    /// Replay target has fewer hosts than the traffic references.
    TopologyTooSmall {
        /// Hosts the traffic needs.
        needed: u32,
        /// Hosts the topology provides.
        available: u32,
    },
    /// Model (de)serialization failed.
    Json(String),
    /// A fault schedule failed validation against the replay target.
    Fault(String),
    /// Streaming ingestion rejected input (e.g. a rotated capture file
    /// whose workload differs from the stream's).
    Stream(String),
    /// A provisioning search request or artefact was unusable, or the
    /// committed-artefact gate failed.
    Provision(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Stat(e) => write!(f, "statistics error: {e}"),
            CoreError::InsufficientData { what } => write!(f, "insufficient data: {what}"),
            CoreError::TopologyTooSmall { needed, available } => write!(
                f,
                "topology too small: traffic references host {needed} but only {available} hosts exist"
            ),
            CoreError::Json(msg) => write!(f, "model serialization error: {msg}"),
            CoreError::Fault(msg) => write!(f, "fault schedule error: {msg}"),
            CoreError::Stream(msg) => write!(f, "stream ingestion error: {msg}"),
            CoreError::Provision(msg) => write!(f, "provisioning error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Stat(e) => Some(e),
            _ => None,
        }
    }
}

impl From<keddah_stat::StatError> for CoreError {
    fn from(e: keddah_stat::StatError) -> Self {
        CoreError::Stat(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
