//! Cluster-scale workload generation: mixes of jobs over time.
//!
//! Real Hadoop clusters do not run one job at a time; they run a mix of
//! job types arriving continuously. A [`JobMix`] combines fitted
//! [`KeddahModel`]s with selection weights and a Poisson job-arrival
//! process, generating the aggregate traffic of a busy cluster over a
//! time horizon — the workload a network-simulator study actually wants
//! to inject.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::generate::GeneratedJob;
use crate::model::KeddahModel;
use crate::{CoreError, Result};

/// One entry of a job mix: a model and its relative arrival weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixEntry {
    /// The traffic model jobs of this type are generated from.
    pub model: KeddahModel,
    /// Relative likelihood of this type per arrival (weights need not
    /// sum to 1).
    pub weight: f64,
}

/// A weighted mix of job models with a Poisson arrival process.
///
/// # Examples
///
/// See `examples/concurrent_jobs.rs` for single-model overlays and
/// [`JobMix::generate`] for mixed-type cluster workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMix {
    entries: Vec<MixEntry>,
    /// Mean job arrivals per second.
    arrival_rate: f64,
}

impl JobMix {
    /// Creates a mix from `(model, weight)` pairs and a mean arrival
    /// rate in jobs/second.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientData`] if `entries` is empty, a
    /// weight is not finite and positive, or the rate is not positive.
    pub fn new(entries: Vec<MixEntry>, arrival_rate: f64) -> Result<JobMix> {
        if entries.is_empty() {
            return Err(CoreError::InsufficientData {
                what: "job mix needs at least one model",
            });
        }
        for e in &entries {
            if !(e.weight.is_finite() && e.weight > 0.0) {
                return Err(CoreError::InsufficientData {
                    what: "job mix weights must be positive",
                });
            }
        }
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(CoreError::InsufficientData {
                what: "job arrival rate must be positive",
            });
        }
        Ok(JobMix {
            entries,
            arrival_rate,
        })
    }

    /// The mix entries.
    #[must_use]
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    /// Mean arrivals per second.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Generates the jobs arriving in `[0, horizon_secs)`: exponential
    /// inter-arrival gaps at the configured rate, job type drawn by
    /// weight, each job's flows offset to its arrival time.
    /// Deterministic in `seed`.
    #[must_use]
    pub fn generate(&self, horizon_secs: f64, seed: u64) -> Vec<GeneratedJob> {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_weight: f64 = self.entries.iter().map(|e| e.weight).sum();
        let mut jobs = Vec::new();
        let mut t = 0.0;
        let mut job_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        loop {
            // Exponential gap via inverse transform.
            let u: f64 = rng.random::<f64>().clamp(1e-12, 1.0 - 1e-12);
            t += -u.ln() / self.arrival_rate;
            if t >= horizon_secs {
                break;
            }
            // Weighted type selection.
            let mut pick = rng.random::<f64>() * total_weight;
            let entry = self
                .entries
                .iter()
                .find(|e| {
                    pick -= e.weight;
                    pick <= 0.0
                })
                .unwrap_or_else(|| self.entries.last().expect("mix is non-empty"));
            job_seed = job_seed.wrapping_add(0x0100_0000_01b3);
            let mut job = entry.model.generate_job(job_seed);
            for f in &mut job.flows {
                f.start += t;
            }
            jobs.push(job);
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Keddah;
    use keddah_hadoop::{ClusterSpec, HadoopConfig, JobSpec, Workload};

    fn model(workload: Workload) -> KeddahModel {
        let traces = Keddah::capture(
            &ClusterSpec::racks(2, 3),
            &HadoopConfig::default().with_reducers(4),
            &JobSpec::new(workload, 512 << 20),
            2,
            5,
        );
        Keddah::fit(&traces).expect("model fits")
    }

    fn mix() -> JobMix {
        JobMix::new(
            vec![
                MixEntry {
                    model: model(Workload::TeraSort),
                    weight: 3.0,
                },
                MixEntry {
                    model: model(Workload::Grep),
                    weight: 1.0,
                },
            ],
            0.05, // one job every ~20 s
        )
        .expect("valid mix")
    }

    #[test]
    fn generates_poisson_stream() {
        let jobs = mix().generate(2_000.0, 1);
        // ~100 expected arrivals; accept a wide band.
        assert!(
            (50..=160).contains(&jobs.len()),
            "unexpected arrival count {}",
            jobs.len()
        );
        // Flows are offset to arrival times: later jobs start later.
        let first_flow_start = |j: &GeneratedJob| j.flows.first().map(|f| f.start).unwrap_or(0.0);
        assert!(first_flow_start(&jobs[0]) < first_flow_start(jobs.last().unwrap()));
    }

    #[test]
    fn respects_weights_roughly() {
        let m = mix();
        let jobs = m.generate(10_000.0, 2);
        let terasort = jobs.iter().filter(|j| {
            // TeraSort jobs carry far more bytes than Grep jobs.
            j.total_bytes() > 200 << 20
        });
        let heavy = terasort.count() as f64 / jobs.len() as f64;
        assert!(
            (0.55..0.95).contains(&heavy),
            "expected ~75% terasort, got {heavy}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let m = mix();
        assert_eq!(m.generate(500.0, 9), m.generate(500.0, 9));
        assert_ne!(m.generate(500.0, 9), m.generate(500.0, 10));
    }

    #[test]
    fn rejects_bad_mixes() {
        assert!(JobMix::new(vec![], 1.0).is_err());
        let e = MixEntry {
            model: model(Workload::Grep),
            weight: 0.0,
        };
        assert!(JobMix::new(vec![e.clone()], 1.0).is_err());
        let mut ok = e;
        ok.weight = 1.0;
        assert!(JobMix::new(vec![ok.clone()], 0.0).is_err());
        assert!(JobMix::new(vec![ok], 1.0).is_ok());
    }

    #[test]
    fn horizon_bounds_arrivals() {
        let jobs = mix().generate(1.0, 3);
        // Rate 0.05/s over 1 s: almost always zero arrivals.
        assert!(jobs.len() <= 2);
    }
}
