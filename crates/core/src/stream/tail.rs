//! Rotated-capture-directory tailing.
//!
//! `keddah serve` watches a directory that a capture pipeline rotates
//! files into (the "Live Pipeline" shape: tcpdump writes `cap.0`,
//! `cap.1`, … and a post-processor consumes finished rotations). The
//! tailer's contract:
//!
//! * a file is **ready** once its size is unchanged across two
//!   consecutive polls — a cheap writer-finished heuristic that makes
//!   atomic renames ready on the second poll and never hands a
//!   half-written rotation to the parser;
//! * ready files are returned in **sorted name order**, so rotation
//!   sequences ingest deterministically regardless of directory
//!   enumeration order;
//! * each file is consumed **once**; the tailer remembers what it has
//!   returned for the daemon's lifetime.
//!
//! Only `.jsonl` (flow traces) and `.txt` (packet text) files are
//! considered; everything else in the directory is ignored.

use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// Polls a directory for finished capture rotations.
#[derive(Debug)]
pub struct DirTailer {
    dir: PathBuf,
    /// Last observed size of not-yet-ready candidates.
    pending: HashMap<PathBuf, u64>,
    processed: BTreeSet<PathBuf>,
}

impl DirTailer {
    /// Creates a tailer over `dir`. The directory may not exist yet; the
    /// poll simply finds nothing until it does.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> DirTailer {
        DirTailer {
            dir: dir.into(),
            pending: HashMap::new(),
            processed: BTreeSet::new(),
        }
    }

    /// The watched directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Files already handed out.
    #[must_use]
    pub fn processed(&self) -> usize {
        self.processed.len()
    }

    /// One poll: returns files that became ready, sorted by name.
    ///
    /// # Errors
    ///
    /// Returns directory enumeration errors; a vanished candidate file is
    /// not an error (rotations may be cleaned up concurrently).
    pub fn poll(&mut self) -> std::io::Result<Vec<PathBuf>> {
        let mut ready = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ready),
            Err(e) => return Err(e),
        };
        for entry in entries {
            // A transient per-entry failure (e.g. a rotation unlinked
            // between readdir and stat) must not abort the whole poll
            // and drop the other candidates on the floor.
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if self.processed.contains(&path) || !is_capture_file(&path) {
                continue;
            }
            let Ok(meta) = entry.metadata() else {
                continue; // vanished mid-poll
            };
            if !meta.is_file() {
                continue;
            }
            let size = meta.len();
            match self.pending.get(&path) {
                Some(&seen) if seen == size => {
                    self.pending.remove(&path);
                    self.processed.insert(path.clone());
                    ready.push(path);
                }
                _ => {
                    self.pending.insert(path, size);
                }
            }
        }
        ready.sort();
        Ok(ready)
    }
}

fn is_capture_file(path: &Path) -> bool {
    matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("jsonl") | Some("txt")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("keddah-tail-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_is_ready_after_two_stable_polls() {
        let dir = tmp_dir("stable");
        let mut tailer = DirTailer::new(&dir);
        assert!(tailer.poll().unwrap().is_empty(), "empty dir");

        std::fs::write(dir.join("cap.0.jsonl"), "header\n").unwrap();
        assert!(tailer.poll().unwrap().is_empty(), "first sighting");
        let ready = tailer.poll().unwrap();
        assert_eq!(ready, vec![dir.join("cap.0.jsonl")]);
        assert!(tailer.poll().unwrap().is_empty(), "consumed once");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn growing_file_is_held_back() {
        let dir = tmp_dir("growing");
        let mut tailer = DirTailer::new(&dir);
        std::fs::write(dir.join("cap.0.txt"), "a\n").unwrap();
        assert!(tailer.poll().unwrap().is_empty());
        std::fs::write(dir.join("cap.0.txt"), "a\nb\n").unwrap(); // grew
        assert!(tailer.poll().unwrap().is_empty(), "size changed: not ready");
        let ready = tailer.poll().unwrap();
        assert_eq!(ready.len(), 1, "stable again: ready");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ready_files_come_out_in_name_order() {
        let dir = tmp_dir("order");
        let mut tailer = DirTailer::new(&dir);
        std::fs::write(dir.join("cap.1.jsonl"), "b\n").unwrap();
        std::fs::write(dir.join("cap.0.jsonl"), "a\n").unwrap();
        std::fs::write(dir.join("notes.md"), "ignored\n").unwrap();
        let _ = tailer.poll().unwrap();
        let ready = tailer.poll().unwrap();
        assert_eq!(
            ready,
            vec![dir.join("cap.0.jsonl"), dir.join("cap.1.jsonl")]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_not_an_error() {
        let mut tailer = DirTailer::new("/nonexistent/keddah-tail-test");
        assert!(tailer.poll().unwrap().is_empty());
    }
}
