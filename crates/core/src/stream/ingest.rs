//! Panic-free ingestion of one rotated capture file.
//!
//! The daemon loop hands every ready rotation to [`ingest_path`], which
//! turns the two hostile failure modes of live capture directories into
//! structured errors plus `stream/` counters instead of panics or lost
//! prefixes:
//!
//! * **Rotated-away files** — the file vanished between the tailer's
//!   readiness check and the open (cleanup raced us): counted under
//!   `stream/vanished_files`, reported, engine state untouched;
//! * **Half-written rotations** — a `.jsonl` rotation whose tail is a
//!   truncated record: the intact prefix is ingested, damaged lines are
//!   counted under `stream/parse_errors`, and the run still completes.
//!
//! Unreadable streams and malformed headers (nothing salvageable) count
//! under `stream/io_errors` / `stream/malformed_runs` respectively.

use std::io::ErrorKind;
use std::path::Path;

use keddah_flowcap::{tcpdump, Trace, TraceError, TraceMeta};
use keddah_obs::Obs;

use super::StreamEngine;
use crate::{CoreError, Result};

/// What one rotated file contributed to the stream.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// True when this run triggered a refit that produced a model.
    pub refit: bool,
    /// Malformed lines that were skipped: `(1-based line, message)`.
    pub parse_errors: Vec<(usize, String)>,
}

/// Ingests one rotated capture file (`.jsonl` flow trace or `.txt`
/// packet text) as one run, ending the run at EOF.
///
/// `workload` labels packet-text runs, which carry no header. All
/// failure modes return [`CoreError::Stream`] after bumping the matching
/// `stream/` counter — the caller (the serve loop) logs and keeps going;
/// nothing on this path panics.
///
/// # Errors
///
/// [`CoreError::Stream`] when the file vanished, cannot be read, has an
/// unusable header, carries an unsupported extension, or its run is
/// rejected by the engine (workload mismatch). Refit failures propagate
/// from [`StreamEngine::end_run`].
pub fn ingest_path(
    engine: &mut StreamEngine,
    obs: &Obs,
    workload: &str,
    path: &Path,
) -> Result<IngestReport> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            obs.add("stream", "vanished_files", 1);
            return Err(CoreError::Stream(format!(
                "{}: rotated away before ingest",
                path.display()
            )));
        }
        Err(e) => {
            obs.add("stream", "io_errors", 1);
            return Err(CoreError::Stream(format!(
                "{}: open failed: {e}",
                path.display()
            )));
        }
    };
    let reader = std::io::BufReader::new(file);
    match ext {
        "jsonl" => {
            let (trace, rejects) = match Trace::read_jsonl_lenient(reader) {
                Ok(parsed) => parsed,
                Err(e) => {
                    // Without a header nothing can be attributed; an I/O
                    // failure mid-read may have lost arbitrary records.
                    let counter = match &e {
                        TraceError::Io(_) => "io_errors",
                        _ => "malformed_runs",
                    };
                    obs.add("stream", counter, 1);
                    return Err(CoreError::Stream(format!("{}: {e}", path.display())));
                }
            };
            obs.add("stream", "parse_errors", rejects.len() as u64);
            let meta = trace.meta().clone();
            for flow in trace.into_flows() {
                engine.ingest_flow(flow);
            }
            let refit = engine.end_run(&meta)?;
            Ok(IngestReport {
                refit,
                parse_errors: rejects,
            })
        }
        "txt" => {
            let parsed = match tcpdump::read_text_lenient(reader) {
                Ok(parsed) => parsed,
                Err(e) => {
                    obs.add("stream", "io_errors", 1);
                    return Err(CoreError::Stream(format!("{}: {e}", path.display())));
                }
            };
            obs.add("stream", "parse_errors", parsed.errors.len() as u64);
            for packet in parsed.packets {
                engine.ingest_packet(packet);
            }
            let refit = engine.end_run(&TraceMeta {
                workload: workload.to_string(),
                ..TraceMeta::default()
            })?;
            Ok(IngestReport {
                refit,
                parse_errors: parsed.errors,
            })
        }
        other => Err(CoreError::Stream(format!(
            "{}: unsupported capture extension `{other}`",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamOptions;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("keddah-ingest-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn engine(obs: &Obs) -> StreamEngine {
        StreamEngine::new(StreamOptions::default(), obs).unwrap()
    }

    /// Failure mode 1: the rotation was cleaned up between the tailer's
    /// readiness decision and the open. Structured error, counter, no
    /// engine damage.
    #[test]
    fn rotated_away_file_is_counted_not_fatal() {
        let obs = Obs::enabled();
        let mut engine = engine(&obs);
        let err = ingest_path(
            &mut engine,
            &obs,
            "stream",
            Path::new("/nonexistent/keddah/cap.0.jsonl"),
        )
        .unwrap_err();
        assert!(err.to_string().contains("rotated away"), "{err}");
        assert_eq!(obs.metrics().counter("stream", "vanished_files"), 1);
        assert_eq!(engine.runs(), 0, "engine state untouched");
    }

    /// A two-flow rotation JSONL, as the capture pipeline would write it.
    fn sample_jsonl() -> Vec<u8> {
        use keddah_des::SimTime;
        use keddah_flowcap::{ports, FiveTuple, FlowRecord, NodeId};
        let flows = (0..2u64)
            .map(|i| FlowRecord {
                tuple: FiveTuple {
                    src: NodeId(1),
                    src_port: 40_000 + i as u16,
                    dst: NodeId(2),
                    dst_port: ports::SHUFFLE,
                },
                start: SimTime::from_millis(10 * i),
                end: SimTime::from_millis(10 * i + 5),
                fwd_bytes: 100,
                rev_bytes: 20_000,
                packets: 2,
                component: None,
            })
            .collect();
        let trace = Trace::new(
            TraceMeta {
                workload: "terasort".into(),
                input_bytes: 1 << 30,
                reducers: 4,
                replication: 3,
                block_bytes: 128 << 20,
                nodes: 8,
                seed: 7,
                counters: None,
            },
            flows,
        );
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        buf
    }

    /// Failure mode 2: a half-written rotation. The intact prefix is
    /// ingested as a run; the damage is counted, not fatal.
    #[test]
    fn half_written_rotation_ingests_the_good_prefix() {
        let dir = tmp_dir("half");
        let path = dir.join("cap.0.jsonl");
        let buf = sample_jsonl();
        // Chop the writer mid-record: the last line becomes torn JSON.
        std::fs::write(&path, &buf[..buf.len() - 25]).unwrap();
        let obs = Obs::enabled();
        let mut engine = engine(&obs);
        let report = ingest_path(&mut engine, &obs, "stream", &path).unwrap();
        assert_eq!(report.parse_errors.len(), 1, "the torn tail is reported");
        assert_eq!(engine.runs(), 1, "the run still completed");
        assert_eq!(engine.flows_total(), 1, "the intact flow survived");
        assert_eq!(obs.metrics().counter("stream", "parse_errors"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A rotation whose *header* is garbage has nothing to salvage.
    #[test]
    fn garbage_header_is_a_malformed_run() {
        let dir = tmp_dir("garbage-header");
        let path = dir.join("cap.0.jsonl");
        std::fs::write(&path, "not a header\n").unwrap();
        let obs = Obs::enabled();
        let mut engine = engine(&obs);
        assert!(ingest_path(&mut engine, &obs, "stream", &path).is_err());
        assert_eq!(obs.metrics().counter("stream", "malformed_runs"), 1);
        assert_eq!(engine.runs(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_extension_is_rejected_cleanly() {
        let dir = tmp_dir("ext");
        let path = dir.join("cap.0.pcap");
        std::fs::write(&path, "binary\n").unwrap();
        let obs = Obs::enabled();
        let mut engine = engine(&obs);
        let err = ingest_path(&mut engine, &obs, "stream", &path).unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn packet_text_runs_are_labelled_with_the_workload() {
        let dir = tmp_dir("txt");
        let path = dir.join("cap.0.txt");
        let mut body = String::from("garbage line that is not a packet\n");
        for i in 0..24 {
            body.push_str(&format!(
                "{i}.000000 IP node1.{} > node2.13562: Flags [.], length 5000\n",
                40_000 + i,
            ));
        }
        std::fs::write(&path, body).unwrap();
        let obs = Obs::enabled();
        let mut engine = engine(&obs);
        let report = ingest_path(&mut engine, &obs, "wordcount", &path).unwrap();
        assert_eq!(report.parse_errors.len(), 1);
        assert_eq!(engine.meta().unwrap().workload, "wordcount");
        assert_eq!(engine.flows_total(), 24);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
