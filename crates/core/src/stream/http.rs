//! Hand-rolled HTTP/1.1 status endpoint for `keddah serve`.
//!
//! Deliberately tiny: a nonblocking [`TcpListener`] accept loop over
//! `std` only (no new dependencies), answering four `GET` routes with
//! `Connection: close` responses:
//!
//! | route      | body                                               |
//! |------------|----------------------------------------------------|
//! | `/healthz` | `ok` (liveness probe)                              |
//! | `/model`   | current fitted model JSON; `404` until first refit |
//! | `/metrics` | the obs [`MetricsSnapshot`] JSON                   |
//! | `/status`  | `{generation, runs, flows, files, last_error}`     |
//!
//! Requests are served inline on the accept thread — responses are
//! in-memory strings, so there is nothing to parallelize — and the loop
//! polls a shutdown flag between accepts, so SIGTERM turns into a clean
//! exit within one poll interval.
//!
//! [`MetricsSnapshot`]: keddah_obs::MetricsSnapshot

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration as StdDuration;

use keddah_obs::{Counter, Obs};

use super::ServeStatus;

/// Shared handle to the serve loop's published status.
pub type SharedStatus = Arc<Mutex<ServeStatus>>;

/// Request counters for the status endpoint, registered under the
/// `stream` subsystem. Cheap to clone into the accept loop; the default
/// value is inert (all counting disabled), which keeps tests that do not
/// care about metrics one constructor shorter.
#[derive(Debug, Clone, Default)]
pub struct HttpStats {
    requests: Counter,
    malformed: Counter,
}

impl HttpStats {
    /// Registers the endpoint's counters (`stream/http_requests`,
    /// `stream/http_malformed`) with `obs`.
    #[must_use]
    pub fn new(obs: &Obs) -> HttpStats {
        HttpStats {
            requests: obs.counter("stream", "http_requests"),
            malformed: obs.counter("stream", "http_malformed"),
        }
    }
}

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: StdDuration = StdDuration::from_millis(20);

/// Per-connection read/write budget; status requests are tiny.
const IO_TIMEOUT: StdDuration = StdDuration::from_millis(500);

/// Largest request head we bother reading.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Binds the endpoint and switches the listener to nonblocking accepts.
/// Returns the listener plus the bound address (so `--http 127.0.0.1:0`
/// reports the kernel-chosen port).
///
/// # Errors
///
/// Returns any bind/configuration error.
pub fn bind(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    Ok((listener, local))
}

/// Runs the accept loop until `shutdown` is set. Connection-level errors
/// are swallowed (a half-closed probe must not kill the daemon), and a
/// malformed request line gets a `400` plus a `stream/http_malformed`
/// bump rather than any chance to disturb the loop.
pub fn serve_http(
    listener: TcpListener,
    status: SharedStatus,
    shutdown: Arc<AtomicBool>,
    stats: HttpStats,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream, &status, &stats);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle(mut stream: TcpStream, status: &SharedStatus, stats: &HttpStats) -> std::io::Result<()> {
    stats.requests.inc();
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    // Read until the end of the request head; the routes take no bodies.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < MAX_REQUEST_BYTES {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (code, reason, content_type, body) = if method.is_empty() || !path.starts_with('/') {
        // Not even an HTTP request line (binary garbage, empty probe, a
        // request-target that is not origin-form): answer 400 and count.
        stats.malformed.inc();
        (
            400,
            "Bad Request",
            "text/plain",
            "malformed request line\n".to_string(),
        )
    } else if method != "GET" {
        (
            405,
            "Method Not Allowed",
            "text/plain",
            "only GET is supported\n".to_string(),
        )
    } else {
        route(path, status)
    };
    let response = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn route(path: &str, status: &SharedStatus) -> (u16, &'static str, &'static str, String) {
    let snapshot = match status.lock() {
        Ok(guard) => guard.clone(),
        Err(_) => {
            return (
                500,
                "Internal Server Error",
                "text/plain",
                "status lock poisoned\n".to_string(),
            )
        }
    };
    match path {
        "/healthz" => (200, "OK", "text/plain", "ok\n".to_string()),
        "/model" => match snapshot.model_json {
            Some(json) => (200, "OK", "application/json", json),
            None => (
                404,
                "Not Found",
                "text/plain",
                "no model fitted yet\n".to_string(),
            ),
        },
        "/metrics" => {
            let body = if snapshot.metrics_json.is_empty() {
                "{}\n".to_string()
            } else {
                snapshot.metrics_json
            };
            (200, "OK", "application/json", body)
        }
        "/status" => (200, "OK", "application/json", status_json(&snapshot)),
        _ => (
            404,
            "Not Found",
            "text/plain",
            "routes: /healthz /model /metrics /status\n".to_string(),
        ),
    }
}

fn status_json(s: &ServeStatus) -> String {
    let value = serde::Value::Object(vec![
        ("generation".to_string(), serde::Value::U64(s.generation)),
        ("runs".to_string(), serde::Value::U64(s.runs)),
        ("flows".to_string(), serde::Value::U64(s.flows)),
        ("files".to_string(), serde::Value::U64(s.files)),
        (
            "model_fitted".to_string(),
            serde::Value::Bool(s.model_json.is_some()),
        ),
        (
            "last_error".to_string(),
            match &s.last_error {
                Some(e) => serde::Value::Str(e.clone()),
                None => serde::Value::Null,
            },
        ),
    ]);
    let mut json = serde::json::write_compact(&value);
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        let code: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn routes_respond_and_shutdown_is_clean() {
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let status = super::super::shared_status();
        {
            let mut guard = status.lock().unwrap();
            guard.runs = 2;
            guard.flows = 96;
            guard.files = 2;
            guard.metrics_json = "{\"subsystems\":{}}".to_string();
        }
        let obs = Obs::enabled();
        let stats = HttpStats::new(&obs);
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let (status, shutdown) = (Arc::clone(&status), Arc::clone(&shutdown));
            let stats = stats.clone();
            std::thread::spawn(move || serve_http(listener, status, shutdown, stats))
        };

        let (code, body) = get(addr, "/healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, _) = get(addr, "/model");
        assert_eq!(code, 404, "no model fitted yet");

        status.lock().unwrap().model_json = Some("{\"version\":1}".to_string());
        status.lock().unwrap().generation = 1;
        let (code, body) = get(addr, "/model");
        assert_eq!((code, body.as_str()), (200, "{\"version\":1}"));

        let (code, body) = get(addr, "/status");
        assert_eq!(code, 200);
        assert!(body.contains("\"generation\":1"), "body: {body}");
        assert!(body.contains("\"flows\":96"), "body: {body}");
        assert!(body.contains("\"last_error\":null"), "body: {body}");

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("subsystems"));

        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);

        // Failure mode 3: a garbage request line. The daemon answers 400,
        // counts it, and keeps serving well-formed requests afterwards.
        {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(b"\x00\x01\x02 utter nonsense\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            conn.read_to_string(&mut response).unwrap();
            assert!(response.starts_with("HTTP/1.1 400"), "got: {response}");
        }
        let (code, body) = get(addr, "/healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"), "still alive");
        assert_eq!(obs.metrics().counter("stream", "http_malformed"), 1);
        assert!(obs.metrics().counter("stream", "http_requests") >= 8);

        shutdown.store(true, Ordering::SeqCst);
        handle.join().expect("accept loop exits cleanly");
    }
}
