//! Streaming capture ingestion with bounded memory and online refits.
//!
//! The offline pipeline is batch end to end: capture a set of runs, load
//! every trace, pool them into a [`Dataset`], sort the world, fit. This
//! module is the `keddah serve` engine — the same modelling pipeline
//! restructured around an unbounded stream of rotated capture files:
//!
//! * **Bounded connection state** — packet input is reassembled by
//!   [`keddah_flowcap::StreamAssembler`] (fixed-capacity table, eager
//!   timeout-driven LRU eviction, `stream/evicted_flows` counters);
//! * **Bounded model state** — per-component size/start samples feed a
//!   [`SampleStore`]: either the exact offline representation (for
//!   equivalence testing and small deployments) or a Greenwald–Khanna
//!   quantile sketch with rank error ε, making cross-run model state
//!   `O(1/ε)` per component no matter how many runs stream past.
//!   Per-*run* bookkeeping (one makespan and one count per component per
//!   run) stays exact: it grows with runs, not flows, which is where the
//!   memory actually goes;
//! * **Online refit** — at every `refit_runs`-th run boundary the engine
//!   materializes a dataset from the stores and re-runs the ordinary
//!   [`fit_model`] path, atomically swapping in the new model and
//!   bumping a generation counter.
//!
//! # Offline ≡ online
//!
//! With [`SketchMode::Exact`], ingesting rotated files `A, B, …` and
//! refitting produces **byte-identical** model JSON to `keddah fit A B …`:
//! each run boundary replays exactly what [`Dataset::from_traces`] does
//! per trace (same flow order, same per-run `t0`, same zero-count
//! entries, same float summation order). With [`SketchMode::Gk`], fitted
//! percentiles differ from offline by at most the sketch's rank error ε
//! (see `keddah_stat::sketch` for the bound and `tests/stream_model.rs`
//! for the proptests that pin it).
//!
//! The working set per run is one rotation's flows — a run must end
//! before its samples are folded into the stores, because start times are
//! relative to the run's earliest flow, which is unknown until the run
//! completes.

mod http;
mod ingest;
mod tail;

pub use http::{bind, serve_http, HttpStats, SharedStatus};
pub use ingest::{ingest_path, IngestReport};
pub use tail::DirTailer;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use keddah_des::Duration;
use keddah_flowcap::stream::{StreamConfig, StreamStats};
use keddah_flowcap::{classify, Component, FlowRecord, PacketRecord, StreamAssembler, TraceMeta};
use keddah_obs::{Counter, Gauge, Obs};
use keddah_stat::sketch::SampleStore;

use crate::dataset::{ComponentSample, Dataset};
use crate::fitting::fit_model;
use crate::model::KeddahModel;
use crate::{CoreError, Result};

/// How the engine stores per-component size/start samples across runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SketchMode {
    /// Keep every sample, exactly as the offline pipeline would. Memory
    /// grows with total flows; refits are byte-identical to `keddah fit`
    /// over the same files. This is the degenerate sketch configuration
    /// the equivalence tests use.
    Exact,
    /// Greenwald–Knanna quantile sketches with rank error `epsilon`.
    /// Memory is `O(1/epsilon · log(εn))` per sample set; fitted
    /// percentiles are within `epsilon` rank error of offline.
    Gk {
        /// Rank error bound, in `(0, 0.5)`.
        epsilon: f64,
    },
}

/// Configuration for [`StreamEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Idle gap after which an open connection is evicted (packet input).
    pub idle_timeout: Duration,
    /// Connection-table capacity (packet input).
    pub max_active: usize,
    /// Sample storage mode for the cross-run model state.
    pub sketch: SketchMode,
    /// Refit after every this many completed runs.
    pub refit_runs: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            idle_timeout: keddah_flowcap::stream::StreamConfig::default().idle_timeout,
            max_active: keddah_flowcap::stream::DEFAULT_MAX_ACTIVE,
            sketch: SketchMode::Gk { epsilon: 0.01 },
            refit_runs: 1,
        }
    }
}

/// Per-component sample stores pooled across runs.
#[derive(Debug, Clone)]
struct ComponentStores {
    sizes: SampleStore,
    starts: SampleStore,
    /// Flows per run — one entry per run, kept exact (grows with runs).
    counts: Vec<f64>,
}

/// The `keddah serve` ingestion engine: incremental assembly,
/// per-component sample accumulation, and online model refits.
///
/// Feed it flows ([`ingest_flow`](Self::ingest_flow)) or packets
/// ([`ingest_packet`](Self::ingest_packet)), then call
/// [`end_run`](Self::end_run) at every rotated-file boundary. The engine
/// refits on its `refit_runs` cadence and exposes the current model.
pub struct StreamEngine {
    opts: StreamOptions,
    /// Prototype sample store, built (and therefore validated) once in
    /// [`StreamEngine::new`]; fresh component stores are clones. This is
    /// what lets the hot path stay panic-free: no re-validation of
    /// `epsilon` ever happens after startup.
    store_proto: SampleStore,
    assembler: StreamAssembler,
    last_asm_stats: StreamStats,
    /// Metadata of the first run; later runs must match its workload.
    meta: Option<TraceMeta>,
    /// Completed flows of the run currently being ingested.
    run_flows: Vec<FlowRecord>,
    components: BTreeMap<Component, ComponentStores>,
    makespans: Vec<f64>,
    runs: usize,
    runs_since_fit: usize,
    flows_total: u64,
    generation: u64,
    model: Option<KeddahModel>,
    c_records: Counter,
    c_flows: Counter,
    c_evicted: Counter,
    c_evicted_capacity: Counter,
    c_runs: Counter,
    c_runs_rejected: Counter,
    c_refits: Counter,
    c_fit_errors: Counter,
    g_generation: Gauge,
    g_active: Gauge,
}

impl StreamEngine {
    /// Creates an engine; obs counters register under the `stream`
    /// subsystem (inert if `obs` is disabled).
    ///
    /// # Errors
    ///
    /// Returns a stat error if the sketch epsilon is out of range.
    pub fn new(opts: StreamOptions, obs: &Obs) -> Result<StreamEngine> {
        // Validate epsilon eagerly so a bad flag fails at startup, not at
        // the first refit; the validated store becomes the prototype
        // every component store is cloned from.
        let store_proto = match opts.sketch {
            SketchMode::Exact => SampleStore::exact(),
            SketchMode::Gk { epsilon } => SampleStore::sketch(epsilon)?,
        };
        let opts = StreamOptions {
            refit_runs: opts.refit_runs.max(1),
            ..opts
        };
        Ok(StreamEngine {
            store_proto,
            assembler: StreamAssembler::with_config(StreamConfig {
                idle_timeout: opts.idle_timeout,
                max_active: opts.max_active,
            }),
            last_asm_stats: StreamStats::default(),
            meta: None,
            run_flows: Vec::new(),
            components: BTreeMap::new(),
            makespans: Vec::new(),
            runs: 0,
            runs_since_fit: 0,
            flows_total: 0,
            generation: 0,
            model: None,
            c_records: obs.counter("stream", "records_ingested"),
            c_flows: obs.counter("stream", "flows_completed"),
            c_evicted: obs.counter("stream", "evicted_flows"),
            c_evicted_capacity: obs.counter("stream", "evicted_capacity"),
            c_runs: obs.counter("stream", "runs_ingested"),
            c_runs_rejected: obs.counter("stream", "runs_rejected"),
            c_refits: obs.counter("stream", "refits"),
            c_fit_errors: obs.counter("stream", "fit_errors"),
            g_generation: obs.gauge("stream", "model_generation"),
            g_active: obs.gauge("stream", "active_connections"),
            opts,
        })
    }

    fn new_store(&self) -> SampleStore {
        self.store_proto.clone()
    }

    /// Ingests one already-assembled flow (rotated `.jsonl` trace input).
    pub fn ingest_flow(&mut self, flow: FlowRecord) {
        self.c_records.inc();
        self.run_flows.push(flow);
    }

    /// Ingests one packet (rotated packet-text input) through the
    /// bounded-memory assembler.
    pub fn ingest_packet(&mut self, packet: PacketRecord) {
        self.c_records.inc();
        self.assembler.push(packet);
        self.g_active.set_max(self.assembler.open() as u64);
        // Keep the completed-record buffer small between run boundaries.
        if self.assembler.ready() >= 1024 {
            let done = self.assembler.drain();
            self.absorb_assembled(done);
        }
    }

    /// Moves assembler output into the current run, folding eviction
    /// counter deltas into obs.
    fn absorb_assembled(&mut self, done: Vec<FlowRecord>) {
        let stats = self.assembler.stats();
        self.c_evicted
            .add(stats.evicted() - self.last_asm_stats.evicted());
        self.c_evicted_capacity
            .add(stats.evicted_capacity - self.last_asm_stats.evicted_capacity);
        self.last_asm_stats = stats;
        self.run_flows.extend(done);
    }

    /// Ends the current run (one rotated capture file) and refits on the
    /// configured cadence.
    ///
    /// Mirrors [`Dataset::from_traces`] for this run exactly: flows are
    /// sorted by the batch assembler's key, unlabelled flows classified,
    /// the run's makespan and per-component counts recorded (zeros
    /// included), and sizes/starts appended to the sample stores in the
    /// same order the offline pool would see.
    ///
    /// Returns `Ok(true)` when a refit happened and produced a model.
    ///
    /// # Errors
    ///
    /// [`CoreError::Stream`] if `meta`'s workload differs from the
    /// stream's (the run's flows are discarded); fitting errors other
    /// than insufficient data propagate from the refit.
    pub fn end_run(&mut self, meta: &TraceMeta) -> Result<bool> {
        let flushed = self.assembler.flush();
        self.absorb_assembled(flushed);
        let mut flows = std::mem::take(&mut self.run_flows);

        match &self.meta {
            None => self.meta = Some(meta.clone()),
            Some(first) if first.workload != meta.workload => {
                self.c_runs_rejected.inc();
                return Err(CoreError::Stream(format!(
                    "run workload {:?} does not match stream workload {:?}",
                    meta.workload, first.workload
                )));
            }
            Some(_) => {}
        }

        flows.sort_by_key(|f| {
            (
                f.start,
                f.tuple.src.0,
                f.tuple.src_port,
                f.tuple.dst.0,
                f.tuple.dst_port,
            )
        });
        for f in &mut flows {
            if f.component.is_none() {
                f.component = Some(classify::classify(f));
            }
        }
        self.c_flows.add(flows.len() as u64);
        self.flows_total += flows.len() as u64;

        let start = flows.iter().map(|f| f.start).min();
        let end = flows.iter().map(|f| f.end).max();
        let makespan = match (start, end) {
            (Some(s), Some(e)) => e.saturating_since(s).as_secs_f64(),
            _ => 0.0,
        };
        self.makespans.push(makespan);
        let t0 = start.unwrap_or(keddah_des::SimTime::ZERO);

        for &component in Component::ALL {
            let mode = self.new_store();
            let entry = self
                .components
                .entry(component)
                .or_insert_with(|| ComponentStores {
                    sizes: mode.clone(),
                    starts: mode,
                    counts: Vec::new(),
                });
            let mut n = 0u64;
            for f in flows
                .iter()
                .filter(|f| f.component.unwrap_or(Component::Other) == component)
            {
                entry.sizes.push(f.total_bytes() as f64);
                entry
                    .starts
                    .push(f.start.saturating_since(t0).as_secs_f64());
                n += 1;
            }
            entry.counts.push(n as f64);
        }

        self.runs += 1;
        self.runs_since_fit += 1;
        self.c_runs.inc();

        if self.runs_since_fit >= self.opts.refit_runs {
            self.runs_since_fit = 0;
            self.refit()
        } else {
            Ok(false)
        }
    }

    /// Materializes a [`Dataset`] from the stores and re-runs the offline
    /// fitting path, swapping the model in on success.
    ///
    /// Returns `Ok(false)` when no component has enough flows yet.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures other than insufficient data.
    pub fn refit(&mut self) -> Result<bool> {
        let Some(dataset) = self.dataset() else {
            return Ok(false);
        };
        match fit_model(&dataset) {
            Ok(model) => {
                self.model = Some(model);
                self.generation += 1;
                self.c_refits.inc();
                self.g_generation.set(self.generation);
                Ok(true)
            }
            Err(CoreError::InsufficientData { .. }) => Ok(false),
            Err(e) => {
                self.c_fit_errors.inc();
                Err(e)
            }
        }
    }

    /// The current sample pool as an offline-shaped dataset, or `None`
    /// before the first completed run.
    #[must_use]
    pub fn dataset(&self) -> Option<Dataset> {
        let meta = self.meta.as_ref()?;
        if self.runs == 0 {
            return None;
        }
        let mut components = BTreeMap::new();
        for (&component, stores) in &self.components {
            if stores.sizes.count() == 0 {
                continue; // mirrors from_traces' retain on non-empty sizes
            }
            components.insert(
                component,
                ComponentSample {
                    sizes: stores.sizes.fit_samples(),
                    starts: stores.starts.fit_samples(),
                    counts: stores.counts.clone(),
                },
            );
        }
        Some(Dataset {
            workload: meta.workload.clone(),
            input_bytes: meta.input_bytes,
            reducers: meta.reducers,
            replication: meta.replication,
            block_bytes: meta.block_bytes,
            nodes: meta.nodes,
            runs: self.runs,
            makespans: self.makespans.clone(),
            components,
        })
    }

    /// The most recently fitted model, if any run has produced one.
    #[must_use]
    pub fn model(&self) -> Option<&KeddahModel> {
        self.model.as_ref()
    }

    /// Current model as JSON (byte-identical to what `keddah fit` writes
    /// in exact mode over the same files).
    #[must_use]
    pub fn model_json(&self) -> Option<String> {
        self.model.as_ref().map(KeddahModel::to_json)
    }

    /// Model generation: bumped once per successful refit.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Completed runs ingested.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Completed flows folded into the model state.
    #[must_use]
    pub fn flows_total(&self) -> u64 {
        self.flows_total
    }

    /// The stream's metadata (from the first run), if any.
    #[must_use]
    pub fn meta(&self) -> Option<&TraceMeta> {
        self.meta.as_ref()
    }

    /// Connections currently open in the packet assembler.
    #[must_use]
    pub fn open_connections(&self) -> usize {
        self.assembler.open()
    }

    /// The effective options.
    #[must_use]
    pub fn options(&self) -> &StreamOptions {
        &self.opts
    }
}

/// Live status published by the serve loop and rendered by the HTTP
/// endpoint. Held behind [`SharedStatus`].
#[derive(Debug, Clone, Default)]
pub struct ServeStatus {
    /// Model generation (0 until the first successful refit).
    pub generation: u64,
    /// Completed runs ingested.
    pub runs: u64,
    /// Completed flows ingested.
    pub flows: u64,
    /// Rotated files consumed.
    pub files: u64,
    /// Current model JSON, once fitted.
    pub model_json: Option<String>,
    /// Current metrics snapshot JSON.
    pub metrics_json: String,
    /// Most recent ingest error, if any.
    pub last_error: Option<String>,
}

/// Creates the shared status cell the HTTP server reads.
#[must_use]
pub fn shared_status() -> SharedStatus {
    Arc::new(Mutex::new(ServeStatus::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use keddah_des::SimTime;
    use keddah_flowcap::{ports, FiveTuple, NodeId, Trace};

    fn meta(workload: &str) -> TraceMeta {
        TraceMeta {
            workload: workload.into(),
            input_bytes: 1 << 30,
            reducers: 4,
            replication: 3,
            block_bytes: 128 << 20,
            nodes: 8,
            seed: 7,
            counters: None,
        }
    }

    fn flow(i: u64, dst_port: u16, bytes: u64) -> FlowRecord {
        FlowRecord {
            tuple: FiveTuple {
                src: NodeId(1),
                src_port: 40_000 + (i % 1_000) as u16,
                dst: NodeId(2),
                dst_port,
            },
            start: SimTime::from_millis(10 * i),
            end: SimTime::from_millis(10 * i + 5),
            fwd_bytes: 100,
            rev_bytes: bytes,
            packets: 2,
            component: None,
        }
    }

    fn run_trace(workload: &str, n: u64, seed: u64) -> Trace {
        let mut flows: Vec<FlowRecord> = (0..n)
            .map(|i| flow(i, ports::SHUFFLE, 10_000 + 997 * ((i + seed) % 91)))
            .collect();
        classify::classify_all(&mut flows);
        Trace::new(meta(workload), flows)
    }

    #[test]
    fn exact_mode_matches_offline_fit_bytewise() {
        let traces = [run_trace("terasort", 40, 1), run_trace("terasort", 56, 2)];
        let obs = Obs::enabled();
        let mut engine = StreamEngine::new(
            StreamOptions {
                sketch: SketchMode::Exact,
                ..StreamOptions::default()
            },
            &obs,
        )
        .unwrap();
        for t in &traces {
            for f in t.flows() {
                engine.ingest_flow(*f);
            }
            assert!(engine.end_run(t.meta()).unwrap());
        }
        let offline = fit_model(&Dataset::from_traces(&traces)).unwrap();
        assert_eq!(engine.generation(), 2);
        assert_eq!(engine.model_json().unwrap(), offline.to_json());
        let snap = obs.metrics();
        assert_eq!(snap.counter("stream", "runs_ingested"), 2);
        assert_eq!(snap.counter("stream", "flows_completed"), 96);
        assert_eq!(snap.counter("stream", "refits"), 2);
    }

    #[test]
    fn sketch_mode_fits_with_bounded_state() {
        let obs = Obs::disabled();
        let mut engine = StreamEngine::new(
            StreamOptions {
                sketch: SketchMode::Gk { epsilon: 0.02 },
                ..StreamOptions::default()
            },
            &obs,
        )
        .unwrap();
        for seed in 0..4 {
            let t = run_trace("terasort", 500, seed);
            for f in t.flows() {
                engine.ingest_flow(*f);
            }
            engine.end_run(t.meta()).unwrap();
        }
        let model = engine.model().expect("model fitted");
        assert_eq!(model.workload, "terasort");
        let ds = engine.dataset().unwrap();
        let shuffle = ds.component(Component::Shuffle).unwrap();
        // The sketch caps materialized samples regardless of stream size.
        assert!(shuffle.sizes.len() <= keddah_stat::sketch::PSEUDO_SAMPLE_CAP);
        assert_eq!(shuffle.counts, vec![500.0; 4]);
    }

    #[test]
    fn mismatched_workload_is_rejected_and_counted() {
        let obs = Obs::enabled();
        let mut engine = StreamEngine::new(StreamOptions::default(), &obs).unwrap();
        let a = run_trace("terasort", 12, 0);
        for f in a.flows() {
            engine.ingest_flow(*f);
        }
        engine.end_run(a.meta()).unwrap();
        let b = run_trace("grep", 12, 0);
        for f in b.flows() {
            engine.ingest_flow(*f);
        }
        assert!(matches!(
            engine.end_run(b.meta()),
            Err(CoreError::Stream(_))
        ));
        assert_eq!(engine.runs(), 1);
        assert_eq!(obs.metrics().counter("stream", "runs_rejected"), 1);
        // The rejected run's flows must not leak into the next run.
        let c = run_trace("terasort", 12, 3);
        for f in c.flows() {
            engine.ingest_flow(*f);
        }
        engine.end_run(c.meta()).unwrap();
        assert_eq!(engine.flows_total(), 24);
    }

    #[test]
    fn packet_ingest_evicts_and_still_fits() {
        let obs = Obs::enabled();
        let mut engine = StreamEngine::new(
            StreamOptions {
                idle_timeout: Duration::from_secs(1),
                max_active: 8,
                sketch: SketchMode::Exact,
                refit_runs: 1,
            },
            &obs,
        )
        .unwrap();
        // 32 concurrent shuffle connections through an 8-slot table: the
        // overflow must surface as capacity evictions, not lost bytes.
        for i in 0..32u64 {
            engine.ingest_packet(PacketRecord::data(
                SimTime::from_millis(i),
                NodeId(1),
                40_000 + i as u16,
                NodeId(2),
                ports::SHUFFLE,
                5_000,
            ));
        }
        engine.end_run(&meta("terasort")).unwrap();
        assert_eq!(engine.flows_total(), 32);
        let snap = obs.metrics();
        assert_eq!(snap.counter("stream", "evicted_capacity"), 24);
        assert_eq!(snap.counter("stream", "evicted_flows"), 24);
        let ds = engine.dataset().unwrap();
        let shuffle = ds.component(Component::Shuffle).unwrap();
        assert_eq!(shuffle.sizes.len(), 32);
        assert_eq!(shuffle.total_bytes(), 32.0 * 5_000.0);
    }

    #[test]
    fn refit_cadence_is_respected() {
        let obs = Obs::disabled();
        let mut engine = StreamEngine::new(
            StreamOptions {
                refit_runs: 2,
                sketch: SketchMode::Exact,
                ..StreamOptions::default()
            },
            &obs,
        )
        .unwrap();
        for seed in 0..4 {
            let t = run_trace("terasort", 20, seed);
            for f in t.flows() {
                engine.ingest_flow(*f);
            }
            let refitted = engine.end_run(t.meta()).unwrap();
            assert_eq!(refitted, seed % 2 == 1, "refit only every second run");
        }
        assert_eq!(engine.generation(), 2);
    }

    #[test]
    fn no_model_before_enough_flows() {
        let obs = Obs::disabled();
        let mut engine = StreamEngine::new(StreamOptions::default(), &obs).unwrap();
        let t = run_trace("terasort", 3, 0); // below MIN_FLOWS
        for f in t.flows() {
            engine.ingest_flow(*f);
        }
        assert!(!engine.end_run(t.meta()).unwrap());
        assert!(engine.model().is_none());
        assert_eq!(engine.generation(), 0);
    }
}
