//! Model families: extrapolating Keddah models across input sizes.
//!
//! A single [`KeddahModel`] describes one `(workload, input size,
//! config)` point. The evaluation's scaling analysis (Figure 5) shows how
//! each component's traffic grows with input size; a [`ModelFamily`]
//! operationalizes that: it holds models fitted at several *anchor* input
//! sizes, fits per-component power laws to their flow counts and to the
//! job makespan, and can synthesize a model for *unseen* input sizes —
//! counts from the scaling laws, per-flow size distributions from the
//! nearest anchor (per-flow sizes in Hadoop are set by block size and
//! partition width, not total input), and arrival distributions from the
//! nearest anchor stretched to the predicted makespan.

use std::collections::BTreeMap;

use keddah_flowcap::Component;
use keddah_stat::regression::PowerLaw;
use serde::{Deserialize, Serialize};

use crate::model::{KeddahModel, ScalarModel};
use crate::{CoreError, Result};

/// A family of Keddah models over input size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFamily {
    /// Workload all anchors share.
    pub workload: String,
    /// Anchor models, sorted by input size (ascending).
    pub anchors: Vec<KeddahModel>,
    /// Flows-per-job power laws (`count = a * GiB^b`) per component.
    pub count_laws: BTreeMap<Component, PowerLaw>,
    /// Makespan power law (`seconds = a * GiB^b`).
    pub makespan_law: PowerLaw,
}

impl ModelFamily {
    /// Fits a family from models of the same workload and configuration
    /// at different input sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InsufficientData`] with fewer than two
    /// distinct anchor sizes, or if the anchors mix workloads or
    /// configurations (reducers/replication/block size), which would
    /// conflate covariates.
    pub fn fit(models: &[KeddahModel]) -> Result<ModelFamily> {
        if models.len() < 2 {
            return Err(CoreError::InsufficientData {
                what: "model family needs at least two anchor input sizes",
            });
        }
        let first = &models[0];
        for m in models {
            if m.workload != first.workload
                || m.reducers != first.reducers
                || m.replication != first.replication
                || m.block_bytes != first.block_bytes
                || m.nodes != first.nodes
            {
                return Err(CoreError::InsufficientData {
                    what: "model family anchors must share workload and configuration",
                });
            }
        }
        let mut anchors = models.to_vec();
        anchors.sort_by_key(|m| m.input_bytes);
        anchors.dedup_by_key(|m| m.input_bytes);
        if anchors.len() < 2 {
            return Err(CoreError::InsufficientData {
                what: "model family needs at least two distinct anchor input sizes",
            });
        }

        let gib: Vec<f64> = anchors
            .iter()
            .map(|m| m.input_bytes as f64 / (1u64 << 30) as f64)
            .collect();

        // Per-component count laws over the anchors where the component
        // exists everywhere (a component absent at small inputs cannot be
        // extrapolated reliably and falls back to nearest-anchor counts).
        let mut count_laws = BTreeMap::new();
        for &component in Component::ALL {
            if !anchors.iter().all(|m| m.component(component).is_some()) {
                continue;
            }
            let counts: Vec<f64> = anchors
                .iter()
                .map(|m| {
                    m.component(component)
                        .expect("checked above")
                        .count
                        .mean
                        .max(0.5)
                })
                .collect();
            if let Ok(law) = PowerLaw::fit(&gib, &counts) {
                count_laws.insert(component, law);
            }
        }

        let makespans: Vec<f64> = anchors.iter().map(|m| m.makespan.mean.max(1.0)).collect();
        let makespan_law = PowerLaw::fit(&gib, &makespans).map_err(CoreError::Stat)?;

        Ok(ModelFamily {
            workload: first.workload.clone(),
            anchors,
            count_laws,
            makespan_law,
        })
    }

    /// The anchor whose input size is closest (in log-space) to
    /// `input_bytes`.
    #[must_use]
    pub fn nearest_anchor(&self, input_bytes: u64) -> &KeddahModel {
        let target = (input_bytes.max(1) as f64).ln();
        self.anchors
            .iter()
            .min_by(|a, b| {
                let da = ((a.input_bytes as f64).ln() - target).abs();
                let db = ((b.input_bytes as f64).ln() - target).abs();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("families hold at least two anchors")
    }

    /// Synthesizes a model for an arbitrary input size.
    ///
    /// Counts and makespan come from the fitted power laws; per-flow size
    /// distributions are taken from the nearest anchor unchanged;
    /// arrival distributions are the nearest anchor's stretched by the
    /// ratio of predicted to anchor makespan.
    #[must_use]
    pub fn model_at(&self, input_bytes: u64) -> KeddahModel {
        let anchor = self.nearest_anchor(input_bytes);
        let gib = (input_bytes.max(1) as f64) / (1u64 << 30) as f64;
        let predicted_makespan = self.makespan_law.predict(gib).max(1.0);
        let stretch = (predicted_makespan / anchor.makespan.mean.max(1.0)).max(1e-6);

        let mut model = anchor.clone();
        model.input_bytes = input_bytes;
        model.makespan = ScalarModel {
            mean: predicted_makespan,
            // Keep the anchor's relative spread.
            std: anchor.makespan.std * stretch,
        };
        for (component, cm) in &mut model.components {
            if let Some(law) = self.count_laws.get(component) {
                let predicted = law.predict(gib).max(0.0);
                let rel_std = if cm.count.mean > 0.0 {
                    cm.count.std / cm.count.mean
                } else {
                    0.0
                };
                cm.count = ScalarModel {
                    mean: predicted,
                    std: predicted * rel_std,
                };
            }
            cm.start_dist = cm.start_dist.scaled(stretch);
        }
        model
    }

    /// Serializes the family to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("family serializes")
    }

    /// Parses a family from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Json`] on malformed input.
    pub fn from_json(json: &str) -> Result<ModelFamily> {
        serde_json::from_str(json).map_err(|e| CoreError::Json(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Keddah;
    use keddah_hadoop::{ClusterSpec, HadoopConfig, JobSpec, Workload};

    fn anchor(gib: u64, seed: u64) -> KeddahModel {
        let cluster = ClusterSpec::racks(2, 4);
        let config = HadoopConfig::default().with_reducers(4);
        let traces = Keddah::capture(
            &cluster,
            &config,
            &JobSpec::new(Workload::TeraSort, gib << 30),
            3,
            seed,
        );
        Keddah::fit(&traces).expect("anchor fits")
    }

    #[test]
    fn family_fits_and_counts_scale() {
        let anchors = vec![anchor(1, 10), anchor(2, 20), anchor(4, 30)];
        let family = ModelFamily::fit(&anchors).expect("family fits");
        let shuffle_law = family
            .count_laws
            .get(&Component::Shuffle)
            .expect("shuffle law exists");
        // Shuffle flow count ~ maps x reducers ~ linear in input.
        assert!(
            (0.6..1.4).contains(&shuffle_law.exponent),
            "exponent = {}",
            shuffle_law.exponent
        );
        assert!(
            shuffle_law.r_squared > 0.9,
            "R2 = {}",
            shuffle_law.r_squared
        );
    }

    #[test]
    fn extrapolated_model_predicts_unseen_size() {
        let anchors = vec![anchor(1, 10), anchor(2, 20), anchor(4, 30)];
        let family = ModelFamily::fit(&anchors).expect("family fits");
        // Predict at 8 GiB and compare against a real capture there.
        let predicted = family.model_at(8 << 30);
        let actual = anchor(8, 40);
        let p = predicted
            .component(Component::Shuffle)
            .expect("has shuffle");
        let a = actual.component(Component::Shuffle).expect("has shuffle");
        let count_err = (p.count.mean - a.count.mean).abs() / a.count.mean;
        assert!(
            count_err < 0.35,
            "count error {count_err}: {} vs {}",
            p.count.mean,
            a.count.mean
        );
        // Predicted makespan within 2x of the observed one.
        let mk_ratio = predicted.makespan.mean / actual.makespan.mean;
        assert!((0.5..2.0).contains(&mk_ratio), "makespan ratio {mk_ratio}");
        assert_eq!(predicted.input_bytes, 8 << 30);
    }

    #[test]
    fn generated_job_from_extrapolated_model_scales_volume() {
        let anchors = vec![anchor(1, 10), anchor(4, 30)];
        let family = ModelFamily::fit(&anchors).expect("family fits");
        let small = family.model_at(1 << 30).generate_job(1);
        let big = family.model_at(8 << 30).generate_job(1);
        let ratio = big.total_bytes() as f64 / small.total_bytes() as f64;
        assert!(
            ratio > 3.0,
            "8x input should yield much more traffic: {ratio}"
        );
    }

    #[test]
    fn family_rejects_bad_anchor_sets() {
        let a = anchor(1, 10);
        assert!(ModelFamily::fit(std::slice::from_ref(&a)).is_err());
        assert!(
            ModelFamily::fit(&[a.clone(), a.clone()]).is_err(),
            "duplicate sizes"
        );
        let mut b = anchor(2, 20);
        b.reducers += 1;
        assert!(ModelFamily::fit(&[a, b]).is_err(), "mixed configurations");
    }

    #[test]
    fn family_json_roundtrip() {
        let family = ModelFamily::fit(&[anchor(1, 10), anchor(2, 20)]).expect("fits");
        let back = ModelFamily::from_json(&family.to_json()).expect("parses");
        assert_eq!(family, back);
    }

    #[test]
    fn nearest_anchor_log_space() {
        let family = ModelFamily::fit(&[anchor(1, 10), anchor(4, 30)]).expect("fits");
        assert_eq!(family.nearest_anchor(1 << 30).input_bytes, 1 << 30);
        assert_eq!(family.nearest_anchor(16 << 30).input_bytes, 4 << 30);
        // 2 GiB is the log-midpoint: either anchor is acceptable, but the
        // choice must be deterministic.
        let pick = family.nearest_anchor(2 << 30).input_bytes;
        assert_eq!(pick, family.nearest_anchor(2 << 30).input_bytes);
    }
}
