//! Model validation: generated traffic vs. captured traffic.
//!
//! Keddah validates its models by regenerating traffic and comparing it
//! against held-out captures: per component, the two-sample KS distance
//! between flow-size samples, and the relative error of total volume and
//! flow count. This module produces that comparison (the evaluation's
//! Table 3).

use std::collections::BTreeMap;

use keddah_flowcap::{Component, Trace};
use keddah_stat::ks::ks_two_sample;
use serde::{Deserialize, Serialize};

use crate::generate::GeneratedJob;
use crate::model::KeddahModel;
use crate::replay::ReplayReport;
use crate::{CoreError, Result};

/// The comparison for one traffic component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentValidation {
    /// The component compared.
    pub component: Component,
    /// Two-sample KS distance between captured and generated flow sizes.
    pub ks_statistic: f64,
    /// Asymptotic p-value of that KS test.
    pub ks_p_value: f64,
    /// `|generated - captured| / captured` for total bytes.
    pub volume_error: f64,
    /// `|generated - captured| / captured` for flow count (means per
    /// job).
    pub count_error: f64,
    /// Captured flows per job (mean).
    pub captured_count: f64,
    /// Generated flows per job (mean).
    pub generated_count: f64,
}

/// A full validation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Per-component comparisons, in canonical component order.
    pub components: Vec<ComponentValidation>,
}

impl ValidationReport {
    /// The comparison row for one component, if both sides had flows.
    #[must_use]
    pub fn component(&self, component: Component) -> Option<&ComponentValidation> {
        self.components.iter().find(|c| c.component == component)
    }

    /// The worst (largest) per-component KS distance.
    #[must_use]
    pub fn worst_ks(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.ks_statistic)
            .fold(0.0, f64::max)
    }

    /// The worst per-component volume error.
    #[must_use]
    pub fn worst_volume_error(&self) -> f64 {
        self.components
            .iter()
            .map(|c| c.volume_error)
            .fold(0.0, f64::max)
    }
}

/// Validates a model by generating `generated_jobs` synthetic jobs and
/// comparing them, per component, against the captured traces.
///
/// Only components present in the model are compared (the model already
/// skipped negligible ones).
///
/// # Errors
///
/// Returns [`CoreError::InsufficientData`] if `traces` is empty or no
/// component could be compared.
pub fn validate_model(
    model: &KeddahModel,
    traces: &[Trace],
    generated_jobs: u32,
    seed: u64,
) -> Result<ValidationReport> {
    if traces.is_empty() {
        return Err(CoreError::InsufficientData {
            what: "validation needs at least one capture trace",
        });
    }
    let jobs: Vec<GeneratedJob> = (0..generated_jobs)
        .map(|i| model.generate_job(seed + u64::from(i)))
        .collect();

    // Pool captured and generated sizes per component.
    let mut captured: BTreeMap<Component, Vec<f64>> = BTreeMap::new();
    for trace in traces {
        for &c in Component::ALL {
            captured
                .entry(c)
                .or_default()
                .extend(trace.component_sizes(c));
        }
    }
    let mut generated: BTreeMap<Component, Vec<f64>> = BTreeMap::new();
    for job in &jobs {
        for &c in Component::ALL {
            generated
                .entry(c)
                .or_default()
                .extend(job.component_sizes(c));
        }
    }

    let mut components = Vec::new();
    for &component in Component::ALL {
        if model.component(component).is_none() {
            continue;
        }
        let cap = &captured[&component];
        let gen = &generated[&component];
        if cap.is_empty() || gen.is_empty() {
            continue;
        }
        let ks = ks_two_sample(cap, gen).map_err(CoreError::Stat)?;
        let cap_vol: f64 = cap.iter().sum::<f64>() / traces.len() as f64;
        let gen_vol: f64 = gen.iter().sum::<f64>() / jobs.len() as f64;
        let cap_count = cap.len() as f64 / traces.len() as f64;
        let gen_count = gen.len() as f64 / jobs.len() as f64;
        components.push(ComponentValidation {
            component,
            ks_statistic: ks.statistic,
            ks_p_value: ks.p_value,
            volume_error: (gen_vol - cap_vol).abs() / cap_vol.max(1.0),
            count_error: (gen_count - cap_count).abs() / cap_count.max(1.0),
            captured_count: cap_count,
            generated_count: gen_count,
        });
    }
    if components.is_empty() {
        return Err(CoreError::InsufficientData {
            what: "no component present in both captured and generated traffic",
        });
    }
    Ok(ValidationReport { components })
}

/// The FCT comparison for one component across two replays of the same
/// traffic (e.g. open- vs closed-loop, or two fabrics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayComparison {
    /// The component compared.
    pub component: Component,
    /// Two-sample KS distance between the replays' FCT samples.
    pub ks_statistic: f64,
    /// Asymptotic p-value of that KS test.
    pub ks_p_value: f64,
    /// Mean FCT in the first replay, seconds.
    pub mean_fct_a: f64,
    /// Mean FCT in the second replay, seconds.
    pub mean_fct_b: f64,
}

/// Compares two replay reports per component: two-sample KS on the FCT
/// samples plus mean FCTs. The replay-level counterpart of
/// [`validate_model`], used to quantify how much the replay discipline
/// (open vs closed loop) or the fabric changes completion times.
///
/// # Errors
///
/// Returns [`CoreError::InsufficientData`] if no component has flows in
/// both replays, or [`CoreError::Stat`] if the KS test fails.
pub fn compare_replays(a: &ReplayReport, b: &ReplayReport) -> Result<Vec<ReplayComparison>> {
    let mut rows = Vec::new();
    for &component in Component::ALL {
        let (Some(fa), Some(fb)) = (
            a.fct_by_component.get(&component),
            b.fct_by_component.get(&component),
        ) else {
            continue;
        };
        if fa.is_empty() || fb.is_empty() {
            continue;
        }
        let ks = ks_two_sample(fa, fb).map_err(CoreError::Stat)?;
        rows.push(ReplayComparison {
            component,
            ks_statistic: ks.statistic,
            ks_p_value: ks.p_value,
            mean_fct_a: fa.iter().sum::<f64>() / fa.len() as f64,
            mean_fct_b: fb.iter().sum::<f64>() / fb.len() as f64,
        });
    }
    if rows.is_empty() {
        return Err(CoreError::InsufficientData {
            what: "no component has flows in both replays",
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::fitting::fit_model;
    use keddah_des::SimTime;
    use keddah_flowcap::{FiveTuple, FlowRecord, NodeId, TraceMeta};
    use keddah_stat::distributions::{Distribution, LogNormal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A synthetic capture whose shuffle sizes follow a known lognormal.
    fn synthetic_trace(seed: u64, n: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = LogNormal::new(14.0, 0.6).unwrap();
        let flows: Vec<FlowRecord> = (0..n)
            .map(|i| {
                let bytes = d.sample(&mut rng) as u64;
                FlowRecord {
                    tuple: FiveTuple {
                        src: NodeId(1 + (i as u32 % 7)),
                        src_port: 40_000 + i as u16,
                        dst: NodeId(8),
                        dst_port: 13_562,
                    },
                    start: SimTime::from_millis((i as u64) * 400),
                    end: SimTime::from_millis((i as u64) * 400 + 300),
                    fwd_bytes: 0,
                    rev_bytes: bytes,
                    packets: 3,
                    component: Some(Component::Shuffle),
                }
            })
            .collect();
        Trace::new(
            TraceMeta {
                workload: "terasort".into(),
                input_bytes: 1 << 30,
                reducers: 4,
                replication: 3,
                block_bytes: 128 << 20,
                nodes: 8,
                seed,
                counters: None,
            },
            flows,
        )
    }

    #[test]
    fn model_validates_against_its_training_data() {
        let traces: Vec<Trace> = (0..5).map(|s| synthetic_trace(s, 300)).collect();
        let model = fit_model(&Dataset::from_traces(&traces)).unwrap();
        let report = validate_model(&model, &traces, 5, 99).unwrap();
        let shuffle = report.component(Component::Shuffle).unwrap();
        assert!(shuffle.ks_statistic < 0.1, "KS = {}", shuffle.ks_statistic);
        assert!(
            shuffle.volume_error < 0.2,
            "volume error = {}",
            shuffle.volume_error
        );
        assert!(
            shuffle.count_error < 0.1,
            "count error = {}",
            shuffle.count_error
        );
        assert!(report.worst_ks() >= shuffle.ks_statistic);
        assert!(report.worst_volume_error() >= 0.0);
    }

    #[test]
    fn mismatched_model_scores_poorly() {
        let traces: Vec<Trace> = (0..3).map(|s| synthetic_trace(s, 300)).collect();
        let model = fit_model(&Dataset::from_traces(&traces)).unwrap();
        // Validate against traces with 20x larger flows: KS must blow up.
        let mut rng = StdRng::seed_from_u64(1234);
        let big = LogNormal::new(17.0, 0.6).unwrap();
        let wrong: Vec<Trace> = (0..3)
            .map(|s| {
                let mut t = synthetic_trace(100 + s, 300);
                let flows: Vec<FlowRecord> = t
                    .flows()
                    .iter()
                    .map(|f| {
                        let mut f = *f;
                        f.rev_bytes = big.sample(&mut rng) as u64;
                        f
                    })
                    .collect();
                t = Trace::new(t.meta().clone(), flows);
                t
            })
            .collect();
        let report = validate_model(&model, &wrong, 3, 5).unwrap();
        assert!(report.worst_ks() > 0.5, "KS = {}", report.worst_ks());
    }

    #[test]
    fn empty_traces_error() {
        let traces: Vec<Trace> = (0..2).map(|s| synthetic_trace(s, 100)).collect();
        let model = fit_model(&Dataset::from_traces(&traces)).unwrap();
        assert!(matches!(
            validate_model(&model, &[], 2, 0),
            Err(CoreError::InsufficientData { .. })
        ));
    }
}
