//! The end-to-end Keddah pipeline: capture → model → generate → replay.
//!
//! [`Keddah`] is a thin facade over the toolchain stages for the common
//! paths; each stage is also available directly ([`crate::dataset`],
//! [`crate::fitting`], [`crate::generate`], [`crate::replay`],
//! [`crate::validate`]) when an experiment needs to customize one step.

use keddah_flowcap::Trace;
use keddah_hadoop::{
    run_repeats, run_repeats_seeded, ClusterSpec, HadoopConfig, JobSpec, Workload,
};
use keddah_netsim::{SimOptions, Topology};

use keddah_faults::FaultSpec;

use crate::dataset::Dataset;
use crate::fitting::fit_model;
use crate::model::KeddahModel;
use crate::replay::{
    replay_model_closed, replay_model_closed_faulted, replay_trace, replay_trace_closed,
    replay_trace_closed_faulted, replay_trace_faulted, ReplayReport,
};
use crate::validate::{validate_model, ValidationReport};
use crate::Result;

/// The Keddah toolchain entry points.
///
/// # Examples
///
/// Full loop — capture a job on the simulated testbed, model it,
/// validate the model against the capture:
///
/// ```
/// use keddah_core::pipeline::Keddah;
/// use keddah_hadoop::{ClusterSpec, HadoopConfig, JobSpec, Workload};
///
/// let cluster = ClusterSpec::racks(2, 4);
/// let config = HadoopConfig::default();
/// let job = JobSpec::new(Workload::TeraSort, 1 << 30);
/// let traces = Keddah::capture(&cluster, &config, &job, 3, 42);
/// let model = Keddah::fit(&traces).unwrap();
/// let report = Keddah::validate(&model, &traces, 3, 7).unwrap();
/// assert!(report.worst_ks() < 0.5);
/// ```
#[derive(Debug)]
pub struct Keddah;

impl Keddah {
    /// Stage 1 — capture: runs `repeats` executions of `job` on the
    /// simulated cluster and returns their classified traces.
    #[must_use]
    pub fn capture(
        cluster: &ClusterSpec,
        config: &HadoopConfig,
        job: &JobSpec,
        repeats: u32,
        seed_base: u64,
    ) -> Vec<Trace> {
        run_repeats(cluster, config, job, seed_base, repeats)
            .into_iter()
            .map(|run| run.trace)
            .collect()
    }

    /// Stage 1 variant taking an explicit seed stream: one capture per
    /// seed, in order. This is how the experiment [`crate::runner`]
    /// drives captures — its per-cell splitmix64 derivation hands each
    /// cell a seed stream that is independent of matrix shape and worker
    /// scheduling.
    #[must_use]
    pub fn capture_seeded(
        cluster: &ClusterSpec,
        config: &HadoopConfig,
        job: &JobSpec,
        seeds: &[u64],
    ) -> Vec<Trace> {
        run_repeats_seeded(cluster, config, job, seeds)
            .into_iter()
            .map(|run| run.trace)
            .collect()
    }

    /// Stage 2 — model: pools the traces into a dataset and fits a
    /// [`KeddahModel`].
    ///
    /// # Errors
    ///
    /// Propagates fitting errors (insufficient flows, degenerate
    /// samples).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or mixes workloads (see
    /// [`Dataset::from_traces`]).
    pub fn fit(traces: &[Trace]) -> Result<KeddahModel> {
        fit_model(&Dataset::from_traces(traces))
    }

    /// Convenience for single-trace fitting, asserting the workload for
    /// the caller.
    ///
    /// # Errors
    ///
    /// As [`Keddah::fit`], plus an error if the trace's workload does not
    /// match `workload`.
    pub fn fit_single(trace: &Trace, workload: Workload) -> Result<KeddahModel> {
        if trace.meta().workload != workload.name() {
            return Err(crate::CoreError::Json(format!(
                "trace is {}, expected {}",
                trace.meta().workload,
                workload.name()
            )));
        }
        Keddah::fit(std::slice::from_ref(trace))
    }

    /// Stage 4 — validate: regenerates jobs from the model and compares
    /// against captures (stage 3, generation, lives on
    /// [`KeddahModel::generate_job`]).
    ///
    /// # Errors
    ///
    /// As [`validate_model`].
    pub fn validate(
        model: &KeddahModel,
        traces: &[Trace],
        generated_jobs: u32,
        seed: u64,
    ) -> Result<ValidationReport> {
        validate_model(model, traces, generated_jobs, seed)
    }

    /// Stage 5 — replay: drives a capture trace through the network
    /// simulator. `closed_loop` selects the discipline: open loop replays
    /// captured start times verbatim; closed loop infers dependency edges
    /// and releases dependent flows when their parents complete under the
    /// simulated network (see [`crate::source::TraceSource`]).
    ///
    /// # Errors
    ///
    /// As [`replay_trace`] / [`replay_trace_closed`].
    pub fn replay(
        trace: &Trace,
        topo: &Topology,
        options: SimOptions,
        closed_loop: bool,
    ) -> Result<ReplayReport> {
        if closed_loop {
            replay_trace_closed(trace, topo, options)
        } else {
            replay_trace(trace, topo, options)
        }
    }

    /// Stage 5 variant generating jobs from a model on the fly, closed
    /// loop (dependent stages sampled when their parents complete; see
    /// [`crate::source::ModelSource`]).
    ///
    /// # Errors
    ///
    /// As [`replay_model_closed`].
    pub fn replay_model(
        model: &KeddahModel,
        topo: &Topology,
        n_jobs: u32,
        seed: u64,
        stagger_secs: f64,
        options: SimOptions,
    ) -> Result<ReplayReport> {
        replay_model_closed(model, topo, n_jobs, seed, stagger_secs, options)
    }

    /// Degraded-mode [`Keddah::replay`]: the same replay disciplines with
    /// a fault schedule injected as DES events (node crashes abort flows,
    /// link faults re-route or degrade them; see
    /// [`keddah_netsim::simulate_faulted`]). An empty spec reproduces the
    /// fault-free replay byte for byte.
    ///
    /// # Errors
    ///
    /// As [`crate::replay::replay_trace_faulted`] /
    /// [`crate::replay::replay_trace_closed_faulted`].
    pub fn replay_faulted(
        trace: &Trace,
        topo: &Topology,
        options: SimOptions,
        closed_loop: bool,
        spec: &FaultSpec,
    ) -> Result<ReplayReport> {
        if closed_loop {
            replay_trace_closed_faulted(trace, topo, spec, options)
        } else {
            replay_trace_faulted(trace, topo, spec, options)
        }
    }

    /// Degraded-mode [`Keddah::replay_model`].
    ///
    /// # Errors
    ///
    /// As [`crate::replay::replay_model_closed_faulted`].
    #[allow(clippy::too_many_arguments)]
    pub fn replay_model_faulted(
        model: &KeddahModel,
        topo: &Topology,
        n_jobs: u32,
        seed: u64,
        stagger_secs: f64,
        options: SimOptions,
        spec: &FaultSpec,
    ) -> Result<ReplayReport> {
        replay_model_closed_faulted(model, topo, n_jobs, seed, stagger_secs, spec, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keddah_flowcap::Component;

    fn testbed() -> (ClusterSpec, HadoopConfig, JobSpec) {
        (
            ClusterSpec::racks(2, 4),
            HadoopConfig::default().with_reducers(4),
            JobSpec::new(Workload::TeraSort, 1 << 30),
        )
    }

    #[test]
    fn capture_fit_generate_validate() {
        let (cluster, config, job) = testbed();
        let traces = Keddah::capture(&cluster, &config, &job, 3, 1);
        assert_eq!(traces.len(), 3);

        let model = Keddah::fit(&traces).unwrap();
        assert_eq!(model.workload, "terasort");
        assert!(model.component(Component::Shuffle).is_some());
        assert!(model.component(Component::Control).is_some());

        let generated = model.generate_job(9);
        assert!(!generated.flows.is_empty());

        let report = Keddah::validate(&model, &traces, 3, 11).unwrap();
        let shuffle = report.component(Component::Shuffle).unwrap();
        // Model trained on these traces: shapes should be close.
        assert!(shuffle.ks_statistic < 0.35, "KS = {}", shuffle.ks_statistic);
        assert!(
            shuffle.count_error < 0.3,
            "count err = {}",
            shuffle.count_error
        );
    }

    #[test]
    fn fit_single_checks_workload() {
        let (cluster, config, job) = testbed();
        let traces = Keddah::capture(&cluster, &config, &job, 1, 5);
        assert!(Keddah::fit_single(&traces[0], Workload::TeraSort).is_ok());
        assert!(Keddah::fit_single(&traces[0], Workload::Grep).is_err());
    }

    #[test]
    fn model_roundtrips_through_json() {
        let (cluster, config, job) = testbed();
        let traces = Keddah::capture(&cluster, &config, &job, 2, 3);
        let model = Keddah::fit(&traces).unwrap();
        let back = KeddahModel::from_json(&model.to_json()).unwrap();
        assert_eq!(model, back);
    }
}
